"""Packet model used throughout the reproduction.

A :class:`Packet` carries exactly the information a passive monitor that only
parses IP and UDP headers would have -- a receive timestamp, the 5-tuple, and
the UDP payload length -- plus, optionally, the parsed RTP header and
simulator-side ground-truth annotations (frame id, media type).  The
IP/UDP-only estimators never touch the optional fields; the RTP baselines and
the evaluation code do.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.net.media import MediaType

if TYPE_CHECKING:  # pragma: no cover - import only needed for type checkers
    from repro.rtp.header import RTPHeader

__all__ = ["MediaType", "IPv4Header", "UDPHeader", "Packet"]

#: Fixed RTP header length in bytes (no CSRCs, no extensions).  The heuristics
#: subtract this when converting UDP payload bytes to media payload bytes.
RTP_FIXED_HEADER_LEN = 12


@dataclass(frozen=True)
class IPv4Header:
    """The IPv4 header fields a monitor extracts."""

    src: str
    dst: str
    ttl: int = 64
    protocol: int = 17  # UDP
    total_length: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 255:
            raise ValueError(f"ttl out of range: {self.ttl}")
        if not 0 <= self.protocol <= 255:
            raise ValueError(f"protocol out of range: {self.protocol}")


@dataclass(frozen=True)
class UDPHeader:
    """The UDP header fields a monitor extracts."""

    src_port: int
    dst_port: int
    length: int = 0  # UDP length field: header (8) + payload

    def __post_init__(self) -> None:
        for name, port in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= port <= 65535:
                raise ValueError(f"{name} out of range: {port}")


@dataclass(frozen=True)
class Packet:
    """One captured datagram.

    Attributes
    ----------
    timestamp:
        Receive time in seconds (float, epoch-relative or call-relative).
    ip / udp:
        Parsed IP and UDP headers (always available to the estimators).
    payload_size:
        UDP payload length in bytes.  For RTP packets this includes the RTP
        header; the paper's size features operate on this value.
    rtp:
        Parsed RTP header, if the monitor was able to parse it.  ``None`` for
        non-RTP packets and for the IP/UDP-only measurement scenario.
    media_type / frame_id:
        Simulator-side ground-truth annotations used only for evaluation
        (e.g. media-classification confusion matrices, true frame boundaries).
    """

    timestamp: float
    ip: IPv4Header
    udp: UDPHeader
    payload_size: int
    rtp: RTPHeader | None = None
    media_type: MediaType | None = None
    frame_id: int | None = None
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise ValueError(f"payload_size must be non-negative, got {self.payload_size}")
        if self.timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {self.timestamp}")

    @property
    def size(self) -> int:
        """Alias for :attr:`payload_size`; the paper's "packet size" feature."""
        return self.payload_size

    @property
    def media_payload_size(self) -> int:
        """Payload bytes excluding the fixed 12-byte RTP header.

        The heuristics use this to convert packet sizes into video bitrate
        (Section 5.1.3 notes the fixed RTP header is accounted for).
        """
        return max(0, self.payload_size - RTP_FIXED_HEADER_LEN)

    def without_rtp(self) -> "Packet":
        """A copy of this packet as an IP/UDP-only monitor would see it."""
        return replace(self, rtp=None)

    def without_ground_truth(self) -> "Packet":
        """A copy with simulator annotations stripped (for blind estimation)."""
        return replace(self, media_type=None, frame_id=None, metadata={})

    def anonymized(self) -> "Packet":
        """A copy with hashed endpoint addresses, as in the released dataset.

        Addresses are mapped deterministically into the 10.0.0.0/8 range so
        anonymised traces remain valid IPv4 captures.
        """
        def _hash_addr(addr: str) -> str:
            import hashlib

            digest = hashlib.sha256(addr.encode()).digest()
            return f"10.{digest[0]}.{digest[1]}.{digest[2]}"

        return replace(
            self,
            ip=IPv4Header(
                src=_hash_addr(self.ip.src),
                dst=_hash_addr(self.ip.dst),
                ttl=self.ip.ttl,
                protocol=self.ip.protocol,
                total_length=self.ip.total_length,
            ),
        )
