"""Binary encode/decode for Ethernet + IPv4 + UDP headers.

Used by the pcap reader/writer so traces round-trip through real libpcap
files with well-formed link/network/transport headers, the same way the
paper's tcpdump captures do.  Only the subset of fields the estimators care
about is preserved; everything else is set to sensible constants.
"""

from __future__ import annotations

import struct

from repro.net.packet import IPv4Header, UDPHeader

__all__ = [
    "ETHERNET_HEADER_LEN",
    "IPV4_HEADER_MIN_LEN",
    "UDP_HEADER_LEN",
    "encode_ethernet_ipv4_udp",
    "decode_ethernet_ipv4_udp",
    "decode_ethernet_ipv4_udp_fields",
    "ipv4_checksum",
]

ETHERNET_HEADER_LEN = 14
IPV4_HEADER_MIN_LEN = 20
UDP_HEADER_LEN = 8

_ETHERTYPE_IPV4 = 0x0800
_DEFAULT_SRC_MAC = bytes.fromhex("020000000001")
_DEFAULT_DST_MAC = bytes.fromhex("020000000002")


def _pack_ip(addr: str) -> bytes:
    parts = addr.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted-quad IPv4 address: {addr!r}")
    try:
        octets = [int(p) for p in parts]
    except ValueError as exc:
        raise ValueError(f"not a dotted-quad IPv4 address: {addr!r}") from exc
    if any(not 0 <= o <= 255 for o in octets):
        raise ValueError(f"IPv4 octet out of range in {addr!r}")
    return bytes(octets)


def _unpack_ip(data: bytes) -> str:
    return ".".join(str(b) for b in data)


def ipv4_checksum(header: bytes) -> int:
    """Standard 16-bit ones-complement checksum over an IPv4 header."""
    if len(header) % 2:
        header += b"\x00"
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def encode_ethernet_ipv4_udp(
    ip: IPv4Header, udp: UDPHeader, payload: bytes
) -> bytes:
    """Build the full Ethernet/IPv4/UDP frame bytes for ``payload``."""
    udp_length = UDP_HEADER_LEN + len(payload)
    ip_total_length = IPV4_HEADER_MIN_LEN + udp_length

    udp_header = struct.pack("!HHHH", udp.src_port, udp.dst_port, udp_length, 0)

    version_ihl = (4 << 4) | 5
    ip_header_wo_checksum = struct.pack(
        "!BBHHHBBH4s4s",
        version_ihl,
        0,  # DSCP/ECN
        ip_total_length,
        0,  # identification
        0,  # flags/fragment offset
        ip.ttl,
        ip.protocol,
        0,  # checksum placeholder
        _pack_ip(ip.src),
        _pack_ip(ip.dst),
    )
    checksum = ipv4_checksum(ip_header_wo_checksum)
    ip_header = ip_header_wo_checksum[:10] + struct.pack("!H", checksum) + ip_header_wo_checksum[12:]

    ethernet = _DEFAULT_DST_MAC + _DEFAULT_SRC_MAC + struct.pack("!H", _ETHERTYPE_IPV4)
    return ethernet + ip_header + udp_header + payload


def decode_ethernet_ipv4_udp(frame: bytes) -> tuple[IPv4Header, UDPHeader, bytes]:
    """Parse an Ethernet/IPv4/UDP frame, returning headers and the UDP payload.

    Raises :class:`ValueError` for frames that are not IPv4/UDP or are truncated.
    """
    src, dst, ttl, protocol, total_length, src_port, dst_port, udp_length, payload = (
        decode_ethernet_ipv4_udp_fields(frame)
    )
    ip_header = IPv4Header(src=src, dst=dst, ttl=ttl, protocol=protocol, total_length=total_length)
    udp_header = UDPHeader(src_port=src_port, dst_port=dst_port, length=udp_length)
    return ip_header, udp_header, payload


def decode_ethernet_ipv4_udp_fields(
    frame: bytes,
) -> tuple[str, str, int, int, int, int, int, int, bytes]:
    """Field-level frame decode: plain scalars, no header-object construction.

    The columnar pcap fast path uses this to fill arrays directly; the tuple
    is ``(src, dst, ttl, protocol, total_length, src_port, dst_port,
    udp_length, payload)``.  Same validation and errors as
    :func:`decode_ethernet_ipv4_udp`.
    """
    if len(frame) < ETHERNET_HEADER_LEN + IPV4_HEADER_MIN_LEN + UDP_HEADER_LEN:
        raise ValueError(f"frame too short to contain Ethernet/IPv4/UDP: {len(frame)} bytes")

    ethertype = struct.unpack_from("!H", frame, 12)[0]
    if ethertype != _ETHERTYPE_IPV4:
        raise ValueError(f"not an IPv4 frame (ethertype 0x{ethertype:04x})")

    ip_offset = ETHERNET_HEADER_LEN
    version_ihl = frame[ip_offset]
    version = version_ihl >> 4
    ihl = (version_ihl & 0x0F) * 4
    if version != 4:
        raise ValueError(f"not an IPv4 packet (version {version})")
    if ihl < IPV4_HEADER_MIN_LEN:
        raise ValueError(f"invalid IPv4 header length: {ihl}")

    (total_length,) = struct.unpack_from("!H", frame, ip_offset + 2)
    ttl = frame[ip_offset + 8]
    protocol = frame[ip_offset + 9]
    src = _unpack_ip(frame[ip_offset + 12 : ip_offset + 16])
    dst = _unpack_ip(frame[ip_offset + 16 : ip_offset + 20])
    if protocol != 17:
        raise ValueError(f"not a UDP packet (protocol {protocol})")

    udp_offset = ip_offset + ihl
    if len(frame) < udp_offset + UDP_HEADER_LEN:
        raise ValueError("frame truncated before UDP header")
    src_port, dst_port, udp_length, _checksum = struct.unpack_from("!HHHH", frame, udp_offset)

    payload_start = udp_offset + UDP_HEADER_LEN
    payload_end = udp_offset + udp_length
    payload = frame[payload_start:payload_end]

    return src, dst, ttl, protocol, total_length, src_port, dst_port, udp_length, payload
