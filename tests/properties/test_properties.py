"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.frame_assembly import assemble_frames
from repro.core.features import extract_flow_features, extract_ipudp_features
from repro.core.resolution import ResolutionBinner, TEAMS_RESOLUTION_BINS
from repro.core.windows import WindowedTrace
from repro.ml.metrics import mean_absolute_error, summarize_errors, within_tolerance_fraction
from repro.ml.model_selection import KFold
from repro.ml.tree import DecisionTreeRegressor
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.trace import PacketTrace
from repro.rtp.header import RTPHeader, sequence_distance


# -- strategies ---------------------------------------------------------------

rtp_headers = st.builds(
    RTPHeader,
    payload_type=st.integers(0, 127),
    sequence_number=st.integers(0, 0xFFFF),
    timestamp=st.integers(0, 0xFFFFFFFF),
    ssrc=st.integers(0, 0xFFFFFFFF),
    marker=st.booleans(),
)


@st.composite
def packet_lists(draw, min_size=1, max_size=60):
    n = draw(st.integers(min_size, max_size))
    packets = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(0.0001, 0.05))
        size = draw(st.integers(60, 1400))
        packets.append(
            Packet(
                timestamp=t,
                ip=IPv4Header(src="10.0.0.2", dst="10.0.0.1"),
                udp=UDPHeader(src_port=1000, dst_port=2000),
                payload_size=size,
            )
        )
    return packets


# -- RTP header codec ----------------------------------------------------------


@given(rtp_headers)
def test_rtp_header_encode_decode_round_trip(header):
    assert RTPHeader.decode(header.encode()) == header


@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
def test_sequence_distance_antisymmetric(a, b):
    forward = sequence_distance(a, b)
    backward = sequence_distance(b, a)
    if forward not in (-0x8000,) and backward not in (-0x8000,):
        assert forward == -backward
    assert -0x8000 <= forward <= 0x7FFF


# -- frame assembly ------------------------------------------------------------


@given(packet_lists(), st.integers(1, 5), st.floats(0.0, 10.0))
@settings(max_examples=60, deadline=None)
def test_every_packet_assigned_to_exactly_one_frame(packets, lookback, delta):
    frames = assemble_frames(packets, delta_size=delta, lookback=lookback)
    assert sum(f.n_packets for f in frames) == len(packets)
    assert all(f.n_packets > 0 for f in frames)


@given(packet_lists(min_size=2))
@settings(max_examples=40, deadline=None)
def test_zero_threshold_lookback_one_splits_on_every_size_change(packets):
    frames = assemble_frames(packets, delta_size=0.0, lookback=1)
    sizes = [p.payload_size for p in sorted(packets, key=lambda p: p.timestamp)]
    expected = 1 + sum(1 for a, b in zip(sizes, sizes[1:]) if a != b)
    assert len(frames) == expected


@given(packet_lists())
@settings(max_examples=40, deadline=None)
def test_huge_threshold_yields_single_frame(packets):
    frames = assemble_frames(packets, delta_size=10_000.0, lookback=3)
    assert len(frames) == 1


# -- trace and windows ----------------------------------------------------------


@given(packet_lists())
@settings(max_examples=40, deadline=None)
def test_trace_is_always_time_sorted(packets):
    trace = PacketTrace(packets)
    times = trace.timestamps
    assert np.all(np.diff(times) >= 0)


@given(packet_lists(), st.floats(0.05, 2.0))
@settings(max_examples=40, deadline=None)
def test_windowing_partitions_packets(packets, window_s):
    trace = PacketTrace(packets)
    total = 0
    for _, window in trace.iter_windows(window_s, start=0.0, end=trace.end_time + window_s):
        total += len(window)
    assert total == len(packets)


# -- features --------------------------------------------------------------------


@given(packet_lists())
@settings(max_examples=40, deadline=None)
def test_flow_features_finite_and_nonnegative(packets):
    features = extract_flow_features(packets, window_s=1.0)
    assert len(features) == 12
    assert all(np.isfinite(f) for f in features)
    assert features[0] >= 0 and features[1] >= 0


@given(packet_lists())
@settings(max_examples=40, deadline=None)
def test_ipudp_features_shape_and_bounds(packets):
    window = WindowedTrace(start=0.0, duration=1.0, packets=PacketTrace(packets))
    features = extract_ipudp_features(window)
    assert features.shape == (14,)
    assert np.all(np.isfinite(features))
    n_video = sum(1 for p in packets if p.payload_size >= 450 and p.payload_size != 304)
    assert features[list(range(14))[-2]] <= max(1, n_video)  # unique sizes <= video packets
    assert features[-1] <= max(1, n_video)  # microbursts <= video packets


# -- resolution binning -----------------------------------------------------------


@given(st.floats(0.0, 2160.0))
def test_teams_binning_is_total_and_consistent(height):
    binner = ResolutionBinner(TEAMS_RESOLUTION_BINS)
    label = binner.label(height)
    assert label in ("low", "medium", "high")
    if height <= 240:
        assert label == "low"
    elif height <= 480:
        assert label == "medium"
    else:
        assert label == "high"


# -- metrics ----------------------------------------------------------------------


@given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=50))
def test_mae_of_identical_arrays_is_zero(values):
    array = np.array(values)
    assert mean_absolute_error(array, array) == 0.0


@given(
    st.lists(st.floats(0.1, 1e3), min_size=2, max_size=50),
    st.lists(st.floats(0.1, 1e3), min_size=2, max_size=50),
)
def test_error_summary_percentiles_ordered(a, b):
    n = min(len(a), len(b))
    summary = summarize_errors(np.array(a[:n]), np.array(b[:n]))
    assert summary.p10 <= summary.p25 <= summary.median <= summary.p75 <= summary.p90
    assert summary.mae >= 0


@given(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=30), st.floats(0.0, 10.0))
def test_within_tolerance_is_a_fraction(values, tolerance):
    array = np.array(values)
    fraction = within_tolerance_fraction(array, array + 1.0, tolerance)
    assert 0.0 <= fraction <= 1.0


# -- ML substrate -------------------------------------------------------------------


@given(st.integers(2, 10), st.integers(12, 60))
def test_kfold_partitions_indices(n_splits, n_samples):
    X = np.zeros((n_samples, 1))
    seen = []
    for train_idx, test_idx in KFold(n_splits=n_splits, random_state=0).split(X):
        assert len(set(train_idx) & set(test_idx)) == 0
        seen.extend(test_idx.tolist())
    assert sorted(seen) == list(range(n_samples))


@given(st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_tree_predictions_bounded_by_training_targets(seed):
    generator = np.random.default_rng(seed)
    X = generator.normal(size=(80, 3))
    y = generator.normal(size=80)
    tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
    predictions = tree.predict(generator.normal(size=(40, 3)))
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9
