"""Media classification from IP/UDP headers (Section 3.1).

With no access to the RTP payload type, video packets are separated from
audio/control packets by a size threshold ``V_min``: audio packets are small
(89-385 bytes for OPUS), video packets are large (99% above 564 bytes for
Teams), so any packet of at least ``V_min`` bytes is tagged as video.  RTX
keep-alives -- which carry no video payload -- are additionally filtered by
their fixed size (304 bytes for the evaluated VCAs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.packet import MediaType, Packet
from repro.net.trace import PacketTrace

__all__ = [
    "MediaClassifier",
    "MediaClassificationReport",
    "MediaClassificationAccumulator",
    "DEFAULT_VIDEO_SIZE_THRESHOLD",
]

#: Default V_min (bytes).  Chosen from lab traces: above the audio range,
#: below the 1st percentile of video packet sizes.
DEFAULT_VIDEO_SIZE_THRESHOLD = 450
#: Size of RTX keep-alive packets to filter out (Section 3.1).
DEFAULT_KEEPALIVE_SIZE = 304


@dataclass(frozen=True)
class MediaClassificationReport:
    """Confusion counts for video-vs-non-video classification (Table 2).

    Rows are the *actual* class (from the RTP payload type ground truth),
    columns the predicted class.
    """

    video_as_video: int
    video_as_nonvideo: int
    nonvideo_as_video: int
    nonvideo_as_nonvideo: int

    @property
    def total_video(self) -> int:
        return self.video_as_video + self.video_as_nonvideo

    @property
    def total_nonvideo(self) -> int:
        return self.nonvideo_as_video + self.nonvideo_as_nonvideo

    @property
    def video_recall(self) -> float:
        """Fraction of actual video packets classified as video."""
        if self.total_video == 0:
            return 0.0
        return self.video_as_video / self.total_video

    @property
    def nonvideo_recall(self) -> float:
        """Fraction of actual non-video packets classified as non-video."""
        if self.total_nonvideo == 0:
            return 0.0
        return self.nonvideo_as_nonvideo / self.total_nonvideo

    def as_matrix(self) -> np.ndarray:
        """2x2 row-normalised confusion matrix ([nonvideo, video] x [nonvideo, video])."""
        matrix = np.array(
            [
                [self.nonvideo_as_nonvideo, self.nonvideo_as_video],
                [self.video_as_nonvideo, self.video_as_video],
            ],
            dtype=float,
        )
        row_sums = matrix.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(row_sums > 0, matrix / row_sums, 0.0)


class MediaClassificationAccumulator:
    """Online confusion counts for video-vs-non-video classification.

    Feed packets one at a time with :meth:`push`; the accumulator keeps four
    running counters (O(1) state, no trace-wide pass) and can produce a
    :class:`MediaClassificationReport` at any point.  This is the streaming
    counterpart of :meth:`MediaClassifier.evaluate`.
    """

    def __init__(self, classifier: "MediaClassifier") -> None:
        self.classifier = classifier
        self.video_as_video = 0
        self.video_as_nonvideo = 0
        self.nonvideo_as_video = 0
        self.nonvideo_as_nonvideo = 0

    def push(self, packet: Packet) -> bool:
        """Classify one packet, updating confusion counts when ground truth is present."""
        predicted_video = self.classifier.is_video(packet)
        if packet.media_type is not None:
            actually_video = packet.media_type is MediaType.VIDEO
            if actually_video and predicted_video:
                self.video_as_video += 1
            elif actually_video:
                self.video_as_nonvideo += 1
            elif predicted_video:
                self.nonvideo_as_video += 1
            else:
                self.nonvideo_as_nonvideo += 1
        return predicted_video

    def report(self) -> MediaClassificationReport:
        return MediaClassificationReport(
            video_as_video=self.video_as_video,
            video_as_nonvideo=self.video_as_nonvideo,
            nonvideo_as_video=self.nonvideo_as_video,
            nonvideo_as_nonvideo=self.nonvideo_as_nonvideo,
        )


class MediaClassifier:
    """Size-threshold video packet identification.

    Parameters
    ----------
    video_size_threshold:
        ``V_min`` in bytes; packets at least this large are tagged video.
    keepalive_size:
        Exact packet size treated as an RTX keep-alive and excluded even
        though it exceeds the threshold.  ``None`` disables the filter.
    """

    def __init__(
        self,
        video_size_threshold: int = DEFAULT_VIDEO_SIZE_THRESHOLD,
        keepalive_size: int | None = DEFAULT_KEEPALIVE_SIZE,
    ) -> None:
        if video_size_threshold <= 0:
            raise ValueError("video_size_threshold must be positive")
        self.video_size_threshold = video_size_threshold
        self.keepalive_size = keepalive_size

    def is_video(self, packet: Packet) -> bool:
        """Predict whether ``packet`` carries video, using only its size."""
        if self.keepalive_size is not None and packet.payload_size == self.keepalive_size:
            return False
        return packet.payload_size >= self.video_size_threshold

    def video_mask(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_video` over an array of payload sizes.

        This is the columnar (block) hot path's classifier; it must agree
        with :meth:`is_video` element for element.  Subclasses that override
        :meth:`is_video` with size-based logic must override this too --
        the streaming engine's block path calls only ``video_mask``.
        """
        mask = sizes >= self.video_size_threshold
        if self.keepalive_size is not None:
            mask &= sizes != self.keepalive_size
        return mask

    def push(self, packet: Packet) -> bool:
        """Streaming entry point: classify one packet as it arrives.

        The classifier is stateless per packet, so ``push`` is simply
        :meth:`is_video`; it exists so the streaming engine can treat the
        classifier like the other online operators (assembler, accumulators).
        Use :class:`MediaClassificationAccumulator` to additionally track
        online confusion counts.
        """
        return self.is_video(packet)

    def stream_evaluator(self) -> MediaClassificationAccumulator:
        """A fresh online confusion-count accumulator bound to this classifier."""
        return MediaClassificationAccumulator(self)

    def video_packets(self, trace: PacketTrace) -> PacketTrace:
        """The sub-trace of packets classified as video."""
        return trace.filter(self.is_video)

    def split(self, trace: PacketTrace) -> tuple[PacketTrace, PacketTrace]:
        """``(video, non_video)`` sub-traces."""
        video = trace.filter(self.is_video)
        non_video = trace.filter(lambda p: not self.is_video(p))
        return video, non_video

    def evaluate(self, trace: PacketTrace) -> MediaClassificationReport:
        """Confusion counts against the ground-truth media annotations.

        Following the paper's Table 2 protocol, "video" ground truth means
        packets whose RTP payload type is the video payload type (actual video
        frames); retransmissions, audio and control packets count as non-video.
        Packets lacking a ground-truth annotation are skipped.
        """
        accumulator = self.stream_evaluator()
        for packet in trace:
            accumulator.push(packet)
        return accumulator.report()

    @classmethod
    def calibrate(cls, traces: list[PacketTrace], percentile: float = 99.5) -> "MediaClassifier":
        """Pick ``V_min`` from a few labelled lab traces (Section 3.1).

        The threshold is set just above the ``percentile``-th percentile of
        ground-truth audio packet sizes, which keeps essentially all audio
        below the threshold while staying under the video packet sizes.
        """
        audio_sizes: list[int] = []
        for trace in traces:
            for packet in trace:
                if packet.media_type is MediaType.AUDIO:
                    audio_sizes.append(packet.payload_size)
        if not audio_sizes:
            return cls()
        threshold = int(np.percentile(audio_sizes, percentile)) + 32
        return cls(video_size_threshold=threshold)
