"""Prometheus text exposition for registry snapshots.

Operates on the :meth:`MetricsRegistry.snapshot
<repro.obs.registry.MetricsRegistry.snapshot>` dict -- the interchange
format -- not on a live registry, so an end-of-run ``MonitorReport.metrics``
renders exactly like a mid-run scrape.  :func:`parse_prometheus` is the
inverse for the series lines (comments dropped), used by the CI smoke and
the tests to pin that the rendering actually parses.
"""

from __future__ import annotations

import re

__all__ = ["render_prometheus", "parse_prometheus"]

#: One exposition line: series name, optional {label="value",...}, number.
_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[0-9eE+.inf-]+|NaN)$"
)


def _base_name(series: str) -> str:
    return series.split("{", 1)[0]


def _with_label(series: str, label: str, value: str) -> str:
    """Append ``label="value"`` to a rendered series name."""
    if series.endswith("}"):
        return f'{series[:-1]},{label}="{value}"}}'
    return f'{series}{{{label}="{value}"}}'


def _format(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(snapshot: dict) -> str:
    """Render one snapshot dict in the Prometheus text format.

    Counters and gauges emit one line per series; histograms emit
    cumulative ``_bucket{le=...}`` lines (``+Inf`` included), ``_sum`` and
    ``_count``.  ``# TYPE`` comments are emitted once per metric family,
    in sorted order, so the output is deterministic for a given snapshot.
    """
    buckets = snapshot.get("buckets", [])
    lines: list[str] = []
    typed: set[str] = set()

    def announce(series: str, kind: str) -> None:
        base = _base_name(series)
        if base not in typed:
            typed.add(base)
            lines.append(f"# TYPE {base} {kind}")

    for series, value in snapshot.get("counters", {}).items():
        announce(series, "counter")
        lines.append(f"{series} {_format(value)}")
    for series, value in snapshot.get("gauges", {}).items():
        announce(series, "gauge")
        lines.append(f"{series} {_format(value)}")
    for series, hist in snapshot.get("histograms", {}).items():
        base = _base_name(series)
        suffix = series[len(base):]
        announce(series, "histogram")
        cumulative = 0
        for bound, count in zip(buckets, hist["counts"]):
            cumulative += count
            lines.append(
                f"{_with_label(base + '_bucket' + suffix, 'le', _format(float(bound)))} "
                f"{cumulative}"
            )
        lines.append(
            f"{_with_label(base + '_bucket' + suffix, 'le', '+Inf')} {hist['count']}"
        )
        lines.append(f"{base}_sum{suffix} {_format(hist['sum'])}")
        lines.append(f"{base}_count{suffix} {hist['count']}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back into ``{series: value}``.

    Comment lines (``# TYPE`` / ``# HELP``) are skipped; any other line
    that does not match the exposition grammar raises ``ValueError`` --
    this is the "rendering parses" assertion the CI smoke leans on.
    """
    series: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        name = match.group("name") + (match.group("labels") or "")
        if name in series:
            raise ValueError(f"duplicate series {name!r}")
        series[name] = float(match.group("value"))
    return series
