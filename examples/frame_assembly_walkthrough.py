"""Walkthrough of Algorithm 1: frame-boundary detection from packet sizes.

Illustrates (like Figure A.3 in the paper) how the IP/UDP heuristic groups
packets into frames using only packet sizes, where it succeeds, and where it
splits or coalesces frames, by comparing against the true RTP timestamps of a
simulated Meet call.

Run with:  python examples/frame_assembly_walkthrough.py
"""

from __future__ import annotations

from repro import ConditionSchedule, NetworkCondition, SessionConfig, simulate_call
from repro.core.errors import analyze_heuristic_errors
from repro.core.heuristic import IPUDPHeuristic
from repro.webrtc.profiles import get_profile


def main() -> None:
    schedule = ConditionSchedule.constant(
        NetworkCondition(throughput_kbps=1800.0, delay_ms=40.0, jitter_ms=8.0, loss_rate=0.01), 15
    )
    call = simulate_call(SessionConfig(vca="meet", duration_s=15, seed=21, call_id="walkthrough"), schedule)

    profile = get_profile("meet")
    heuristic = IPUDPHeuristic.for_profile(profile)
    frames = heuristic.assemble(call.trace)

    print("First 12 frames recovered by Algorithm 1 (Meet, Delta=2 bytes, lookback=3):\n")
    print(f"{'frame':>5} {'packets':>8} {'bytes':>7} {'end time':>9}  true RTP timestamps covered")
    window = [f for f in frames if 2.0 <= f.end_time < 4.0][:12]
    for frame in window:
        timestamps = sorted(frame.true_rtp_timestamps)
        label = ", ".join(str(ts) for ts in timestamps[:3]) + (" ..." if len(timestamps) > 3 else "")
        note = ""
        if len(timestamps) > 1:
            note = "   <-- coalesced two true frames"
        print(f"{frame.frame_index:>5} {frame.n_packets:>8} {frame.size_bytes:>7} {frame.end_time:>9.3f}  {label}{note}")

    true_frames = {p.frame_id for p in call.trace if p.frame_id is not None}
    print(f"\nTrue frames in the call: {len(true_frames)}; frames recovered by the heuristic: {len(frames)}")

    breakdown = analyze_heuristic_errors(call.trace, heuristic, duration_s=call.duration_s)
    print(
        f"Average per-second error events -> splits: {breakdown.avg_splits:.2f}, "
        f"interleaves: {breakdown.avg_interleaves:.2f}, coalesces: {breakdown.avg_coalesces:.2f}"
    )
    print("Meet's VP8/VP9 payloadisation makes splits the dominant error type (Section 5.1.2 of the paper).")


if __name__ == "__main__":
    main()
