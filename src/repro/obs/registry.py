"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per process.  The hot-path API is three
methods -- :meth:`inc`, :meth:`set_gauge`, :meth:`observe` -- each a dict
update keyed by ``(name, labels)`` where ``labels`` is a (small, fixed)
tuple of ``(key, value)`` pairs.  Stage spans use the
:meth:`observe_stage` convenience, which lands every span in the single
``qoe_stage_seconds`` histogram under a ``stage`` label.

Cross-process aggregation rides the sharded monitor's existing
``progress``/``est``/``done`` messages: a worker calls :meth:`delta` at
send time (counter and bucket increments since the last ship, gauges by
value) and the parent folds each delta into its fleet registry with
:meth:`merge`.  Deltas are exact by construction -- :meth:`delta` advances
the shipped baseline in the same step that produces the payload, so the sum
of every delta that reached the parent equals the worker-side totals that
were shipped, no matter how ticks, migrations or a mid-run death interleave
(pinned by ``tests/cluster/test_obs_plane.py``).

Histograms share one bucket vector, fixed by :class:`~repro.obs.config.ObsConfig`
before any worker spawns, which is what makes bucket counts mergeable by
elementwise addition.  Merging a delta quantized with a different bucket
count raises instead of corrupting the fleet view.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter

from repro.obs.config import ObsConfig

__all__ = ["MetricsRegistry", "ingest_transport_stats"]

#: The one stage-span histogram; individual stages are label values, so a
#: scrape sees ``qoe_stage_seconds_bucket{stage="push_block",le="0.001"}``.
STAGE_HISTOGRAM = "qoe_stage_seconds"


#: Transport stats that are high-water marks, not monotonic counts.  They
#: become per-shard gauges (max across shards is meaningful; a summed gauge
#: would not be), while everything else becomes a direction-labelled counter
#: whose fleet-wide sum matches ``MonitorReport.transport`` exactly.
_TRANSPORT_HWM_STATS = frozenset({"max_segments_per_slot", "occupancy_hwm"})


def ingest_transport_stats(
    registry: "MetricsRegistry", stats: dict, direction: str, shard_id: int
) -> None:
    """Mirror one ring's cumulative transport stats into registry series.

    Called exactly once per ring side at end of stream (the stats dicts are
    cumulative, so ingesting them twice would double-count).
    """
    for key, value in stats.items():
        if key in _TRANSPORT_HWM_STATS:
            registry.set_gauge(
                f"qoe_transport_{key}",
                value,
                (("direction", direction), ("shard", str(shard_id))),
            )
        else:
            registry.inc(
                f"qoe_transport_{key}_total", value, (("direction", direction),)
            )


def render_key(key: tuple) -> str:
    """``(name, labels)`` -> the Prometheus series name with a label set."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{label}="{value}"' for label, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters, gauges and fixed-bucket histograms for one process.

    Not thread-safe by design: every producer in this codebase is a single
    loop (the monitor's routing loop, a worker's tick loop), and the
    cross-process story is delta shipping, not shared mutation.
    """

    def __init__(self, config: ObsConfig | None = None) -> None:
        self.config = config if config is not None else ObsConfig(enabled=True)
        self.buckets: tuple[float, ...] = self.config.buckets
        self.stage_timing = self.config.stage_timing
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._hist_counts: dict[tuple, list[int]] = {}
        self._hist_sums: dict[tuple, float] = {}
        # Shipped baselines for delta(): what has already left this process.
        self._shipped_counters: dict[tuple, float] = {}
        self._shipped_hist_counts: dict[tuple, list[int]] = {}
        self._shipped_hist_sums: dict[tuple, float] = {}

    # -- hot-path recording ----------------------------------------------------

    def inc(self, name: str, value: float = 1, labels: tuple = ()) -> None:
        """Add ``value`` to a (monotonic) counter."""
        key = (name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, labels: tuple = ()) -> None:
        """Set a gauge to its current value (last write wins on merge)."""
        self._gauges[(name, labels)] = value

    def observe(self, name: str, value: float, labels: tuple = ()) -> None:
        """Record one observation into a fixed-bucket histogram."""
        key = (name, labels)
        counts = self._hist_counts.get(key)
        if counts is None:
            counts = self._hist_counts[key] = [0] * (len(self.buckets) + 1)
            self._hist_sums[key] = 0.0
        counts[bisect_left(self.buckets, value)] += 1
        self._hist_sums[key] += value

    def observe_stage(self, stage: str, seconds: float) -> None:
        """One stage-timing span (no-op when ``stage_timing`` is off)."""
        if self.stage_timing:
            self.observe(STAGE_HISTOGRAM, seconds, (("stage", stage),))

    def time_stage(self, stage: str, started: float) -> None:
        """Span helper: record ``perf_counter() - started`` for ``stage``."""
        if self.stage_timing:
            self.observe(STAGE_HISTOGRAM, perf_counter() - started, (("stage", stage),))

    def timed_iter(self, iterable, stage: str):
        """Yield from ``iterable``, recording each ``next()`` as one span.

        Times only the producer side of the loop (e.g. decoding one source
        block), never the loop body, so the spans compose with the
        downstream stages into a full hot-path breakdown.
        """
        iterator = iter(iterable)
        while True:
            started = perf_counter()
            try:
                item = next(iterator)
            except StopIteration:
                return
            self.time_stage(stage, started)
            yield item

    # -- introspection ---------------------------------------------------------

    def counter_value(self, name: str, labels: tuple = ()) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get((name, labels), 0)

    def gauge_value(self, name: str, labels: tuple = ()) -> float | None:
        """Current value of a gauge (``None`` if never set)."""
        return self._gauges.get((name, labels))

    def stage_count(self, stage: str) -> int:
        """Observations recorded for one stage span (0 if none)."""
        counts = self._hist_counts.get((STAGE_HISTOGRAM, (("stage", stage),)))
        return sum(counts) if counts is not None else 0

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """The registry as a deterministic, JSON-able dict.

        Series names are fully rendered (labels inline, Prometheus style)
        and sorted, so two snapshots of equal state are equal objects --
        the interchange format for ``MonitorReport.metrics`` and the
        Prometheus renderer.
        """
        histograms = {}
        for key in sorted(self._hist_counts, key=render_key):
            counts = self._hist_counts[key]
            histograms[render_key(key)] = {
                "counts": list(counts),
                "sum": self._hist_sums[key],
                "count": sum(counts),
            }
        return {
            "buckets": list(self.buckets),
            "counters": {
                render_key(key): self._counters[key]
                for key in sorted(self._counters, key=render_key)
            },
            "gauges": {
                render_key(key): self._gauges[key]
                for key in sorted(self._gauges, key=render_key)
            },
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        from repro.obs.render import render_prometheus

        return render_prometheus(self.snapshot())

    # -- cross-process aggregation ---------------------------------------------

    def delta(self) -> dict | None:
        """Everything recorded since the last ``delta()``, or ``None``.

        Counters and histogram buckets ship as increments (and the shipped
        baseline advances atomically with the payload -- what is returned
        is exactly what stops being pending); gauges ship by value.  The
        caller attaches the result to an outbound message *it is about to
        send*: computing a delta and then dropping it loses those
        increments, which is precisely the contract -- a delta represents
        shipped state.
        """
        counters: dict[tuple, float] = {}
        for key, value in self._counters.items():
            shipped = self._shipped_counters.get(key, 0)
            if value != shipped:
                counters[key] = value - shipped
                self._shipped_counters[key] = value
        histograms: dict[tuple, tuple[list[int], float]] = {}
        for key, counts in self._hist_counts.items():
            shipped_counts = self._shipped_hist_counts.get(key)
            if shipped_counts is None:
                shipped_counts = [0] * len(counts)
            if counts != shipped_counts:
                histograms[key] = (
                    [c - s for c, s in zip(counts, shipped_counts)],
                    self._hist_sums[key] - self._shipped_hist_sums.get(key, 0.0),
                )
                self._shipped_hist_counts[key] = list(counts)
                self._shipped_hist_sums[key] = self._hist_sums[key]
        if not counters and not histograms and not self._gauges:
            return None
        delta: dict = {"n_buckets": len(self.buckets)}
        if counters:
            delta["counters"] = counters
        if histograms:
            delta["histograms"] = histograms
        if self._gauges:
            delta["gauges"] = dict(self._gauges)
        return delta

    def merge(self, delta: dict) -> None:
        """Fold one :meth:`delta` payload into this registry.

        Counter and bucket increments add; gauges overwrite.  Bucket-count
        mismatches raise -- a worker quantizing with different bounds would
        silently corrupt every percentile read off the merged histogram.
        """
        n_buckets = delta.get("n_buckets")
        if n_buckets is not None and n_buckets != len(self.buckets):
            raise ValueError(
                f"cannot merge a delta quantized with {n_buckets} buckets "
                f"into a registry with {len(self.buckets)}"
            )
        for key, value in delta.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, (counts, total) in delta.get("histograms", {}).items():
            mine = self._hist_counts.get(key)
            if mine is None:
                mine = self._hist_counts[key] = [0] * (len(self.buckets) + 1)
                self._hist_sums[key] = 0.0
            if len(counts) != len(mine):
                raise ValueError(
                    f"histogram {render_key(key)!r}: delta has {len(counts)} buckets, "
                    f"registry has {len(mine)}"
                )
            for i, count in enumerate(counts):
                mine[i] += count
            self._hist_sums[key] += total
        for key, value in delta.get("gauges", {}).items():
            self._gauges[key] = value
