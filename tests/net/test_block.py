"""Unit tests for the columnar PacketBlock representation."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.net.block import PacketBlock, blocks_from_packets
from repro.net.flows import five_tuple
from repro.net.media import MediaType
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.trace import PacketTrace
from repro.rtp.header import RTPHeader


def make_packet(
    timestamp=0.0,
    src="192.0.2.10",
    dst="10.0.0.1",
    src_port=3478,
    dst_port=50000,
    size=1000,
    rtp=None,
    media_type=None,
    frame_id=None,
    metadata=None,
):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src=src, dst=dst, ttl=60, total_length=size + 28),
        udp=UDPHeader(src_port=src_port, dst_port=dst_port, length=size + 8),
        payload_size=size,
        rtp=rtp,
        media_type=media_type,
        frame_id=frame_id,
        metadata=metadata or {},
    )


def interleaved_packets(n=60):
    packets = []
    for i in range(n):
        packets.append(
            make_packet(
                timestamp=0.01 * i,
                dst=f"10.0.0.{i % 3 + 1}",
                dst_port=50000 + i % 3,
                size=500 + i,
                media_type=MediaType.VIDEO if i % 2 else MediaType.AUDIO,
                frame_id=i // 4,
            )
        )
    return packets


class TestRoundTrip:
    def test_from_packets_to_packets_returns_originals_in_process(self):
        packets = interleaved_packets()
        packets[0].metadata["app_bytes"] = 123
        block = PacketBlock.from_packets(packets)
        assert block.has_packet_cache
        materialized = block.to_packets()
        assert materialized == packets
        assert materialized[0] is packets[0]  # the cache, not a copy
        assert materialized[0].metadata == {"app_bytes": 123}

    def test_reconstruction_after_pickle_preserves_header_fields(self):
        rtp = RTPHeader(payload_type=96, sequence_number=7, timestamp=90000, ssrc=1, marker=True)
        packets = interleaved_packets()
        packets[3] = make_packet(timestamp=0.03, rtp=rtp, media_type=MediaType.VIDEO, frame_id=2)
        wire = pickle.loads(pickle.dumps(PacketBlock.from_packets(packets)))
        assert not wire.has_packet_cache
        rebuilt = wire.to_packets()
        # Dataclass equality covers timestamp, headers, size, rtp, ground truth.
        assert rebuilt == packets
        assert rebuilt[3].rtp == rtp
        assert rebuilt[3].ip.ttl == 60 and rebuilt[3].udp.length == 1008

    def test_columns_and_codes(self):
        packets = interleaved_packets()
        block = PacketBlock.from_packets(packets)
        assert len(block) == len(packets)
        assert block.timestamps.dtype == np.float64
        np.testing.assert_array_equal(block.sizes, [p.payload_size for p in packets])
        for i, packet in enumerate(packets):
            assert block.addresses[block.src_codes[i]] == packet.ip.src
            assert block.addresses[block.dst_codes[i]] == packet.ip.dst
            assert block.flows[block.flow_codes[i]] == five_tuple(packet)

    def test_negative_frame_id_rejected(self):
        packet = Packet(
            timestamp=0.0,
            ip=IPv4Header(src="a", dst="b"),
            udp=UDPHeader(src_port=1, dst_port=2),
            payload_size=10,
            frame_id=-1,
        )
        with pytest.raises(ValueError, match="frame_id"):
            PacketBlock.from_packets([packet])


class TestSliceTakeConcat:
    def test_slice_shares_tables_and_preserves_rows(self):
        packets = interleaved_packets()
        block = PacketBlock.from_packets(packets)
        part = block[10:25]
        assert len(part) == 15
        assert part.flows is block.flows and part.addresses is block.addresses
        assert part.to_packets() == packets[10:25]

    def test_take_orders_rows_and_can_drop_cache(self):
        packets = interleaved_packets()
        block = PacketBlock.from_packets(packets)
        idx = np.array([5, 1, 30])
        sub = block.take(idx)
        assert sub.to_packets() == [packets[5], packets[1], packets[30]]
        assert not block.take(idx, keep_packets=False).has_packet_cache

    def test_concat_reinterns_flows(self):
        a = PacketBlock.from_packets([make_packet(0.0, dst="10.0.0.1"), make_packet(0.1, dst="10.0.0.2")])
        b = PacketBlock.from_packets([make_packet(0.2, dst="10.0.0.2"), make_packet(0.3, dst="10.0.0.3")])
        merged = PacketBlock.concat([a, b])
        assert len(merged) == 4
        assert len(merged.flows) == 3  # 10.0.0.2 deduplicated
        assert merged.to_packets() == a.to_packets() + b.to_packets()
        for i, packet in enumerate(merged.to_packets()):
            assert merged.flows[merged.flow_codes[i]] == five_tuple(packet)

    def test_concat_mixed_optional_columns(self):
        plain = PacketBlock.from_packets([make_packet(0.0)])
        annotated = PacketBlock.from_packets(
            [make_packet(0.1, media_type=MediaType.VIDEO, frame_id=4)]
        )
        merged = pickle.loads(pickle.dumps(PacketBlock.concat([plain, annotated])))
        rebuilt = merged.to_packets()
        assert rebuilt[0].media_type is None and rebuilt[0].frame_id is None
        assert rebuilt[1].media_type is MediaType.VIDEO and rebuilt[1].frame_id == 4


class TestCompact:
    def test_compact_reinterns_sliced_side_tables(self):
        packets = interleaved_packets(60)  # 3 flows interleaved round-robin
        block = PacketBlock.from_packets(packets)
        part = block[0:1]  # one packet, but sliced tables still cover 3 flows
        assert len(part.flows) == 3
        dense = part.compact()
        assert len(dense.flows) == 1
        assert dense.addresses == (packets[0].ip.src, packets[0].ip.dst)
        assert dense.to_packets() == [packets[0]]
        assert dense.flows[dense.flow_codes[0]] == five_tuple(packets[0])

    def test_compact_is_identity_for_dense_blocks(self):
        block = PacketBlock.from_packets(interleaved_packets(12))
        assert block.compact() is block

    def test_compact_preserves_optional_columns_over_the_wire(self):
        packets = interleaved_packets(30)
        dense = pickle.loads(pickle.dumps(PacketBlock.from_packets(packets)[10:20].compact()))
        assert dense.to_packets() == packets[10:20]


class TestFlowGroups:
    def test_groups_cover_rows_in_first_appearance_order(self):
        packets = interleaved_packets()
        block = PacketBlock.from_packets(packets)
        groups = block.flow_groups()
        seen = []
        covered = np.zeros(len(block), dtype=bool)
        for code, idx in groups:
            assert np.all(np.diff(idx) > 0)  # arrival order within the flow
            assert np.all(block.flow_codes[idx] == code)
            covered[idx] = True
            seen.append(int(idx[0]))
        assert covered.all()
        assert seen == sorted(seen)  # first-appearance order

    def test_single_flow_fast_path(self):
        block = PacketBlock.from_packets([make_packet(0.01 * i) for i in range(10)])
        ((code, idx),) = block.flow_groups()
        assert code == 0
        np.testing.assert_array_equal(idx, np.arange(10))


class TestTraceBacking:
    def test_trace_block_is_cached_and_invalidated_on_mutation(self):
        trace = PacketTrace(interleaved_packets())
        block = trace.block
        assert trace.block is block
        trace.append(make_packet(timestamp=99.0))
        assert trace.block is not block
        assert len(trace.block) == len(trace)

    def test_time_slice_on_block_backed_trace_slices_arrays(self):
        packets = interleaved_packets()
        trace = PacketTrace.from_block(pickle.loads(pickle.dumps(PacketTrace(packets).block)))
        window = trace.time_slice(0.1, 0.3)
        assert [p.timestamp for p in window] == [
            p.timestamp for p in packets if 0.1 <= p.timestamp < 0.3
        ]
        # Equality with the list-backed slice, field for field.
        assert window.packets == PacketTrace(packets).time_slice(0.1, 0.3).packets

    def test_iter_windows_matches_between_backings(self):
        packets = interleaved_packets()
        list_backed = PacketTrace(packets)
        block_backed = PacketTrace.from_block(PacketTrace(packets).block)
        for (t1, w1), (t2, w2) in zip(
            list_backed.iter_windows(0.25), block_backed.iter_windows(0.25)
        ):
            assert t1 == t2
            assert w1.packets == w2.packets

    def test_stats_identical_between_backings(self):
        packets = interleaved_packets()
        assert PacketTrace(packets).stats() == PacketTrace.from_block(
            pickle.loads(pickle.dumps(PacketTrace(packets).block))
        ).stats()


class TestBlocksFromPackets:
    def test_chunking(self):
        packets = interleaved_packets(25)
        blocks = list(blocks_from_packets(iter(packets), 10))
        assert [len(b) for b in blocks] == [10, 10, 5]
        assert [p for b in blocks for p in b.to_packets()] == packets

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            list(blocks_from_packets([], 0))
