"""Unit tests for feature extraction and resolution binning."""

import numpy as np
import pytest

from repro.core.features import (
    FLOW_FEATURE_NAMES,
    IPUDP_FEATURE_NAMES,
    RTP_FEATURE_NAMES,
    extract_flow_features,
    extract_ipudp_features,
    extract_rtp_features,
)
from repro.core.resolution import ResolutionBinner, TEAMS_RESOLUTION_BINS, binner_for_vca
from repro.core.windows import WindowedTrace, window_trace
from repro.rtp.payload_types import LAB_PAYLOAD_TYPES
from tests.core.test_heuristics import build_synthetic_trace, make_video_packet
from repro.net.trace import PacketTrace


class TestFeatureNames:
    def test_paper_feature_counts(self):
        assert len(FLOW_FEATURE_NAMES) == 12
        assert len(IPUDP_FEATURE_NAMES) == 14  # Table 1: 12 flow stats + 2 semantics
        assert "# unique sizes" in IPUDP_FEATURE_NAMES
        assert "# microbursts" in IPUDP_FEATURE_NAMES
        assert "# unique RTPvid TS" in RTP_FEATURE_NAMES
        assert "RTP lag [stdev]" in RTP_FEATURE_NAMES


class TestFlowFeatures:
    def test_empty_window_yields_zero_vector(self):
        features = extract_flow_features([], window_s=1.0)
        assert features == [0.0] * 12

    def test_bytes_and_packets_per_second(self):
        trace = build_synthetic_trace(n_frames=10, packets_per_frame=3, frame_size=900)
        features = extract_flow_features(list(trace), window_s=1.0)
        assert features[0] == pytest.approx(sum(p.payload_size for p in trace))
        assert features[1] == pytest.approx(30.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            extract_flow_features([], window_s=0.0)


class TestIPUDPFeatures:
    def test_vector_length_and_finiteness(self, teams_call):
        windows = window_trace(teams_call.trace, 1.0, start=2.0, end=10.0)
        for window in windows:
            features = extract_ipudp_features(window)
            assert features.shape == (14,)
            assert np.all(np.isfinite(features))

    def test_unique_sizes_tracks_frame_count_on_clean_trace(self):
        trace = build_synthetic_trace(n_frames=20, packets_per_frame=3)
        window = WindowedTrace(start=0.0, duration=1.0, packets=trace)
        features = extract_ipudp_features(window)
        unique_sizes = features[list(IPUDP_FEATURE_NAMES).index("# unique sizes")]
        # The synthetic trace cycles through 7 distinct frame sizes.
        assert unique_sizes == 7.0

    def test_microburst_count_close_to_frame_count(self):
        trace = build_synthetic_trace(n_frames=20, packets_per_frame=3, fps=20.0)
        window = WindowedTrace(start=0.0, duration=1.0, packets=trace)
        features = extract_ipudp_features(window)
        microbursts = features[list(IPUDP_FEATURE_NAMES).index("# microbursts")]
        assert microbursts == pytest.approx(20.0)

    def test_empty_window(self):
        window = WindowedTrace(start=0.0, duration=1.0, packets=PacketTrace([]))
        features = extract_ipudp_features(window)
        assert features.shape == (14,)
        assert np.all(features == 0.0)


class TestRTPFeatures:
    def test_vector_length(self, teams_call):
        payload_types = LAB_PAYLOAD_TYPES["teams"]
        windows = window_trace(teams_call.trace, 1.0, start=2.0, end=10.0)
        for window in windows:
            features = extract_rtp_features(window, payload_types)
            assert features.shape == (len(RTP_FEATURE_NAMES),)
            assert np.all(np.isfinite(features))

    def test_unique_timestamp_features_on_synthetic_trace(self):
        trace = build_synthetic_trace(n_frames=12, packets_per_frame=2)
        window = WindowedTrace(start=0.0, duration=1.0, packets=trace)
        features = extract_rtp_features(window, LAB_PAYLOAD_TYPES["teams"])
        names = list(RTP_FEATURE_NAMES)
        assert features[names.index("# unique RTPvid TS")] == 12.0
        assert features[names.index("Markervid bit sum")] == 12.0
        assert features[names.index("# out-of-order seq")] == 0.0

    def test_out_of_order_detection(self):
        packets = [
            make_video_packet(0.00, 1000, 0, 0, seq=0),
            make_video_packet(0.01, 1000, 0, 0, seq=2),
            make_video_packet(0.02, 1000, 0, 0, seq=1),
        ]
        window = WindowedTrace(start=0.0, duration=1.0, packets=PacketTrace(packets))
        features = extract_rtp_features(window, LAB_PAYLOAD_TYPES["teams"])
        assert features[list(RTP_FEATURE_NAMES).index("# out-of-order seq")] == 2.0


class TestResolutionBinner:
    def test_teams_bins_match_paper(self):
        binner = ResolutionBinner(TEAMS_RESOLUTION_BINS)
        assert binner.label(180) == "low"
        assert binner.label(240) == "low"
        assert binner.label(404) == "medium"
        assert binner.label(480) == "medium"
        assert binner.label(720) == "high"

    def test_per_value_binner(self):
        binner = ResolutionBinner(None)
        assert binner.label(360) == "360"
        assert binner.class_names is None

    def test_vectorised_labels(self):
        binner = ResolutionBinner(TEAMS_RESOLUTION_BINS)
        labels = binner.labels([90, 404, 720])
        assert list(labels) == ["low", "medium", "high"]

    def test_binner_for_vca(self):
        assert binner_for_vca("teams").bins is not None
        assert binner_for_vca("meet").bins is None
        assert binner_for_vca("webex").bins is None

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            ResolutionBinner(None).label(-1)

    def test_unknown_height_zero_maps_to_low(self):
        binner = ResolutionBinner(TEAMS_RESOLUTION_BINS)
        assert binner.label(0) == "low"
