"""Flow identification utilities.

The paper assumes upstream traffic classification has already isolated the
packets of a single VCA session (Section 2.2).  These helpers provide the
5-tuple bookkeeping needed to do that isolation on multi-flow traces and to
tag packet direction (client-bound vs server-bound).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.net.packet import Packet

__all__ = ["FlowKey", "FlowStats", "FlowTable", "five_tuple"]


@dataclass(frozen=True, order=True)
class FlowKey:
    """A unidirectional UDP 5-tuple."""

    src: str
    src_port: int
    dst: str
    dst_port: int
    protocol: int = 17

    def reversed(self) -> "FlowKey":
        """The same flow seen in the opposite direction."""
        return FlowKey(
            src=self.dst,
            src_port=self.dst_port,
            dst=self.src,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def bidirectional(self) -> tuple["FlowKey", "FlowKey"]:
        """A canonical (sorted) pair identifying the bidirectional flow."""
        other = self.reversed()
        return (self, other) if (self.src, self.src_port) <= (other.src, other.src_port) else (other, self)


def five_tuple(packet: Packet) -> FlowKey:
    """Extract the unidirectional 5-tuple of a packet."""
    return FlowKey(
        src=packet.ip.src,
        src_port=packet.udp.src_port,
        dst=packet.ip.dst,
        dst_port=packet.udp.dst_port,
        protocol=packet.ip.protocol,
    )


@dataclass
class FlowStats:
    """Aggregate statistics for one unidirectional flow."""

    packets: int = 0
    bytes: int = 0
    first_seen: float | None = None
    last_seen: float | None = None

    def update(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.payload_size
        if self.first_seen is None:
            self.first_seen = packet.timestamp
        self.last_seen = packet.timestamp

    @property
    def duration(self) -> float:
        if self.first_seen is None or self.last_seen is None:
            return 0.0
        return self.last_seen - self.first_seen


class FlowTable:
    """Group packets of a trace by unidirectional 5-tuple.

    With ``store_packets=False`` the table keeps only per-flow aggregate
    statistics and drops the packets themselves; this is the mode the
    streaming engine uses so its memory stays bounded by the window size
    rather than the trace length.
    """

    def __init__(self, store_packets: bool = True) -> None:
        self.store_packets = store_packets
        self._packets: dict[FlowKey, list[Packet]] = defaultdict(list)
        self._stats: dict[FlowKey, FlowStats] = defaultdict(FlowStats)

    def add(self, packet: Packet) -> FlowKey:
        key = five_tuple(packet)
        if self.store_packets:
            self._packets[key].append(packet)
        self._stats[key].update(packet)
        return key

    def add_all(self, packets) -> "FlowTable":
        for packet in packets:
            self.add(packet)
        return self

    def update_bulk(self, key: FlowKey, n: int, n_bytes: int, first_ts: float, last_ts: float) -> None:
        """Account ``n`` packets of ``key`` in one step (the columnar path).

        Equivalent to ``n`` arrival-ordered :meth:`add` calls for stats-only
        tables (packet sizes are integers, so the byte sum is order-exact);
        refuses on packet-retaining tables, which need the objects.
        """
        if self.store_packets:
            raise RuntimeError("update_bulk requires store_packets=False (stats-only mode)")
        stats = self._stats[key]
        stats.packets += n
        stats.bytes += n_bytes
        if stats.first_seen is None:
            stats.first_seen = first_ts
        stats.last_seen = last_ts

    @property
    def flows(self) -> list[FlowKey]:
        return list(self._stats)

    def packets(self, key: FlowKey) -> list[Packet]:
        if not self.store_packets:
            raise RuntimeError("this FlowTable does not retain packets (store_packets=False)")
        return list(self._packets.get(key, []))

    def stats(self, key: FlowKey) -> FlowStats:
        if key not in self._stats:
            raise KeyError(f"unknown flow: {key}")
        return self._stats[key]

    def remove(self, key: FlowKey) -> None:
        """Forget a flow entirely (stats and any stored packets).

        Used by long-running monitors when evicting dead flows so table
        memory tracks *live* flows, not flows ever seen."""
        self._stats.pop(key, None)
        self._packets.pop(key, None)

    def dominant_flow(self) -> FlowKey | None:
        """The flow carrying the most bytes (the video downlink in a 2-party call)."""
        if not self._stats:
            return None
        return max(self._stats, key=lambda k: self._stats[k].bytes)

    def toward(self, address: str) -> list[FlowKey]:
        """Flows whose destination address is ``address`` (client-bound traffic)."""
        return [key for key in self._stats if key.dst == address]

    def __len__(self) -> int:
        return len(self._stats)
