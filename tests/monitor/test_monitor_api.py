"""Source -> Engine -> Sink facade tests.

Acceptance contract of the API redesign: a :class:`repro.QoEMonitor` run over
``PcapSource`` + ``CollectorSink`` yields estimates **equal** to
``QoEPipeline.estimate`` on the same trace, sources compose (k-way merge with
arbitrary inter-source skew), sinks are pluggable, and the legacy collection
methods survive as deprecated aliases.
"""

import json
from dataclasses import replace

import pytest

from repro import (
    CSVSink,
    CollectorSink,
    IteratorSource,
    JSONLinesSink,
    MergedSource,
    MetricsSnapshotSink,
    PcapSource,
    QoEMonitor,
    QoEPipeline,
    SummarySink,
    TraceSource,
    as_source,
)
from repro.core.streaming import StreamingQoEPipeline
from repro.net.flows import five_tuple
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.trace import PacketTrace


def assert_estimates_equal(batch, streamed, check_resolution=True):
    """Row-by-row comparison of PipelineEstimate sequences (float tolerance).

    The stream may close one extra window (the one starting exactly at
    end_time), which the batch contract excludes.
    """
    assert len(streamed) >= len(batch)
    assert len(streamed) <= len(batch) + 1
    for expected, actual in zip(batch, streamed):
        assert actual.window_start == pytest.approx(expected.window_start, abs=1e-12)
        assert actual.frame_rate == pytest.approx(expected.frame_rate, abs=1e-9)
        assert actual.bitrate_kbps == pytest.approx(expected.bitrate_kbps, abs=1e-9)
        assert actual.frame_jitter_ms == pytest.approx(expected.frame_jitter_ms, abs=1e-9)
        assert actual.source == expected.source
        if check_resolution:
            assert actual.resolution == expected.resolution


def make_packet(timestamp, size, dst_port=51000):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="192.0.2.10", dst="10.0.0.1"),
        udp=UDPHeader(src_port=3478, dst_port=dst_port),
        payload_size=size,
    )


def remap_flow(trace: PacketTrace, src="172.16.5.5", src_port=3478, dst="10.0.0.99", dst_port=51000):
    """A copy of ``trace`` on a distinct 5-tuple (a second concurrent session)."""
    return PacketTrace(
        [
            replace(
                p,
                ip=IPv4Header(src=src, dst=dst, ttl=p.ip.ttl, protocol=p.ip.protocol),
                udp=UDPHeader(src_port=src_port, dst_port=dst_port),
            )
            for p in trace
        ],
        vca=trace.vca,
    )


@pytest.fixture(scope="module")
def teams_pcap(teams_call, tmp_path_factory):
    path = tmp_path_factory.mktemp("captures") / "teams.pcap"
    teams_call.trace.to_pcap(path)
    return path


class TestMonitorEquivalence:
    def test_pcap_source_batch_grid_equals_pipeline_estimate(self, teams_call, teams_pcap):
        """The pinned acceptance criterion: exact row equality with estimate()."""
        pipeline = QoEPipeline.for_vca("teams")
        collector = CollectorSink()
        monitor = QoEMonitor(
            pipeline,
            PcapSource(teams_pcap),
            sinks=collector,
            config=pipeline.config.replace(demux_flows=False),
            batch_grid=True,
        )
        report = monitor.run()
        batch = pipeline.estimate(teams_pcap)
        assert collector.estimates == batch  # exact equality, same code path
        assert report.n_estimates == len(batch)
        assert report.n_packets == len(teams_call.trace)
        assert collector.closed

    def test_trained_pcap_monitor_equals_pipeline_estimate(self, teams_calls_small, tmp_path):
        pipeline = QoEPipeline.for_vca("teams").train(teams_calls_small)
        path = tmp_path / "call.pcap"
        teams_calls_small[0].trace.to_pcap(path)
        collector = CollectorSink()
        QoEMonitor(
            pipeline,
            PcapSource(path),
            sinks=collector,
            config=pipeline.config.replace(demux_flows=False),
            batch_grid=True,
        ).run()
        assert collector.estimates == pipeline.estimate(path)
        assert all(e.source == "ml" for e in collector.estimates)

    def test_streaming_monitor_matches_batch_per_window(self, teams_pcap):
        """Streaming (demux) mode over a pcap matches batch rows on that pcap.

        (The comparison must use the same capture file on both sides: writing
        a pcap quantizes timestamps to microseconds.)
        """
        pipeline = QoEPipeline.for_vca("teams")
        collector = CollectorSink()
        QoEMonitor(pipeline, PcapSource(teams_pcap), sinks=collector).run()
        flows = {item.flow for item in collector.items}
        assert len(flows) == 1
        assert_estimates_equal(pipeline.estimate(teams_pcap), collector.estimates)

    def test_batch_grid_requires_single_flow_config(self, teams_pcap):
        pipeline = QoEPipeline.for_vca("teams")
        with pytest.raises(ValueError, match="demux_flows"):
            QoEMonitor(pipeline, PcapSource(teams_pcap), batch_grid=True)

    def test_monitor_is_one_shot_but_sources_are_reusable(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        source = TraceSource(teams_call.trace)
        first_sink = CollectorSink()
        monitor = QoEMonitor(pipeline, source, sinks=first_sink)
        first = monitor.run()
        # Sinks were closed by the run; a second run must refuse loudly
        # rather than crash mid-source or silently mix two runs' output.
        with pytest.raises(RuntimeError, match="already ran"):
            monitor.run()
        # The repeatable source feeds a fresh monitor identically.
        second_sink = CollectorSink()
        second = QoEMonitor(pipeline, source, sinks=second_sink).run()
        assert first == second
        assert first_sink.estimates == second_sink.estimates


class TestSources:
    def test_as_source_coercions(self, teams_call, teams_pcap):
        assert isinstance(as_source(teams_call.trace), TraceSource)
        assert isinstance(as_source(teams_pcap), PcapSource)
        assert isinstance(as_source(str(teams_pcap)), PcapSource)
        # Anything satisfying the PacketSource protocol passes through
        # unchanged -- wrappers, merges, custom sources, bare iterables.
        for source in (
            TraceSource(teams_call.trace),
            IteratorSource([]),
            MergedSource(teams_call.trace),
            iter([]),
        ):
            assert as_source(source) is source
        with pytest.raises(TypeError):
            as_source(42)

    def test_pcap_source_is_lazy_and_repeatable(self, teams_call, teams_pcap):
        source = PcapSource(teams_pcap)
        first = sum(1 for _ in source)
        second = sum(1 for _ in source)
        assert first == second == len(teams_call.trace)

    def test_pcap_source_truncated_tail(self, teams_call, tmp_path):
        path = tmp_path / "cut.pcap"
        teams_call.trace.to_pcap(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])  # cut mid-record
        # Strict by default: corrupt input must not be scored silently.
        with pytest.raises(ValueError, match="truncated"):
            list(PcapSource(path))
        # Opt-in tolerance for live/crashed captures.
        complete = sum(1 for _ in PcapSource(path, strict=False))
        assert complete == len(teams_call.trace) - 1

    def test_merged_source_orders_inter_source_skew(self):
        """Sources with badly offset clocks merge into one ordered stream."""
        late = [make_packet(100.0 + 0.1 * i, 1000) for i in range(20)]
        early = [make_packet(0.1 * i, 900, dst_port=40000) for i in range(20)]
        straddling = [make_packet(50.0 + 7.0 * i, 800, dst_port=41000) for i in range(10)]
        merged = list(MergedSource(iter(late), iter(early), iter(straddling)))
        timestamps = [p.timestamp for p in merged]
        assert timestamps == sorted(timestamps)
        assert len(merged) == 50

    def test_merged_source_tie_break_is_stable(self):
        a = [make_packet(1.0, 100), make_packet(2.0, 100)]
        b = [make_packet(1.0, 200, dst_port=40000), make_packet(2.0, 200, dst_port=40000)]
        merged = list(MergedSource(a, b))
        # Equal timestamps: the earlier-listed source wins deterministically.
        assert [p.payload_size for p in merged] == [100, 200, 100, 200]

    def test_merged_source_engine_equivalence(self, teams_call, lossy_teams_call):
        """Monitoring a MergedSource of two capture points matches per-flow batch."""
        pipeline = QoEPipeline.for_vca("teams")
        flow_a = teams_call.trace.without_ground_truth().without_rtp()
        flow_b = remap_flow(lossy_teams_call.trace.without_ground_truth().without_rtp())
        collector = CollectorSink()
        QoEMonitor(pipeline, MergedSource(flow_a, flow_b), sinks=collector).run()
        assert_estimates_equal(pipeline.estimate(flow_a), collector.for_flow(five_tuple(flow_a[0])))
        assert_estimates_equal(pipeline.estimate(flow_b), collector.for_flow(five_tuple(flow_b[0])))

    def test_merged_source_requires_sources(self):
        with pytest.raises(ValueError):
            MergedSource()


class TestSinks:
    def test_file_sinks_record_every_estimate(self, teams_call, tmp_path):
        pipeline = QoEPipeline.for_vca("teams")
        jsonl_path = tmp_path / "estimates.jsonl"
        csv_path = tmp_path / "estimates.csv"
        collector = CollectorSink()
        jsonl = JSONLinesSink(jsonl_path)
        csv_sink = CSVSink(csv_path)
        QoEMonitor(pipeline, TraceSource(teams_call.trace), sinks=[collector, jsonl, csv_sink]).run()

        lines = jsonl_path.read_text().splitlines()
        assert len(lines) == len(collector) == jsonl.records_written
        row = json.loads(lines[0])
        first = collector.items[0]
        assert row["window_start"] == first.estimate.window_start
        assert row["frame_rate"] == first.estimate.frame_rate
        assert row["src"] == first.flow.src and row["dst_port"] == first.flow.dst_port

        csv_lines = csv_path.read_text().splitlines()
        assert len(csv_lines) == len(collector) + 1  # header
        assert csv_lines[0].startswith("src,src_port,dst,dst_port,protocol,window_start")

    def test_jsonl_non_finite_metrics_round_trip_as_null(self, tmp_path):
        """NaN/inf metrics must serialize to valid JSON (null), not NaN literals.

        Estimates legitimately carry non-finite values (e.g. jitter over a
        single-frame window); bare ``json.dumps`` would write ``NaN`` --
        which ``json.loads`` in strict mode, jq, pandas and BigQuery all
        reject as invalid JSON.
        """
        import math

        from repro.core.pipeline import PipelineEstimate
        from repro.core.streaming import StreamEstimate
        from repro.net.flows import five_tuple

        path = tmp_path / "estimates.jsonl"
        sink = JSONLinesSink(path)
        sink.emit(
            StreamEstimate(
                flow=five_tuple(make_packet(0.0, 900)),
                estimate=PipelineEstimate(
                    window_start=0.0,
                    frame_rate=24.0,
                    bitrate_kbps=float("inf"),
                    frame_jitter_ms=float("nan"),
                    resolution=None,
                    source="heuristic",
                ),
            )
        )
        sink.close()
        (line,) = path.read_text().splitlines()
        row = json.loads(line, parse_constant=lambda c: pytest.fail(f"non-strict JSON: {c}"))
        assert row["frame_jitter_ms"] is None
        assert row["bitrate_kbps"] is None
        assert row["frame_rate"] == 24.0 and math.isfinite(row["frame_rate"])

    def test_file_sink_refuses_emit_after_close(self, tmp_path):
        sink = JSONLinesSink(tmp_path / "x.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(RuntimeError):
            sink.emit(None)

    def test_summary_sink_aggregates_per_flow(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        collector = CollectorSink()
        summary = SummarySink(degraded_fps_threshold=1e9)  # everything degraded
        QoEMonitor(pipeline, TraceSource(teams_call.trace), sinks=[collector, summary]).run()
        stats = summary.for_flow(collector.items[0].flow)
        assert stats.windows == len(collector)
        assert stats.degraded_windows == stats.windows
        assert stats.degraded_fraction == 1.0
        mean_fps = sum(e.frame_rate for e in collector.estimates) / len(collector)
        assert stats.mean_frame_rate == pytest.approx(mean_fps)
        assert stats.min_frame_rate == min(e.frame_rate for e in collector.estimates)
        with pytest.raises(KeyError):
            summary.for_flow(None)

    def test_metrics_snapshot_counters(self, teams_call):
        """The legacy ``snapshot()`` surface: names pinned, now deprecated."""
        pipeline = QoEPipeline.for_vca("teams")
        metrics = MetricsSnapshotSink()
        collector = CollectorSink()
        QoEMonitor(pipeline, TraceSource(teams_call.trace), sinks=[metrics, collector]).run()
        with pytest.warns(DeprecationWarning, match="metrics\\(\\)"):
            snapshot = metrics.snapshot()
        assert snapshot["qoe_estimates_total"] == len(collector)
        assert snapshot["qoe_flows_seen"] == 1
        assert snapshot["qoe_estimates_by_source_total{source=heuristic}"] == len(collector)
        assert snapshot["qoe_last_window_start_seconds"] == max(
            e.window_start for e in collector.estimates
        )

    def test_metrics_sink_registry_surface(self, teams_call):
        """The PR 8 surface: a registry-backed sink with a scrape renderer."""
        from repro import parse_prometheus
        from repro.obs.registry import MetricsRegistry

        pipeline = QoEPipeline.for_vca("teams")
        metrics = MetricsSnapshotSink(degraded_fps_threshold=1e9)  # everything degraded
        collector = CollectorSink()
        QoEMonitor(pipeline, TraceSource(teams_call.trace), sinks=[metrics, collector]).run()
        snapshot = metrics.metrics()
        assert snapshot["counters"]["qoe_estimates_total"] == len(collector)
        assert snapshot["counters"]["qoe_degraded_windows_total"] == len(collector)
        assert snapshot["gauges"]["qoe_flows_seen"] == 1
        series = parse_prometheus(metrics.render_prometheus())
        assert series["qoe_estimates_total"] == len(collector)
        assert series['qoe_estimates_by_source_total{source="heuristic"}'] == len(collector)
        # The deprecated flat mapping reads the same registry (both views
        # agree), and a caller-supplied registry is adopted, not replaced.
        with pytest.warns(DeprecationWarning):
            assert metrics.snapshot()["qoe_estimates_total"] == len(collector)
        shared = MetricsRegistry()
        assert MetricsSnapshotSink(registry=shared).registry is shared


class TestEvictionAndReadmission:
    def _mixed_feed(self):
        """A long-lived flow plus a short flow that dies early and resumes late."""
        long_lived = [make_packet(0.05 * i, 1000) for i in range(1200)]  # 0..60 s
        short = [make_packet(0.01 * i, 900, dst_port=40000) for i in range(300)]  # 0..3 s
        resumed = [make_packet(50.0 + 0.01 * i, 900, dst_port=40000) for i in range(300)]
        return sorted(long_lived + short + resumed, key=lambda p: p.timestamp)

    def test_evict_then_flush_never_double_emits(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        emitted = []
        for packet in self._mixed_feed():
            emitted.extend(engine.push(packet))
        emitted.extend(engine.evict_idle(idle_s=10.0))
        emitted.extend(engine.flush())
        per_flow: dict = {}
        for item in emitted:
            starts = per_flow.setdefault(item.flow, [])
            starts.append(item.estimate.window_start)
        for flow, starts in per_flow.items():
            assert len(starts) == len(set(starts)), f"{flow} emitted a window twice"

    def test_flush_after_evict_is_clean_for_surviving_flows(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        feed = self._mixed_feed()
        for packet in feed[: len(feed) // 2]:
            engine.push(packet)
        evicted_flows = {item.flow for item in engine.evict_idle(idle_s=5.0)}
        flushed = engine.flush()
        assert all(item.flow not in evicted_flows for item in flushed)
        assert engine.flush() == []  # idempotent

    def test_evicted_flow_readmitted_as_fresh_flow(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        emitted = []
        short = [make_packet(0.01 * i, 900, dst_port=40000) for i in range(300)]
        filler = [make_packet(0.05 * i, 1000) for i in range(400)]  # 0..20 s
        for packet in sorted(short + filler, key=lambda p: p.timestamp):
            emitted.extend(engine.push(packet))
        evicted = engine.evict_idle(idle_s=10.0)
        key = five_tuple(short[0])
        assert {item.flow for item in evicted} == {key}
        assert key not in engine._streams

        # The same 5-tuple resumes: it re-enters as a fresh flow and its new
        # windows are emitted again without interference from evicted state.
        resumed = [make_packet(30.0 + 0.01 * i, 900, dst_port=40000) for i in range(300)]
        late_filler = [make_packet(20.0 + 0.05 * i, 1000) for i in range(300)]
        for packet in sorted(resumed + late_filler, key=lambda p: p.timestamp):
            emitted.extend(engine.push(packet))
        assert key in engine._streams
        tail = engine.flush()
        resumed_windows = [
            item.estimate.window_start for item in emitted + tail if item.flow == key
        ]
        assert any(start >= 30.0 for start in resumed_windows)
        assert len(resumed_windows) == len(set(resumed_windows))

    def test_monitor_idle_timeout_evicts_automatically(self):
        pipeline = QoEPipeline.for_vca("teams")
        collector = CollectorSink()
        monitor = QoEMonitor(
            pipeline,
            IteratorSource(self._mixed_feed()),
            sinks=collector,
            config=pipeline.config.replace(idle_timeout_s=10.0),
        )
        report = monitor.run()
        assert report.n_evicted_flows >= 1
        assert report.n_flows == 2
        # Every estimate still reaches the sinks exactly once per window.
        per_flow: dict = {}
        for item in collector.items:
            per_flow.setdefault(item.flow, []).append(item.estimate.window_start)
        for starts in per_flow.values():
            assert len(starts) == len(set(starts))

    @pytest.mark.parametrize("block_size", [7, 64, 512])
    def test_block_path_idle_eviction_matches_per_packet(self, block_size):
        """Idle eviction under the block path: no loss, no duplicates.

        A flow that goes idle (evicted mid-run) and later resumes must
        produce exactly the per-packet monitor's estimates -- eviction
        sweeps land on block boundaries, but the resume happens long after
        either sweep, so the estimates themselves cannot differ.
        """
        pipeline = QoEPipeline.for_vca("teams")

        def run(block_size=None):
            collector = CollectorSink()
            report = QoEMonitor(
                pipeline,
                IteratorSource(self._mixed_feed()),
                sinks=collector,
                config=pipeline.config.replace(idle_timeout_s=10.0),
                block_size=block_size,
            ).run()
            return collector, report

        per_packet, packet_report = run()
        blocked, block_report = run(block_size=block_size)
        # Estimate-for-estimate equality per flow, in each flow's emission
        # order.  (The *global* interleaving may differ: eviction sweeps run
        # on block boundaries, so the evicted flow's flushed windows can land
        # a few positions later relative to other flows' estimates.)
        def per_flow(collector):
            grouped: dict = {}
            for item in collector.items:
                grouped.setdefault(item.flow, []).append(item.estimate)
            return grouped

        assert per_flow(blocked) == per_flow(per_packet)
        assert block_report.n_packets == packet_report.n_packets
        assert block_report.n_flows == packet_report.n_flows == 2
        assert block_report.n_evicted_flows >= 1
        # The short flow was evicted and resumed: both lives are in the
        # output, each window exactly once.
        short_flow = five_tuple(make_packet(0.0, 900, dst_port=40000))
        starts = [i.estimate.window_start for i in blocked.items if i.flow == short_flow]
        assert len(starts) == len(set(starts))
        assert any(start < 10.0 for start in starts)  # first life
        assert any(start >= 50.0 for start in starts)  # resumed life


class TestSinkContextManagers:
    """Every sink -- not just the file-backed ones -- works in a with block."""

    def test_all_sink_types_close_on_exit(self, tmp_path):
        from repro import EstimateSink

        closeable = [CollectorSink(), SummarySink(), MetricsSnapshotSink()]
        for sink in closeable:
            assert isinstance(sink, EstimateSink)
            with sink as entered:
                assert entered is sink
                assert not sink.closed
            assert sink.closed
        with JSONLinesSink(tmp_path / "x.jsonl") as jsonl:
            pass
        with pytest.raises(RuntimeError):
            jsonl.emit(None)  # closed on exit

    def test_with_block_scopes_a_monitor_run(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        with CollectorSink() as collector, SummarySink() as summary:
            QoEMonitor(pipeline, TraceSource(teams_call.trace), sinks=[collector, summary]).run()
            assert len(collector) > 0
        assert collector.closed and summary.closed

    def test_close_remains_idempotent_via_context_manager(self):
        sink = MetricsSnapshotSink()
        with sink:
            sink.close()
        assert sink.closed


class TestReportThroughputCounters:
    def test_report_exposes_packets_flows_and_wall_time(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        report = QoEMonitor(pipeline, TraceSource(teams_call.trace), sinks=CollectorSink()).run()
        assert report.packets_consumed == report.n_packets == len(teams_call.trace)
        assert report.flows_seen == report.n_flows == 1
        assert report.wall_time_s > 0.0
        assert report.packets_per_s == pytest.approx(
            report.packets_consumed / report.wall_time_s
        )

    def test_wall_time_does_not_break_report_equality(self, teams_call):
        """Two runs over the same capture compare equal (wall time excluded)."""
        pipeline = QoEPipeline.for_vca("teams")
        source = TraceSource(teams_call.trace)
        first = QoEMonitor(pipeline, source, sinks=CollectorSink()).run()
        second = QoEMonitor(pipeline, source, sinks=CollectorSink()).run()
        assert first == second
        assert first.wall_time_s != 0.0

    def test_batch_grid_run_populates_counters(self, teams_call, teams_pcap):
        pipeline = QoEPipeline.for_vca("teams")
        report = QoEMonitor(
            pipeline,
            PcapSource(teams_pcap),
            sinks=CollectorSink(),
            config=pipeline.config.replace(demux_flows=False),
            batch_grid=True,
        ).run()
        assert report.packets_consumed == len(teams_call.trace)
        assert report.wall_time_s > 0.0


class TestDeprecatedAliases:
    def test_estimates_for_warns_and_matches_collect(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        fresh = StreamingQoEPipeline(pipeline, demux_flows=False)
        expected = fresh.collect(teams_call.trace)
        legacy = StreamingQoEPipeline(pipeline, demux_flows=False)
        with pytest.warns(DeprecationWarning, match="collect"):
            result = legacy.estimates_for(teams_call.trace)
        assert [item.estimate for item in result] == [item.estimate for item in expected]

    def test_estimates_for_demux_mode_matches_collect_with_flow_tags(self, teams_call, lossy_teams_call):
        """The alias contract holds in the default multi-flow mode too."""
        pipeline = QoEPipeline.for_vca("teams")
        flow_a = teams_call.trace.without_ground_truth().without_rtp()
        flow_b = remap_flow(lossy_teams_call.trace.without_ground_truth().without_rtp())
        merged = sorted(list(flow_a) + list(flow_b), key=lambda p: p.timestamp)
        expected = StreamingQoEPipeline(pipeline).collect(merged)
        with pytest.warns(DeprecationWarning) as record:
            result = StreamingQoEPipeline(pipeline).estimates_for(merged)
        assert all(w.category is DeprecationWarning for w in record)
        assert [(item.flow, item.estimate) for item in result] == [
            (item.flow, item.estimate) for item in expected
        ]

    def test_batch_estimates_warns_and_matches_collect(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        expected = StreamingQoEPipeline(pipeline, demux_flows=False).collect(
            teams_call.trace, batch=True
        )
        with pytest.warns(DeprecationWarning, match="batch=True"):
            result = StreamingQoEPipeline(pipeline, demux_flows=False).batch_estimates(
                teams_call.trace
            )
        assert result == expected

    def test_collect_batch_requires_single_flow(self, teams_call):
        with pytest.raises(RuntimeError, match="demux_flows"):
            StreamingQoEPipeline(QoEPipeline.for_vca("teams")).collect(
                teams_call.trace, batch=True
            )


class TestObservability:
    """The single-process monitor's telemetry plane (PR 8)."""

    @pytest.mark.parametrize("block_size", [None, 256])
    def test_estimates_bit_identical_with_obs_on(self, teams_call, block_size):
        from repro import ObsConfig

        pipeline = QoEPipeline.for_vca("teams")
        source = TraceSource(teams_call.trace)

        def run(obs=None):
            sink = CollectorSink()
            report = QoEMonitor(
                pipeline, source, sinks=sink, block_size=block_size, obs=obs
            ).run()
            return sink, report

        plain, plain_report = run()
        observed, report = run(ObsConfig(enabled=True))
        assert [(i.flow, i.estimate) for i in observed.items] == [
            (i.flow, i.estimate) for i in plain.items
        ]
        assert report == plain_report  # metrics/timing are compare-excluded
        assert plain_report.metrics == {}
        assert report.metrics["counters"]["qoe_monitor_packets_total"] == report.n_packets
        assert report.metrics["counters"]["qoe_monitor_estimates_total"] == report.n_estimates
        assert report.metrics["gauges"]["qoe_monitor_flows_seen"] == report.n_flows

    def test_timing_breakdown_and_stream_throughput(self, teams_call):
        report = QoEMonitor(
            QoEPipeline.for_vca("teams"), TraceSource(teams_call.trace), sinks=CollectorSink()
        ).run()
        timing = report.timing
        assert set(timing) == {"wall_time_s", "setup_s", "stream_s", "drain_s"}
        assert timing["wall_time_s"] == report.wall_time_s
        assert timing["setup_s"] + timing["stream_s"] + timing["drain_s"] == pytest.approx(
            timing["wall_time_s"]
        )
        assert report.stream_packets_per_s == report.n_packets / timing["stream_s"]

    def test_block_mode_records_engine_spans(self, teams_call):
        from repro import ObsConfig, parse_prometheus, render_prometheus

        monitor = QoEMonitor(
            QoEPipeline.for_vca("teams"),
            TraceSource(teams_call.trace),
            sinks=CollectorSink(),
            block_size=256,
            obs=ObsConfig(enabled=True),
        )
        report = monitor.run()
        stages = {
            series.split('stage="')[1].rstrip('"}')
            for series in report.metrics["histograms"]
            if series.startswith("qoe_stage_seconds")
        }
        assert {"source_read", "push_block", "sink_emit"} <= stages
        # The engine's tick counters agree with the loop totals, and the
        # whole snapshot survives a scrape round-trip.
        assert report.metrics["counters"]["qoe_engine_packets_total"] == report.n_packets
        assert monitor.metrics() == report.metrics
        series = parse_prometheus(render_prometheus(report.metrics))
        assert series["qoe_monitor_packets_total"] == report.n_packets

    def test_per_packet_mode_keeps_the_engine_uninstrumented(self, teams_call):
        from repro import ObsConfig

        monitor = QoEMonitor(
            QoEPipeline.for_vca("teams"),
            TraceSource(teams_call.trace),
            sinks=CollectorSink(),
            obs=ObsConfig(enabled=True),
        )
        report = monitor.run()
        # No per-packet spans or tick counters -- that overhead is exactly
        # what the per-packet loop avoids; the monitor totals sync once.
        assert monitor.engine.obs is None
        assert "qoe_engine_packets_total" not in report.metrics["counters"]
        assert report.metrics["histograms"] == {}
        assert report.metrics["counters"]["qoe_monitor_packets_total"] == report.n_packets
