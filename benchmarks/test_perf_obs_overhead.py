"""Overhead benchmark: the telemetry plane on vs off.

Measures packets/second of the columnar monitor hot path
(``QoEMonitor(block_size=...)``) with ``ObsConfig(enabled=True)`` against
the obs-off default, for both the heuristic and a trained pipeline.  The
instrumented run records every stage span (source read, ``push_block``,
inference, sink fan-out) plus the tick counters, so the ratio is the
full price of observability on the single-process hot path.

The acceptance bar (the PR 8 ISSUE): obs-on throughput must stay within
5% of obs-off -- ratio >= 0.95 -- enforced via ``enforced_floor`` (so a
single-core runner records without asserting and CI smoke sets the floor
to 0).  Estimates are bit-identical on vs off (pinned by
``tests/cluster/test_obs_plane.py``), so the ratio compares equal work.

The result is written to ``benchmarks/results/BENCH_obs.json``.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from conftest import RESULTS_DIR, enforced_floor, save_artifact
from repro import CollectorSink, ObsConfig, QoEMonitor, TraceSource
from repro.core.estimators import IPUDPMLEstimator
from repro.core.pipeline import QoEPipeline
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.trace import PacketTrace
from repro.obs.render import render_prometheus

_SMOKE = "BENCH_SMOKE_DURATION_S" in os.environ
TRACE_DURATION_S = float(os.environ.get("BENCH_SMOKE_DURATION_S", 60.0))
N_FLOWS = 8
BLOCK_SIZE = 1024
#: Obs-on must retain this fraction of obs-off throughput.  The env var
#: always wins (CI smoke sets 0); single-core runners record only.
OBS_RATIO_FLOOR = enforced_floor("BENCH_OBS_MIN_RATIO", 0.95)
_ARTIFACT_NAME = "BENCH_obs_smoke" if _SMOKE else "BENCH_obs"

_measured: dict[str, float] = {}
_counts: dict[str, int] = {}


def _synthetic_session(seed: int, client_ip: str, client_port: int) -> list[Packet]:
    """One VCA-like downlink flow: ~25 fps fragmented video bursts."""
    rng = np.random.default_rng(seed)
    ip = IPv4Header(src="192.0.2.10", dst=client_ip)
    udp = UDPHeader(src_port=3478, dst_port=client_port)
    packets: list[Packet] = []
    t = float(rng.uniform(0.0, 0.02))
    while t < TRACE_DURATION_S:
        size = int(rng.integers(700, 1200))
        for i in range(int(rng.integers(2, 5))):
            packets.append(Packet(timestamp=t + i * 0.0008, ip=ip, udp=udp, payload_size=size))
        t += float(rng.normal(0.04, 0.004))
    return packets


def _trained_pipeline() -> QoEPipeline:
    """A deterministically-trained stack (same recipe as tests/cluster)."""
    pipeline = QoEPipeline.for_vca("teams")
    pipeline.ml = IPUDPMLEstimator.for_profile(pipeline.profile, n_estimators=8, max_depth=6)
    rng = np.random.default_rng(0)
    X = rng.uniform(0.0, 1500.0, size=(80, len(pipeline.ml.feature_names)))
    pipeline.ml.fit(
        X,
        {
            "frame_rate": rng.uniform(5.0, 30.0, 80),
            "bitrate": rng.uniform(100.0, 2000.0, 80),
            "frame_jitter": rng.uniform(0.0, 50.0, 80),
            "resolution": rng.choice(["low", "medium", "high"], 80),
        },
    )
    pipeline._trained = True
    return pipeline


@pytest.fixture(scope="module")
def vantage_trace() -> PacketTrace:
    """N_FLOWS interleaved sessions, as one capture point would see them."""
    flows = [
        _synthetic_session(seed, f"10.0.0.{seed + 1}", 50000 + seed) for seed in range(N_FLOWS)
    ]
    trace = PacketTrace([p for flow in flows for p in flow])
    trace.block  # noqa: B018 -- builds the columnar cache outside the timed regions
    return trace


@pytest.fixture(scope="module")
def trained_pipeline() -> QoEPipeline:
    return _trained_pipeline()


_last_metrics: dict[str, dict] = {}


def _run_monitor(pipeline: QoEPipeline, trace: PacketTrace, obs: ObsConfig | None) -> int:
    monitor = QoEMonitor(
        pipeline, TraceSource(trace), sinks=CollectorSink(), block_size=BLOCK_SIZE, obs=obs
    )
    report = monitor.run()
    if obs is not None:
        _last_metrics["snapshot"] = report.metrics
    return report.n_estimates


def test_benchmark_heuristic_obs_off(benchmark, vantage_trace):
    n = benchmark.pedantic(
        _run_monitor, args=(QoEPipeline.for_vca("teams"), vantage_trace, None),
        rounds=2, iterations=1,
    )
    _counts["heuristic_off"] = n
    if benchmark.stats is not None:
        _measured["heuristic_off_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_heuristic_obs_on(benchmark, vantage_trace):
    n = benchmark.pedantic(
        _run_monitor,
        args=(QoEPipeline.for_vca("teams"), vantage_trace, ObsConfig(enabled=True)),
        rounds=2, iterations=1,
    )
    _counts["heuristic_on"] = n
    if benchmark.stats is not None:
        _measured["heuristic_on_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_trained_obs_off(benchmark, vantage_trace, trained_pipeline):
    n = benchmark.pedantic(
        _run_monitor, args=(trained_pipeline, vantage_trace, None), rounds=2, iterations=1
    )
    _counts["trained_off"] = n
    if benchmark.stats is not None:
        _measured["trained_off_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_trained_obs_on(benchmark, vantage_trace, trained_pipeline):
    n = benchmark.pedantic(
        _run_monitor,
        args=(trained_pipeline, vantage_trace, ObsConfig(enabled=True)),
        rounds=2, iterations=1,
    )
    _counts["trained_on"] = n
    if benchmark.stats is not None:
        _measured["trained_on_s"] = float(benchmark.stats.stats.mean)


def test_obs_overhead_and_artifact(vantage_trace):
    needed = {"heuristic_off_s", "heuristic_on_s", "trained_off_s", "trained_on_s"}
    if not needed <= _measured.keys():
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    # Observability changed nothing about the work: same estimate counts.
    assert _counts["heuristic_on"] == _counts["heuristic_off"]
    assert _counts["trained_on"] == _counts["trained_off"]

    n_packets = len(vantage_trace)
    pps = {name: n_packets / seconds for name, seconds in _measured.items()}
    heuristic_ratio = pps["heuristic_on_s"] / pps["heuristic_off_s"]
    trained_ratio = pps["trained_on_s"] / pps["trained_off_s"]

    # The instrumented run really recorded the plane: spans + counters that
    # render to a parseable scrape (the CI smoke's liveness check).
    snapshot = _last_metrics["snapshot"]
    scrape = render_prometheus(snapshot)
    n_series = len([line for line in scrape.splitlines() if not line.startswith("#")])
    assert snapshot["counters"]["qoe_engine_packets_total"] == n_packets
    assert any(series.startswith("qoe_stage_seconds") for series in snapshot["histograms"])

    payload = {
        "benchmark": "obs_overhead",
        "trace": {
            "duration_s": TRACE_DURATION_S,
            "n_packets": n_packets,
            "n_flows": N_FLOWS,
        },
        "block_size": BLOCK_SIZE,
        "heuristic_obs_off_pps": round(pps["heuristic_off_s"], 1),
        "heuristic_obs_on_pps": round(pps["heuristic_on_s"], 1),
        "heuristic_ratio": round(heuristic_ratio, 3),
        "trained_obs_off_pps": round(pps["trained_off_s"], 1),
        "trained_obs_on_pps": round(pps["trained_on_s"], 1),
        "trained_ratio": round(trained_ratio, 3),
        "ratio_floor": OBS_RATIO_FLOOR,
        "scrape_series": n_series,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{_ARTIFACT_NAME}.json").write_text(json.dumps(payload, indent=2) + "\n")
    save_artifact(
        _ARTIFACT_NAME,
        "\n".join(
            [
                f"Telemetry plane overhead ({TRACE_DURATION_S:.0f}s, {N_FLOWS}-flow synthetic trace, block_size={BLOCK_SIZE})",
                f"  packets:            {n_packets}",
                f"  heuristic obs off:  {pps['heuristic_off_s']:12.0f} packets/s",
                f"  heuristic obs on:   {pps['heuristic_on_s']:12.0f} packets/s  (ratio {heuristic_ratio:.3f}, floor {OBS_RATIO_FLOOR})",
                f"  trained obs off:    {pps['trained_off_s']:12.0f} packets/s",
                f"  trained obs on:     {pps['trained_on_s']:12.0f} packets/s  (ratio {trained_ratio:.3f}, floor {OBS_RATIO_FLOOR})",
                f"  scrape series:      {n_series}",
            ]
        ),
    )
    assert heuristic_ratio >= OBS_RATIO_FLOOR, (
        f"obs-on heuristic throughput only {heuristic_ratio:.3f}x of obs-off "
        f"(floor {OBS_RATIO_FLOOR})"
    )
    assert trained_ratio >= OBS_RATIO_FLOOR, (
        f"obs-on trained throughput only {trained_ratio:.3f}x of obs-off "
        f"(floor {OBS_RATIO_FLOOR})"
    )
