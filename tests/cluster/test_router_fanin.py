"""Unit tests for the sharding router, the fan-in merge, and the worker loop.

These cover the cluster's deterministic plumbing without process overhead;
the end-to-end multiprocess behaviour is pinned by
``test_sharded_monitor.py``.
"""

from __future__ import annotations

import json
import queue

import pytest

from repro.cluster import FanInSink, FlowShardRouter
from repro.cluster.fanin import flow_sort_key
from repro.cluster.worker import shard_worker_main
from repro.core.pipeline import PipelineEstimate, QoEPipeline
from repro.core.streaming import StreamEstimate
from repro.net.flows import FlowKey, five_tuple
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.sinks.base import CollectorSink


def make_packet(timestamp=0.0, src="10.1.0.1", src_port=4000, dst="10.2.0.2", dst_port=5000):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src=src, dst=dst),
        udp=UDPHeader(src_port=src_port, dst_port=dst_port),
        payload_size=1000,
    )


def make_item(window_start: float, dst_port: int = 50000) -> StreamEstimate:
    flow = FlowKey(src="192.0.2.10", src_port=3478, dst="10.0.0.1", dst_port=dst_port)
    estimate = PipelineEstimate(
        window_start=window_start,
        frame_rate=25.0,
        bitrate_kbps=900.0,
        frame_jitter_ms=5.0,
        resolution=None,
        source="heuristic",
    )
    return StreamEstimate(flow=flow, estimate=estimate)


class TestFlowShardRouter:
    def test_same_flow_always_same_shard(self):
        router = FlowShardRouter(4)
        packets = [make_packet(timestamp=0.1 * i) for i in range(50)]
        shards = {router.shard_of(p) for p in packets}
        assert len(shards) == 1

    def test_both_directions_colocate(self):
        router = FlowShardRouter(8)
        forward = make_packet()
        backward = make_packet(src="10.2.0.2", src_port=5000, dst="10.1.0.1", dst_port=4000)
        assert five_tuple(forward) != five_tuple(backward)
        assert router.shard_of(forward) == router.shard_of(backward)

    def test_deterministic_across_router_instances(self):
        packets = [make_packet(dst_port=5000 + i) for i in range(64)]
        a = [FlowShardRouter(4).shard_of(p) for p in packets]
        b = [FlowShardRouter(4).shard_of(p) for p in packets]
        assert a == b

    def test_spreads_flows_across_shards(self):
        router = FlowShardRouter(4)
        shards = {router.shard_of(make_packet(dst_port=5000 + i)) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_single_shard_and_validation(self):
        router = FlowShardRouter(1)
        assert router.shard_of(make_packet()) == 0
        with pytest.raises(ValueError):
            FlowShardRouter(0)

    def test_shard_of_key_accepts_either_direction(self):
        router = FlowShardRouter(8)
        key = five_tuple(make_packet())
        assert router.shard_of_key(key) == router.shard_of_key(key.reversed())


class TestFanInSink:
    def test_releases_only_below_min_watermark(self):
        downstream = CollectorSink()
        fan_in = FanInSink(downstream, n_shards=2)
        fan_in.accept(0, [make_item(0.0), make_item(5.0)], low_watermark=6.0)
        # Shard 1 has said nothing: nothing may be released yet.
        assert len(downstream) == 0
        fan_in.accept(1, [make_item(1.0, dst_port=50001)], low_watermark=2.0)
        # min watermark is now 2.0: only windows strictly below it go out.
        assert [i.estimate.window_start for i in downstream.items] == [0.0, 1.0]
        # Shard 1 exhausted: shard 0's own bound (6.0) is the limit now.
        fan_in.finish(1)
        assert [i.estimate.window_start for i in downstream.items] == [0.0, 1.0, 5.0]
        fan_in.finish(0)
        assert fan_in.records_released == 3

    def test_merged_order_is_window_then_flow(self):
        downstream = CollectorSink()
        fan_in = FanInSink(downstream, n_shards=3)
        fan_in.accept(2, [make_item(1.0, dst_port=50002)])
        fan_in.accept(0, [make_item(0.0, dst_port=50009), make_item(1.0, dst_port=50009)])
        fan_in.accept(1, [make_item(1.0, dst_port=50001), make_item(2.0, dst_port=50001)])
        fan_in.close()
        keys = [(i.estimate.window_start, i.flow.dst_port) for i in downstream.items]
        assert keys == [(0.0, 50009), (1.0, 50001), (1.0, 50002), (1.0, 50009), (2.0, 50001)]

    def test_order_invariant_to_message_interleaving(self):
        batches = {
            0: [(0, [make_item(0.0)], 1.0), (0, [make_item(1.0), make_item(2.0)], 3.0)],
            1: [(1, [make_item(0.0, dst_port=50001)], 2.0), (1, [make_item(3.0, dst_port=50001)], 4.0)],
        }
        outputs = []
        for order in ([0, 0, 1, 1], [1, 0, 1, 0], [0, 1, 0, 1]):
            downstream = CollectorSink()
            fan_in = FanInSink(downstream, n_shards=2)
            pending = {shard: list(shard_batches) for shard, shard_batches in batches.items()}
            for shard in order:
                shard_id, items, watermark = pending[shard].pop(0)
                fan_in.accept(shard_id, items, watermark)
            fan_in.close()
            outputs.append([(i.estimate.window_start, i.flow.dst_port) for i in downstream.items])
        assert outputs[0] == outputs[1] == outputs[2]

    def test_watermark_never_regresses(self):
        downstream = CollectorSink()
        fan_in = FanInSink(downstream, n_shards=1)
        fan_in.accept(0, [make_item(0.0)], low_watermark=5.0)
        assert len(downstream) == 1
        # A stale (lower) watermark must not re-open the released range.
        fan_in.accept(0, [], low_watermark=1.0)
        fan_in.accept(0, [make_item(4.0)], low_watermark=5.0)
        assert [i.estimate.window_start for i in downstream.items] == [0.0, 4.0]

    def test_plain_sink_compatibility(self):
        downstream = CollectorSink()
        with FanInSink(downstream) as fan_in:
            fan_in.emit(make_item(1.0))
            fan_in.emit(make_item(0.0))
        assert downstream.closed
        assert [i.estimate.window_start for i in downstream.items] == [0.0, 1.0]
        assert fan_in.records_released == 2

    def test_close_is_idempotent_and_guards_further_input(self):
        fan_in = FanInSink(n_shards=2)
        fan_in.close()
        fan_in.close()
        with pytest.raises(RuntimeError):
            fan_in.accept(0, [make_item(0.0)])
        with pytest.raises(ValueError):
            FanInSink(n_shards=0)
        with pytest.raises(ValueError):
            FanInSink(n_shards=2).accept(2, [])

    def test_accept_after_finish_raises(self):
        """A late batch for a finished shard would release immediately (its
        watermark is +inf) and could break the global ordering contract --
        the fan-in must refuse it loudly instead."""
        downstream = CollectorSink()
        fan_in = FanInSink(downstream, n_shards=2)
        fan_in.accept(0, [make_item(0.0)], low_watermark=1.0)
        fan_in.finish(0)
        with pytest.raises(RuntimeError, match="already finished"):
            fan_in.accept(0, [make_item(5.0)])
        # The violation was rejected before buffering: closing releases only
        # what legitimately arrived.
        fan_in.close()
        assert [i.estimate.window_start for i in downstream.items] == [0.0]

    def test_flow_sort_key_totally_orders_none_first(self):
        keys = [make_item(0.0, dst_port=50001).flow, None, make_item(0.0).flow]
        ordered = sorted(keys, key=flow_sort_key)
        assert ordered[0] is None


class TestRouterMigrationOverlay:
    """The epoch-aware overlay layered over the static CRC-32 map (PR 7)."""

    KEYS = [FlowKey("192.0.2.10", 3478, f"10.0.0.{i}", 50000 + i) for i in range(1, 5)]

    def test_unmigrated_flows_keep_their_pinned_assignments(self):
        """The PR 4 literal pins survive the overlay: a router with overrides
        still routes every *other* flow exactly as the static map does."""
        expected = {2: [0, 0, 1, 0], 4: [0, 2, 3, 2], 8: [4, 6, 7, 2]}
        for n_shards, assignment in expected.items():
            router = FlowShardRouter(n_shards)
            moved = self.KEYS[0]
            router.set_override(moved, (assignment[0] + 1) % n_shards)
            for key, static_shard in zip(self.KEYS[1:], assignment[1:]):
                assert router.shard_of_key(key) == static_shard
                assert router.shard_of_key(key.reversed()) == static_shard

    def test_override_moves_both_directions(self):
        router = FlowShardRouter(4)
        key = self.KEYS[0]
        base = router.shard_of_key(key)
        dst = (base + 1) % 4
        router.set_override(key, dst)
        assert router.shard_of_key(key) == dst
        assert router.shard_of_key(key.reversed()) == dst
        # The memoized base map is untouched -- only the overlay changed.
        assert router.base_shard_of_key(key) == base

    def test_override_applies_from_either_direction(self):
        router = FlowShardRouter(4)
        key = self.KEYS[1]
        dst = (router.shard_of_key(key) + 2) % 4
        router.set_override(key.reversed(), dst)
        assert router.shard_of_key(key) == dst

    def test_override_validates_shard_range(self):
        router = FlowShardRouter(2)
        with pytest.raises(ValueError, match="out of range"):
            router.set_override(self.KEYS[0], 2)
        with pytest.raises(ValueError, match="out of range"):
            router.set_override(self.KEYS[0], -1)

    def test_epochs_are_one_based_and_strictly_increasing(self):
        router = FlowShardRouter(2)
        assert router.epoch == 0
        assert [router.next_epoch() for _ in range(3)] == [1, 2, 3]

    def test_partition_block_honours_overrides(self):
        from repro.net.block import PacketBlock

        packets = [
            make_packet(timestamp=0.01 * i, dst="10.2.0.%d" % (i % 3 + 1), dst_port=5000 + i % 3)
            for i in range(30)
        ]
        block = PacketBlock.from_packets(packets)
        router = FlowShardRouter(2)
        moved = FlowKey("10.1.0.1", 4000, "10.2.0.1", 5000)
        dst = (router.shard_of_key(moved) + 1) % 2
        router.set_override(moved, dst)
        for shard, sub in router.partition_block(block):
            for packet in sub.to_packets():
                assert router.shard_of(packet) == shard


class TestFanInMigrationFences:
    """The release-threshold fences that bracket a live flow migration."""

    def test_fence_caps_the_release_threshold(self):
        downstream = CollectorSink()
        fan_in = FanInSink(downstream, n_shards=2)
        fan_in.add_fence("epoch-1", 1.0)
        # Both shards' watermarks pass 3.0, but the fence holds at 1.0.
        fan_in.accept(0, [make_item(0.0), make_item(2.0)], low_watermark=3.0)
        fan_in.accept(1, [make_item(1.0, dst_port=50001)], low_watermark=3.0)
        assert [i.estimate.window_start for i in downstream.items] == [0.0]
        fan_in.clear_fence("epoch-1")
        assert [i.estimate.window_start for i in downstream.items] == [0.0, 1.0, 2.0]

    def test_lowest_of_several_fences_wins(self):
        downstream = CollectorSink()
        fan_in = FanInSink(downstream, n_shards=1)
        fan_in.add_fence("a", 2.0)
        fan_in.add_fence("b", 4.0)
        fan_in.accept(0, [make_item(1.0), make_item(3.0), make_item(5.0)], low_watermark=9.0)
        assert [i.estimate.window_start for i in downstream.items] == [1.0]
        fan_in.clear_fence("a")
        assert [i.estimate.window_start for i in downstream.items] == [1.0, 3.0]
        fan_in.clear_fence("b")
        assert [i.estimate.window_start for i in downstream.items] == [1.0, 3.0, 5.0]

    def test_clear_unknown_fence_is_a_noop(self):
        fan_in = FanInSink(n_shards=1)
        fan_in.clear_fence("never-installed")  # must not raise or release

    def test_rebase_is_the_sanctioned_regression(self):
        downstream = CollectorSink()
        fan_in = FanInSink(downstream, n_shards=2)
        fan_in.add_fence("epoch-1", 1.0)
        fan_in.accept(0, [], low_watermark=6.0)  # stale-high destination bound
        fan_in.accept(1, [], low_watermark=6.0)
        # Post-restore the destination's genuine bound is lower; install it
        # verbatim, then lift the fence -- the standard migration sequence.
        fan_in.rebase_watermark(0, 2.0)
        fan_in.clear_fence("epoch-1")
        fan_in.accept(0, [make_item(1.5)], low_watermark=2.0)
        # 1.5 < 2.0 == min watermark: released; nothing above it was.
        assert [i.estimate.window_start for i in downstream.items] == [1.5]

    def test_rebase_skips_finished_shards(self):
        fan_in = FanInSink(CollectorSink(), n_shards=2)
        fan_in.finish(0)
        fan_in.rebase_watermark(0, 1.0)  # must not reopen a finished shard
        fan_in.accept(1, [make_item(5.0, dst_port=50001)], low_watermark=9.0)
        assert fan_in.records_released == 1

    def test_close_drops_standing_fences(self):
        downstream = CollectorSink()
        fan_in = FanInSink(downstream, n_shards=1)
        fan_in.add_fence("epoch-1", 0.0)
        fan_in.accept(0, [make_item(3.0)], low_watermark=9.0)
        assert len(downstream) == 0
        fan_in.close()
        assert [i.estimate.window_start for i in downstream.items] == [3.0]

    def test_add_fence_after_close_raises(self):
        fan_in = FanInSink(n_shards=1)
        fan_in.close()
        with pytest.raises(RuntimeError, match="closed"):
            fan_in.add_fence("late", 1.0)


class TestShardWorkerLoop:
    """The worker entry point run in-process with plain queues."""

    def _run_worker(self, payload: str, chunks, config_dict=None):
        in_queue: queue.Queue = queue.Queue()
        out_queue: queue.Queue = queue.Queue()
        for chunk in chunks:
            in_queue.put(("chunk", chunk))
        in_queue.put(("stop",))
        shard_worker_main(7, payload, config_dict, None, in_queue, out_queue)
        messages = []
        while not out_queue.empty():
            messages.append(out_queue.get_nowait())
        return messages

    def test_worker_emits_progress_then_done_with_stats(self, single_flow_packets):
        packets = single_flow_packets
        payload = json.dumps(QoEPipeline.for_vca("teams").to_payload())
        chunks = [packets[i : i + 100] for i in range(0, len(packets), 100)]
        messages = self._run_worker(payload, chunks)
        kinds = [message[0] for message in messages]
        assert kinds.count("done") == 1 and kinds[-1] == "done"
        assert all(kind == "progress" for kind in kinds[:-1])
        _, shard_id, tail, stats = messages[-1]
        assert shard_id == 7
        assert stats["n_packets"] == len(packets)
        assert stats["n_flows"] == 1
        emitted = [item for message in messages[:-1] for item in message[2]] + tail
        assert len(emitted) >= 3  # one per closed window
        # Progress watermarks are monotone and honoured by every later batch.
        watermark = float("-inf")
        for message in messages[:-1]:
            if message[3] is not None:
                assert message[3] >= watermark
                watermark = message[3]

    def test_worker_reports_errors_instead_of_dying_silently(self):
        messages = self._run_worker("{\"format\": \"bogus\"}", [])
        assert len(messages) == 1
        kind, shard_id, trace = messages[0]
        assert kind == "error" and shard_id == 7
        assert "not a saved QoE pipeline" in trace


class TestRouterMemoizationAndBlocks:
    """The per-flow shard memo and the columnar partition path."""

    def test_assignment_pinned_and_unchanged_by_memoization(self):
        """The memoized lookup returns exactly the uncached CRC-32 result.

        The literal expectations pin the byte encoding itself: a change to
        the hash or the canonical form would silently re-home every flow of
        every deployed shard layout.
        """
        keys = [
            FlowKey("192.0.2.10", 3478, f"10.0.0.{i}", 50000 + i) for i in range(1, 5)
        ]
        expected = {2: [0, 0, 1, 0], 4: [0, 2, 3, 2], 8: [4, 6, 7, 2]}
        for n_shards, assignment in expected.items():
            router = FlowShardRouter(n_shards)
            assert [router.shard_of_key(key) for key in keys] == assignment
            # Cached answers == uncached recomputation, for both directions.
            for key in keys:
                assert router.shard_of_key(key) == router._shard_of_key(key)
                assert router.shard_of_key(key.reversed()) == router._shard_of_key(key)

    def test_memo_hits_after_first_lookup(self):
        router = FlowShardRouter(4)
        packets = [make_packet(timestamp=0.01 * i, dst_port=5000 + i % 3) for i in range(30)]
        for packet in packets:
            router.shard_of(packet)
        info = router.base_shard_of_key.cache_info()
        assert info.misses == 3  # one CRC per unique flow
        assert info.hits == 27  # every other packet is a dict hit

    def test_partition_block_matches_per_packet_routing(self):
        from repro.net.block import PacketBlock

        packets = [
            make_packet(timestamp=0.01 * i, dst="10.2.0.%d" % (i % 5 + 1), dst_port=5000 + i % 5)
            for i in range(100)
        ]
        block = PacketBlock.from_packets(packets)
        for n_shards in (1, 2, 4):
            router = FlowShardRouter(n_shards)
            parts = dict(router.partition_block(block))
            # Every packet lands on exactly the shard per-packet routing picks.
            seen = 0
            for shard, sub in parts.items():
                assert not sub.has_packet_cache  # wire-bound: arrays only
                for packet in sub.to_packets():
                    assert router.shard_of(packet) == shard
                    seen += 1
                # Arrival order is preserved within the shard.
                assert list(sub.timestamps) == sorted(sub.timestamps)
            assert seen == len(packets)

    def test_partition_block_empty(self):
        from repro.net.block import PacketBlock

        assert FlowShardRouter(4).partition_block(PacketBlock.from_packets([])) == []

    def test_partitioned_chunks_do_not_ship_capture_wide_tables(self):
        """A chunk sliced from a whole-capture block must compact its side
        tables before crossing the wire: one message must not carry every
        flow the capture ever saw."""
        from repro.net.block import PacketBlock

        packets = [
            make_packet(timestamp=0.001 * i, dst=f"10.2.{i % 40}.1", dst_port=5000 + i % 40)
            for i in range(400)
        ]
        capture = PacketBlock.from_packets(packets)
        assert len(capture.flows) == 40
        chunk = capture[0:10]  # 10 packets, 10 distinct flows of the 40
        router = FlowShardRouter(4)
        for shard, sub in router.partition_block(chunk):
            assert len(sub.flows) <= 10
            assert len(sub.addresses) <= 11
            for packet in sub.to_packets():
                assert router.shard_of(packet) == shard
