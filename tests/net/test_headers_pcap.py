"""Unit tests for binary header codecs and pcap I/O."""

import numpy as np
import pytest

from repro.net.headers import (
    decode_ethernet_ipv4_udp,
    encode_ethernet_ipv4_udp,
    ipv4_checksum,
)
from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader
from repro.net.pcap import PcapReader, read_pcap, write_pcap
from repro.net.trace import PacketTrace
from repro.rtp.header import RTPHeader


class TestHeaderCodec:
    def test_round_trip(self):
        ip = IPv4Header(src="192.168.1.10", dst="10.0.0.1", ttl=52)
        udp = UDPHeader(src_port=3478, dst_port=50000)
        payload = b"\x01\x02\x03\x04" * 50
        frame = encode_ethernet_ipv4_udp(ip, udp, payload)
        ip2, udp2, payload2 = decode_ethernet_ipv4_udp(frame)
        assert ip2.src == ip.src and ip2.dst == ip.dst and ip2.ttl == 52
        assert udp2.src_port == 3478 and udp2.dst_port == 50000
        assert payload2 == payload

    def test_checksum_of_valid_header_is_zero_when_rechecked(self):
        ip = IPv4Header(src="1.2.3.4", dst="5.6.7.8")
        udp = UDPHeader(src_port=1, dst_port=2)
        frame = encode_ethernet_ipv4_udp(ip, udp, b"abc")
        ip_header = frame[14:34]
        assert ipv4_checksum(ip_header) == 0

    def test_truncated_frame_rejected(self):
        with pytest.raises(ValueError):
            decode_ethernet_ipv4_udp(b"\x00" * 20)

    def test_non_ipv4_rejected(self):
        ip = IPv4Header(src="1.2.3.4", dst="5.6.7.8")
        udp = UDPHeader(src_port=1, dst_port=2)
        frame = bytearray(encode_ethernet_ipv4_udp(ip, udp, b"x"))
        frame[12:14] = b"\x86\xdd"  # IPv6 ethertype
        with pytest.raises(ValueError):
            decode_ethernet_ipv4_udp(bytes(frame))

    def test_invalid_ip_address_rejected(self):
        with pytest.raises(ValueError):
            encode_ethernet_ipv4_udp(
                IPv4Header(src="not-an-ip", dst="1.2.3.4"), UDPHeader(src_port=1, dst_port=2), b""
            )


class TestPcapRoundTrip:
    def _make_packets(self, n=25):
        rng = np.random.default_rng(0)
        packets = []
        for i in range(n):
            rtp = RTPHeader(
                payload_type=102,
                sequence_number=i % 65536,
                timestamp=(i // 3) * 3000,
                ssrc=42,
                marker=(i % 3 == 2),
            )
            packets.append(
                Packet(
                    timestamp=0.01 * i,
                    ip=IPv4Header(src="192.0.2.10", dst="10.0.0.1"),
                    udp=UDPHeader(src_port=3478, dst_port=50000),
                    payload_size=int(rng.integers(100, 1200)),
                    rtp=rtp,
                    media_type=MediaType.VIDEO,
                    frame_id=i // 3,
                )
            )
        return packets

    def test_write_and_read_back(self, tmp_path):
        packets = self._make_packets()
        path = tmp_path / "call.pcap"
        written = write_pcap(path, packets)
        assert written == len(packets)
        restored = read_pcap(path)
        assert len(restored) == len(packets)
        for original, loaded in zip(packets, restored):
            assert loaded.payload_size == original.payload_size
            assert loaded.udp.src_port == original.udp.src_port
            assert loaded.ip.src == original.ip.src
            assert abs(loaded.timestamp - original.timestamp) < 1e-5

    def test_rtp_headers_survive_round_trip(self, tmp_path):
        packets = self._make_packets(9)
        path = tmp_path / "rtp.pcap"
        write_pcap(path, packets)
        restored = read_pcap(path, parse_rtp=True)
        for original, loaded in zip(packets, restored):
            assert loaded.rtp is not None
            assert loaded.rtp.payload_type == original.rtp.payload_type
            assert loaded.rtp.sequence_number == original.rtp.sequence_number
            assert loaded.rtp.timestamp == original.rtp.timestamp
            assert loaded.rtp.marker == original.rtp.marker

    def test_parse_rtp_disabled(self, tmp_path):
        packets = self._make_packets(5)
        path = tmp_path / "nortp.pcap"
        write_pcap(path, packets)
        restored = read_pcap(path, parse_rtp=False)
        assert all(p.rtp is None for p in restored)

    def test_trace_round_trip(self, tmp_path, teams_call):
        path = tmp_path / "teams.pcap"
        trace = teams_call.trace
        trace.to_pcap(path)
        restored = PacketTrace.from_pcap(path, vca="teams")
        assert len(restored) == len(trace)
        assert restored.vca == "teams"
        assert np.allclose(restored.sizes, trace.sizes)

    def test_not_a_pcap_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.pcap"
        path.write_bytes(b"this is not a pcap file at all........")
        with pytest.raises(ValueError):
            list(PcapReader(path))

    def test_writer_requires_context_manager(self, tmp_path):
        from repro.net.pcap import PcapWriter

        writer = PcapWriter(tmp_path / "x.pcap")
        with pytest.raises(RuntimeError):
            writer.write(self._make_packets(1)[0])
