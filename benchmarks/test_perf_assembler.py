"""Per-operator microbenchmark: vectorized vs scalar frame assembly.

Isolates Algorithm 1 from the rest of the engine: one flow's sorted
``(payload_size, timestamp)`` columns pushed through

* the **scalar reference** (``FrameAssembler.push``): one ``Packet`` at a
  time, the literal Appendix B transcription;
* the **vectorized run path** (``FrameAssembler.push_rows``): whole
  block-sized runs assigned to frames with array operations, zero packet
  objects.

Both produce frame-for-frame identical output (pinned by
``tests/core/test_frame_assembly.py``), so rows/second compares equal work.
The result is written to ``benchmarks/results/BENCH_assembler.json``; the
speedup floor is relaxed to 1x under ``BENCH_SMOKE_DURATION_S`` and
overridable via ``BENCH_ASSEMBLER_MIN_SPEEDUP``.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from conftest import RESULTS_DIR, save_artifact
from repro.core.frame_assembly import FrameAssembler
from repro.net.packet import RTP_FIXED_HEADER_LEN, IPv4Header, Packet, UDPHeader

_SMOKE = "BENCH_SMOKE_DURATION_S" in os.environ
TRACE_DURATION_S = float(os.environ.get("BENCH_SMOKE_DURATION_S", 300.0))
RUN_SIZE = 1024
DELTA_SIZE = 2.0
LOOKBACK = 2
#: The vectorized path must beat the scalar reference by this factor; the
#: win is single-core (array ops, not overlap), so no multicore gate.
SPEEDUP_FLOOR = float(os.environ.get("BENCH_ASSEMBLER_MIN_SPEEDUP", "1.0" if _SMOKE else "3.0"))
_ARTIFACT_NAME = "BENCH_assembler_smoke" if _SMOKE else "BENCH_assembler"

_measured: dict[str, float] = {}
_counts: dict[str, int] = {}


def _synthetic_columns() -> tuple[np.ndarray, np.ndarray]:
    """One VCA-like flow as sorted columns: ~25 fps fragmented video bursts."""
    rng = np.random.default_rng(11)
    sizes: list[int] = []
    timestamps: list[float] = []
    t = 0.0
    while t < TRACE_DURATION_S:
        size = int(rng.integers(700, 1200))
        for i in range(int(rng.integers(2, 5))):
            sizes.append(size)
            timestamps.append(t + i * 0.0008)
        t += float(rng.normal(0.04, 0.004))
    return np.array(sizes, dtype=np.int64), np.array(timestamps, dtype=np.float64)


@pytest.fixture(scope="module")
def columns() -> tuple[np.ndarray, np.ndarray]:
    return _synthetic_columns()


@pytest.fixture(scope="module")
def packets(columns) -> list[Packet]:
    """The same rows as ``Packet`` objects (what the scalar path consumes)."""
    sizes, timestamps = columns
    ip = IPv4Header(src="192.0.2.10", dst="10.0.0.1")
    udp = UDPHeader(src_port=3478, dst_port=50000)
    return [
        Packet(timestamp=float(ts), ip=ip, udp=udp, payload_size=int(size))
        for size, ts in zip(sizes, timestamps)
    ]


def _run_scalar(packets: list[Packet]) -> int:
    assembler = FrameAssembler(delta_size=DELTA_SIZE, lookback=LOOKBACK)
    count = sum(len(assembler.push(packet)) for packet in packets)
    return count + len(assembler.flush())


def _run_vectorized(columns: tuple[np.ndarray, np.ndarray]) -> int:
    sizes, timestamps = columns
    media = np.maximum(sizes - RTP_FIXED_HEADER_LEN, 0)
    assembler = FrameAssembler(delta_size=DELTA_SIZE, lookback=LOOKBACK)
    count = 0
    for lo in range(0, len(sizes), RUN_SIZE):
        hi = lo + RUN_SIZE
        run = assembler.push_rows(sizes[lo:hi], media[lo:hi], timestamps[lo:hi])
        count += len(run.finalized)
    return count + len(assembler.flush())


def test_benchmark_assembler_scalar(benchmark, packets):
    n = benchmark.pedantic(_run_scalar, args=(packets,), rounds=5, iterations=1, warmup_rounds=1)
    _counts["scalar"] = n
    if benchmark.stats is not None:
        _measured["scalar_s"] = float(benchmark.stats.stats.min)


def test_benchmark_assembler_vectorized(benchmark, columns):
    n = benchmark.pedantic(_run_vectorized, args=(columns,), rounds=5, iterations=1, warmup_rounds=1)
    _counts["vectorized"] = n
    if benchmark.stats is not None:
        _measured["vectorized_s"] = float(benchmark.stats.stats.min)


def test_assembler_speedup_and_artifact(columns):
    if not {"scalar_s", "vectorized_s"} <= _measured.keys():
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    # Same frames out of both implementations.
    assert _counts["scalar"] == _counts["vectorized"]

    n_rows = len(columns[0])
    scalar_rps = n_rows / _measured["scalar_s"]
    vectorized_rps = n_rows / _measured["vectorized_s"]
    speedup = vectorized_rps / scalar_rps

    payload = {
        "benchmark": "assembler_throughput",
        "trace": {"duration_s": TRACE_DURATION_S, "n_rows": n_rows, "n_frames": _counts["scalar"]},
        "run_size": RUN_SIZE,
        "delta_size": DELTA_SIZE,
        "lookback": LOOKBACK,
        "scalar_rows_per_s": round(scalar_rps, 1),
        "vectorized_rows_per_s": round(vectorized_rps, 1),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{_ARTIFACT_NAME}.json").write_text(json.dumps(payload, indent=2) + "\n")
    save_artifact(
        _ARTIFACT_NAME,
        "\n".join(
            [
                f"Frame assembly: vectorized push_rows vs scalar push ({TRACE_DURATION_S:.0f}s synthetic flow)",
                f"  rows:               {n_rows}",
                f"  frames:             {_counts['scalar']}",
                f"  scalar push:        {scalar_rps:12.0f} rows/s",
                f"  vectorized rows:    {vectorized_rps:12.0f} rows/s  ({speedup:.2f}x, floor {SPEEDUP_FLOOR}x)",
            ]
        ),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized assembler only {speedup:.2f}x the scalar push (floor {SPEEDUP_FLOOR}x)"
    )
