"""Live-capture workflow: estimate QoE packet-by-packet, per flow, as calls run.

Where ``operator_monitoring.py`` trains a model and scores a finished pcap,
this example shows the deployment mode the paper actually targets: a passive
monitor in the middle of the network seeing the *interleaved* packets of
several concurrent VCA sessions, one at a time, with no ability to buffer the
capture.  The composable API maps onto that directly:

* two capture points become one arrival-ordered feed via
  :class:`repro.MergedSource` (streaming k-way timestamp merge, O(k) memory);
* :class:`repro.QoEMonitor` runs the per-flow streaming engine over the feed,
  emitting a per-second estimate for each flow the moment the second can no
  longer change -- memory stays bounded by the window size no matter how
  long the calls last;
* sinks are pluggable: a three-line custom alert sink (anything with
  ``emit``/``close`` works) rides alongside the built-in
  :class:`repro.MetricsSnapshotSink` scrape counters.

Run with:  python examples/streaming_monitor.py
"""

from __future__ import annotations

from repro import (
    ConditionSchedule,
    MergedSource,
    MetricsSnapshotSink,
    NetworkCondition,
    QoEMonitor,
    QoEPipeline,
    SessionConfig,
    simulate_call,
)

FPS_ALERT_THRESHOLD = 18.0


def capture_points():
    """Two capture interfaces, one concurrent Teams session on each.

    Session A runs over a healthy link; session B hits congestion mid-call.
    (A real deployment would wrap live capture generators instead.)
    """
    healthy = ConditionSchedule.constant(
        NetworkCondition(throughput_kbps=2500.0, delay_ms=35.0, jitter_ms=4.0), 20
    )
    congested = ConditionSchedule(
        [NetworkCondition(throughput_kbps=2000.0, delay_ms=40.0, jitter_ms=5.0)] * 7
        + [NetworkCondition(throughput_kbps=150.0, delay_ms=140.0, jitter_ms=25.0, loss_rate=0.06)] * 7
        + [NetworkCondition(throughput_kbps=1800.0, delay_ms=40.0, jitter_ms=5.0)] * 6
    )
    session_a = simulate_call(
        SessionConfig(vca="teams", duration_s=20, seed=11, call_id="flat-a"), healthy
    )
    session_b = simulate_call(
        SessionConfig(
            vca="teams",
            duration_s=20,
            seed=12,
            call_id="congested-b",
            client_ip="10.0.0.2",  # a second household: distinct 5-tuple
            client_port=50002,
        ),
        congested,
    )
    packets_a = (p.without_rtp().without_ground_truth() for p in session_a.trace)
    packets_b = (p.without_rtp().without_ground_truth() for p in session_b.trace)
    return packets_a, packets_b


class LivePrinterSink:
    """A custom sink: print each estimate as its window closes, flag low fps."""

    def __init__(self) -> None:
        self.flow_names: dict = {}

    def emit(self, item) -> None:
        name = self.flow_names.setdefault(item.flow, f"flow-{len(self.flow_names) + 1}")
        estimate = item.estimate
        flag = "  <-- degraded" if estimate.frame_rate < FPS_ALERT_THRESHOLD else ""
        print(
            f"[{name}] t={int(estimate.window_start):>3}s  "
            f"fps={estimate.frame_rate:5.1f}  "
            f"bitrate={estimate.bitrate_kbps:7.0f} kbps  "
            f"jitter={estimate.frame_jitter_ms:5.1f} ms{flag}"
        )

    def close(self) -> None:
        print("\nEnd of capture (final open windows flushed above).")


def main() -> None:
    # Heuristic mode, no training.  max_frame_age_s bounds estimate latency:
    # if a session's video stalls entirely, its windows still close (flagging
    # the outage live) instead of waiting for the next video packet.
    # idle_timeout_s evicts flows that go quiet, so a perpetual monitor's
    # memory tracks live flows only.
    pipeline = QoEPipeline.for_vca("teams")
    config = pipeline.config.replace(max_frame_age_s=2.0, idle_timeout_s=30.0)

    feed_a, feed_b = capture_points()
    printer = LivePrinterSink()
    metrics = MetricsSnapshotSink(degraded_fps_threshold=FPS_ALERT_THRESHOLD)

    monitor = QoEMonitor(
        pipeline,
        source=MergedSource(feed_a, feed_b),
        sinks=[printer, metrics],
        config=config,
    )

    print("Monitoring live feed (two capture points, one pass, O(window) memory)\n")
    report = monitor.run()

    engine = monitor.engine
    assert engine is not None
    print(f"Tracked {report.n_flows} flows over {report.n_packets} packets; "
          f"reorder buffers now hold {engine.buffered_packets} packets, "
          f"{engine.open_windows} windows open.")
    print("Scrape counters:", monitor_snapshot_line(metrics))
    print("The congested session's alerts should cluster inside t=7s..14s; "
          "the healthy session should stay clean throughout.")


def monitor_snapshot_line(metrics: MetricsSnapshotSink) -> str:
    # metrics.render_prometheus() emits the same series as exposition text;
    # the dict form is handy for one-line summaries like this.
    counters = metrics.metrics()["counters"]
    return "  ".join(f"{name}={value:g}" for name, value in counters.items())


if __name__ == "__main__":
    main()
