"""IP/UDP Heuristic QoE estimator (Section 3.2.1).

Pipeline: media classification (size threshold) -> frame assembly
(Algorithm 1) -> per-window QoE metrics:

* frame rate  = number of assembled frames whose end time falls in the window;
* bitrate     = total frame bits received in the window, divided by its length;
* frame jitter = standard deviation of consecutive frame end-time differences.

Resolution is *not* estimated by the heuristic (the paper skips it because
there is no direct per-frame resolution signal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.frame_assembly import AssembledFrame, FrameAssembler
from repro.core.media import MediaClassifier
from repro.core.windows import WindowedTrace
from repro.net.trace import PacketTrace, window_grid
from repro.webrtc.profiles import VCAProfile

__all__ = ["HeuristicEstimate", "IPUDPHeuristic"]


@dataclass(frozen=True)
class HeuristicEstimate:
    """Per-window estimates produced by a heuristic method."""

    window_start: float
    frame_rate: float
    bitrate_kbps: float
    frame_jitter_ms: float
    n_frames: int

    def metric(self, name: str) -> float:
        if name == "frame_rate":
            return self.frame_rate
        if name == "bitrate":
            return self.bitrate_kbps
        if name == "frame_jitter":
            return self.frame_jitter_ms
        raise ValueError(f"heuristics do not estimate metric {name!r}")


def estimates_from_frames(
    frames: list[AssembledFrame],
    window_start: float,
    window_s: float,
    window_end: float | None = None,
) -> HeuristicEstimate:
    """Turn a window's assembled frames into the three heuristic QoE metrics.

    ``window_end`` overrides the membership upper bound.  Callers iterating a
    drift-free grid must pass the *next* window's start (``start + (k+1) *
    window_s``) so that with fractional windows a frame ending exactly on a
    boundary is attributed to exactly one window -- ``window_start +
    window_s`` and the next start differ in the last ulp.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if window_end is None:
        window_end = window_start + window_s
    # Only the sorted end-time sequence and the size total feed the metrics,
    # so one pass + one scalar sort replaces materializing and sorting the
    # member frames (this sits on the streaming engine's per-window hot path).
    end_times: list[float] = []
    size_total = 0
    for f in frames:
        end_time = f._end_time
        if window_start <= end_time < window_end:
            end_times.append(end_time)
            size_total += f.size_bytes
    end_times.sort()
    n_frames = len(end_times)

    frame_rate = n_frames / window_s
    bitrate_kbps = size_total * 8.0 / 1000.0 / window_s

    if n_frames >= 3:
        ends = np.array(end_times)
        # Inlined np.std(np.diff(ends)): the same ufunc calls in the same
        # order (pairwise add.reduce, subtract, in-place square, sqrt), so
        # the result is bit-identical -- minus the dispatch wrappers, which
        # dominate at this array size on the per-window hot path.
        d = ends[1:] - ends[:-1]
        nd = d.shape[0]
        x = d - np.add.reduce(d) / nd
        x *= x
        jitter_ms = math.sqrt(np.add.reduce(x) / nd) * 1000.0
    else:
        jitter_ms = 0.0

    return HeuristicEstimate(
        window_start=window_start,
        frame_rate=frame_rate,
        bitrate_kbps=bitrate_kbps,
        frame_jitter_ms=jitter_ms,
        n_frames=n_frames,
    )


class IPUDPHeuristic:
    """The paper's IP/UDP-only heuristic estimator."""

    def __init__(
        self,
        delta_size: float = 2.0,
        lookback: int = 2,
        classifier: MediaClassifier | None = None,
    ) -> None:
        self.assembler = FrameAssembler(delta_size=delta_size, lookback=lookback)
        self.classifier = classifier if classifier is not None else MediaClassifier()

    @classmethod
    def for_profile(cls, profile: VCAProfile) -> "IPUDPHeuristic":
        """Heuristic configured with the paper's per-VCA parameters (Section 4.3)."""
        return cls(
            delta_size=profile.heuristic_size_threshold,
            lookback=profile.heuristic_lookback,
            classifier=MediaClassifier(video_size_threshold=profile.video_size_threshold),
        )

    def assemble(self, trace: PacketTrace) -> list[AssembledFrame]:
        """Classify video packets (blind to RTP) and assemble them into frames."""
        video = self.classifier.video_packets(trace.without_rtp())
        return self.assembler.assemble_trace(video)

    def estimate_window(self, window: WindowedTrace) -> HeuristicEstimate:
        """Estimate QoE for a single isolated window."""
        frames = self.assemble(window.packets)
        return estimates_from_frames(frames, window.start, window.duration)

    def estimate_trace(self, trace: PacketTrace, window_s: float = 1.0, start: float = 0.0, end: float | None = None) -> list[HeuristicEstimate]:
        """Per-window estimates across a whole trace.

        Frame assembly runs over the full trace (so frames spanning a window
        boundary are not split artificially), then frames are attributed to
        windows by their end time, as in the paper.
        """
        if end is None:
            end = trace.end_time
        frames = self.assemble(trace)
        return [
            estimates_from_frames(frames, t, window_s, window_end=next_t)
            for _, t, next_t in window_grid(start, window_s, end)
        ]
