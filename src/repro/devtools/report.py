"""Finding reporters: terminal text and a stable JSON schema.

The JSON shape is versioned and consumed by the CI artifact upload; keep
it backward compatible (add keys, never repurpose them).
"""

from __future__ import annotations

import json

from repro.devtools.framework import LintResult, all_rules

__all__ = ["render_text", "render_json", "render_rule_table", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """``path:line:col: RULE message`` per finding plus a summary line."""
    lines = [finding.render() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} in {result.files_checked} files "
        f"({result.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The run as one JSON document (see ``JSON_SCHEMA_VERSION``)."""
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "counts": dict(sorted(counts.items())),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rule_table() -> str:
    """The registered rules as an aligned ``--list-rules`` table."""
    rows = [(rule.id, rule.summary) for rule in all_rules()]
    width = max(len(rule_id) for rule_id, _ in rows)
    lines = [f"{rule_id:<{width}}  {summary}" for rule_id, summary in rows]
    for rule in all_rules():
        lines.append("")
        lines.append(f"{rule.id}: {rule.rationale}")
        if rule.scope:
            lines.append(f"  scope: {', '.join(rule.scope)}")
    return "\n".join(lines)
