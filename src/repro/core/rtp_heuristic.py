"""RTP Heuristic baseline (Section 3.3).

Frame boundaries are read directly from RTP headers: all packets of a frame
share the same RTP timestamp, and the marker bit flags the final packet of
each frame.  QoE metrics are then derived from the recovered frames exactly
as for the IP/UDP heuristic.  Media classification also uses RTP ground
truth: only packets of the video payload type (excluding retransmissions)
are considered.
"""

from __future__ import annotations


from repro.core.heuristic import HeuristicEstimate, estimates_from_frames
from repro.core.frame_assembly import AssembledFrame
from repro.net.packet import Packet
from repro.net.trace import PacketTrace, window_grid
from repro.rtp.payload_types import PayloadTypeMap
from repro.webrtc.profiles import VCAProfile

__all__ = ["RTPHeuristic"]


class RTPHeuristic:
    """Frame-based QoE estimation using RTP timestamps and marker bits."""

    def __init__(self, video_payload_type: int) -> None:
        self.video_payload_type = video_payload_type

    @classmethod
    def for_profile(cls, profile: VCAProfile, environment: str = "lab") -> "RTPHeuristic":
        payload_types = profile.payload_types_for(environment)
        return cls(video_payload_type=payload_types.video)

    @classmethod
    def for_payload_map(cls, payload_types: PayloadTypeMap) -> "RTPHeuristic":
        return cls(video_payload_type=payload_types.video)

    def video_packets(self, trace: PacketTrace) -> list[Packet]:
        """Packets of the video payload type (RTP header required)."""
        return [
            p
            for p in trace
            if p.rtp is not None and p.rtp.payload_type == self.video_payload_type
        ]

    def assemble(self, trace: PacketTrace) -> list[AssembledFrame]:
        """Group video packets into frames by RTP timestamp."""
        frames_by_timestamp: dict[int, AssembledFrame] = {}
        order: list[int] = []
        for packet in sorted(self.video_packets(trace), key=lambda p: p.timestamp):
            assert packet.rtp is not None
            ts = packet.rtp.timestamp
            frame = frames_by_timestamp.get(ts)
            if frame is None:
                frame = AssembledFrame(frame_index=len(order))
                frames_by_timestamp[ts] = frame
                order.append(ts)
            frame.add(packet)
        return [frames_by_timestamp[ts] for ts in order]

    def estimate_window(self, window) -> HeuristicEstimate:
        frames = self.assemble(window.packets)
        return estimates_from_frames(frames, window.start, window.duration)

    def estimate_trace(
        self, trace: PacketTrace, window_s: float = 1.0, start: float = 0.0, end: float | None = None
    ) -> list[HeuristicEstimate]:
        if end is None:
            end = trace.end_time
        frames = self.assemble(trace)
        return [
            estimates_from_frames(frames, t, window_s, window_end=next_t)
            for _, t, next_t in window_grid(start, window_s, end)
        ]
