"""WebRTC VCA simulator.

This package stands in for the real Google Meet / Microsoft Teams / Cisco
Webex clients the paper measures.  It reproduces the transport-visible
mechanisms the paper's inference exploits:

* each captured/encoded video frame is packetised into (nearly) equal-sized
  RTP packets and transmitted immediately, producing per-frame microbursts
  and the intra-/inter-frame packet-size structure of Figure 2;
* audio is a separate low-bitrate stream of small packets (Figure 1);
* a retransmission (RTX) stream carries mostly fixed-size keep-alives plus
  occasional retransmissions of lost video packets;
* a GCC-style rate controller adapts the video bitrate, resolution ladder and
  frame rate to the available network capacity;
* the receiver runs an adaptive jitter buffer whose smoothing makes the
  application-reported frame jitter differ from network-level jitter
  (the effect discussed in Section 5.1.4);
* a small burst of DTLS/STUN control packets opens the call (the source of
  the media-classification false positives in Table 2).

The per-second receiver statistics (:class:`repro.webrtc.stats.GroundTruthLog`)
play the role of Chrome's ``webrtc-internals`` dump.
"""

from repro.webrtc.profiles import VCA_PROFILES, VCAProfile, get_profile
from repro.webrtc.session import CallResult, SessionConfig, simulate_call
from repro.webrtc.stats import GroundTruthLog, PerSecondStats

__all__ = [
    "VCAProfile",
    "VCA_PROFILES",
    "get_profile",
    "SessionConfig",
    "CallResult",
    "simulate_call",
    "GroundTruthLog",
    "PerSecondStats",
]
