"""The Source -> Engine -> Sink facade: a deployable QoE monitor in one object.

:class:`QoEMonitor` wires the three composable layers of the public API
together:

* a **source** (:mod:`repro.sources`) provides packets -- a pcap file, a
  materialized trace, a live-capture generator, or a k-way merge of several
  capture points;
* the **engine** (:class:`~repro.core.streaming.StreamingQoEPipeline`)
  demultiplexes by 5-tuple and emits one estimate per flow per window, with
  O(window) state per live flow;
* the **sinks** (:mod:`repro.sinks`) consume estimates as they are emitted --
  collectors, JSONL/CSV files, rolling summaries, scrape counters.

Train-once / deploy-many::

    # in the lab
    pipeline = QoEPipeline.for_vca("teams").train(lab_calls)
    pipeline.save("teams.model.json")

    # at every deployment site
    monitor = QoEMonitor.from_model(
        "teams.model.json",
        source=PcapSource("capture.pcap"),
        sinks=[JSONLinesSink("estimates.jsonl"), SummarySink(degraded_fps_threshold=18)],
    )
    report = monitor.run()

Behaviour (windowing, reordering tolerance, liveness, idle eviction) comes
from the pipeline's frozen :class:`~repro.core.config.PipelineConfig`;
``config=...`` overrides it per monitor.  When the config sets
``idle_timeout_s``, flows that go quiet for that long (in stream time) are
flushed and evicted automatically, so a perpetual monitor's memory tracks
*live* flows only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro.core.config import PipelineConfig
from repro.core.pipeline import QoEPipeline
from repro.core.streaming import StreamEstimate, StreamingQoEPipeline
from repro.obs.config import ObsConfig
from repro.obs.registry import MetricsRegistry
from repro.sources.base import PacketSource, as_source

__all__ = ["MonitorReport", "QoEMonitor", "IdleEvictionSchedule"]


@dataclass(frozen=True)
class MonitorReport:
    """What one monitor run processed.

    Produced with identical semantics by :class:`QoEMonitor` and
    :class:`~repro.cluster.ShardedQoEMonitor`, so operator tooling reads one
    report type regardless of deployment shape.

    ``packets_consumed`` / ``flows_seen`` / ``wall_time_s`` are the
    throughput counters: packets the engine(s) consumed, distinct flows
    observed (including evicted ones), and wall-clock duration of the run --
    enough to compute packets/sec (:attr:`packets_per_s`) without a separate
    benchmark harness.  The first two are operator-facing names for
    ``n_packets`` / ``n_flows`` (properties, so they cannot drift);
    ``wall_time_s`` is excluded from equality so two runs over the same
    capture compare equal.

    ``transport`` carries fleet-level shared-memory ring telemetry on the
    sharded monitor's ``"shm"`` transport (``{"forward": {...}, "reverse":
    {...}}`` counters: slot occupancy high-water mark, slots
    written/reused, segments per slot, queue fallbacks) and is empty for
    every other deployment shape.  Like ``wall_time_s`` it describes how
    the run executed rather than what it computed, so it is excluded from
    equality too.

    The PR 8 observability surfaces follow the same convention (all
    execution-describing, all ``compare=False``):

    * ``timing`` -- the wall-clock breakdown ``{"wall_time_s", "setup_s",
      "stream_s", "drain_s"}`` (phases sum to the wall time).
      :attr:`stream_packets_per_s` divides by the stream phase alone, so
      worker spawn and drain/teardown no longer dilute the throughput
      reading the way :attr:`packets_per_s` always has.
    * ``metrics`` -- the final registry snapshot (see
      :meth:`MetricsRegistry.snapshot
      <repro.obs.registry.MetricsRegistry.snapshot>`) when the monitor ran
      with an enabled :class:`~repro.obs.config.ObsConfig`; ``{}``
      otherwise.  Feed it to
      :func:`~repro.obs.render.render_prometheus` for a scrape-format dump.
    * ``shard_loads`` -- the final per-shard load telemetry of a sharded
      run (one ``{"live_flows", "buffered_packets", "open_windows"}`` dict
      per shard, ``{}`` for shards that never reported).
    * ``migration`` -- the cut-latency summary of a rebalanced run
      (:func:`~repro.cluster.rebalance.summarize_migrations`).
    """

    n_packets: int
    n_estimates: int
    n_flows: int
    n_evicted_flows: int
    wall_time_s: float = field(default=0.0, compare=False)
    transport: dict = field(default_factory=dict, compare=False)
    timing: dict = field(default_factory=dict, compare=False)
    metrics: dict = field(default_factory=dict, compare=False)
    shard_loads: tuple = field(default=(), compare=False)
    migration: dict = field(default_factory=dict, compare=False)

    @property
    def packets_consumed(self) -> int:
        """Packets the engine(s) consumed (throughput-counter alias)."""
        return self.n_packets

    @property
    def flows_seen(self) -> int:
        """Distinct flows observed, including evicted ones (alias)."""
        return self.n_flows

    @property
    def packets_per_s(self) -> float:
        """Observed monitor throughput (0.0 when the run was too fast to time)."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.n_packets / self.wall_time_s

    @property
    def stream_packets_per_s(self) -> float:
        """Throughput over the stream phase alone.

        Uses ``timing["stream_s"]`` when the breakdown is available, so
        setup (worker spawn, model rebuild) and drain (flush, sink close,
        teardown) stop diluting the reading; falls back to
        :attr:`packets_per_s` for reports without timing.
        """
        stream_s = self.timing.get("stream_s", 0.0)
        if stream_s > 0.0:
            return self.n_packets / stream_s
        return self.packets_per_s


class IdleEvictionSchedule:
    """Amortized idle-eviction scheduling, shared by every monitor loop.

    Both :class:`QoEMonitor` (per packet) and the sharded
    :class:`~repro.cluster.worker.ShardWorker` loop (per chunk) feed stream
    time in and sweep when :meth:`due` fires: at most one O(live flows)
    ``evict_idle`` scan per ``idle_timeout_s`` of capture, starting one
    timeout after the first observation.  One implementation keeps the two
    loops' eviction timing from drifting apart.
    """

    def __init__(self, idle_timeout_s: float | None) -> None:
        self.idle_timeout_s = idle_timeout_s
        self._next: float | None = None

    def due(self, timestamp: float) -> bool:
        """Advance stream time; true when an eviction sweep should run now."""
        if self.idle_timeout_s is None:
            return False
        if self._next is None or timestamp >= self._next:
            was_due = self._next is not None
            self._next = timestamp + self.idle_timeout_s
            return was_due
        return False


class QoEMonitor:
    """Run a (trained or heuristic) pipeline from a source into sinks.

    Parameters
    ----------
    pipeline:
        The estimator stack (:class:`~repro.core.pipeline.QoEPipeline`).
    source:
        Anything :func:`~repro.sources.base.as_source` understands: a
        :class:`~repro.sources.base.PacketSource`, a
        :class:`~repro.net.trace.PacketTrace`, a pcap path, or a bare packet
        iterable.
    sinks:
        A sink or sequence of sinks (:mod:`repro.sinks`); every emitted
        estimate is fanned out to all of them, in order.
    config:
        Overrides ``pipeline.config`` for this monitor (e.g. enabling
        ``idle_timeout_s`` or ``max_frame_age_s`` for a live deployment).
    batch_grid:
        When true (requires ``demux_flows=False`` in the effective config),
        estimates are produced on the batch window grid ``[start,
        end_time)`` -- exactly what ``QoEPipeline.estimate`` returns,
        including leading empty windows and vectorized trained inference.
        Sinks then receive everything at end of source rather than as
        windows close.  Use for offline scoring of single-session captures;
        leave false for live monitoring.
    block_size:
        When set, the monitor drives the engine's columnar hot path: the
        source is consumed as struct-of-arrays
        :class:`~repro.net.block.PacketBlock` batches of this many packets
        (:func:`~repro.sources.base.iter_blocks`; traces and pcap files
        have native array-level readers) and fed through
        :meth:`StreamingQoEPipeline.push_block
        <repro.core.streaming.StreamingQoEPipeline.push_block>`.  Estimates
        are bit-identical to the per-packet default *including emission
        order* (pinned by tests); idle-eviction sweeps run on block
        boundaries, so with ``idle_timeout_s`` enabled evictions can land
        up to one block later than in per-packet mode.  ``None`` (default)
        keeps the per-packet loop.
    obs:
        An :class:`~repro.obs.config.ObsConfig` enabling the telemetry
        plane: the monitor owns a :class:`~repro.obs.registry.MetricsRegistry`
        (exposed via :meth:`metrics` and ``MonitorReport.metrics``), the
        engine records tick counters and stage spans into it, and -- in
        block mode -- source reads and sink fan-out get spans of their own.
        The per-packet loop records nothing per packet (counters sync once
        at end of run), keeping its overhead at zero.  ``None`` or
        ``ObsConfig(enabled=False)`` (default) disables everything;
        estimates are bit-identical either way.
    """

    def __init__(
        self,
        pipeline: QoEPipeline,
        source,
        sinks=(),
        config: PipelineConfig | None = None,
        batch_grid: bool = False,
        block_size: int | None = None,
        obs: ObsConfig | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.source: PacketSource = as_source(source)
        if hasattr(sinks, "emit"):  # a single sink was passed
            sinks = (sinks,)
        self.sinks = tuple(sinks)
        self.config = config if config is not None else pipeline.config
        if batch_grid:
            if self.config.demux_flows:
                raise ValueError(
                    "batch_grid requires demux_flows=False (one pre-isolated session); "
                    "pass config=pipeline.config.replace(demux_flows=False)"
                )
            if self.config.backfill_limit is not None:
                # The batch grid covers [start, end_time) in full.
                self.config = self.config.replace(backfill_limit=None)
        self.batch_grid = batch_grid
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1 (or None), got {block_size!r}")
        self.block_size = block_size
        self.obs = obs
        #: The monitor's :class:`~repro.obs.registry.MetricsRegistry`
        #: (``None`` when observability is off).
        self.registry: MetricsRegistry | None = (
            MetricsRegistry(obs) if obs is not None and obs.enabled else None
        )
        #: The engine of the (current or completed) :meth:`run`.
        self.engine: StreamingQoEPipeline | None = None
        self._ran = False

    # -- construction shortcuts ------------------------------------------------

    @classmethod
    def for_vca(cls, vca: str, source, sinks=(), config: PipelineConfig | None = None, **kwargs) -> "QoEMonitor":
        """An untrained (heuristic-backed) monitor for ``vca``."""
        return cls(QoEPipeline.for_vca(vca, config=config), source, sinks, **kwargs)

    @classmethod
    def from_model(
        cls,
        path: str | Path,
        source,
        sinks=(),
        config: PipelineConfig | None = None,
        **kwargs,
    ) -> "QoEMonitor":
        """Deploy a model trained elsewhere: load ``path`` (see
        :meth:`QoEPipeline.save <repro.core.pipeline.QoEPipeline.save>`) and
        front it with ``source``/``sinks``."""
        return cls(QoEPipeline.load(path), source, sinks=sinks, config=config, **kwargs)

    # -- execution -------------------------------------------------------------

    def run(self) -> MonitorReport:
        """Consume the source to exhaustion, fanning estimates into the sinks.

        One-shot: sinks are closed when the source is exhausted (file sinks
        flush to disk), so a monitor cannot be run twice -- construct a new
        one (with fresh sinks) to score another capture.  Returns a
        :class:`MonitorReport` of what was processed.
        """
        if self._ran:
            raise RuntimeError(
                "this monitor already ran and closed its sinks; construct a new "
                "QoEMonitor (with fresh sinks) for the next capture"
            )
        self._ran = True
        registry = self.registry
        started = perf_counter()
        # The engine records into the same registry: the monitor-level
        # counters below are loop totals, the engine's are per-tick.  In the
        # per-packet loop the engine sees obs=None -- a span per packet is
        # exactly the overhead that mode exists to avoid -- and the loop
        # syncs its counters into the registry once, at end of run.
        engine_obs = registry if self.block_size is not None else None
        self.engine = engine = StreamingQoEPipeline(
            self.pipeline, config=self.config, obs=engine_obs
        )
        if registry is not None:
            for sink in self.sinks:
                bind = getattr(sink, "bind_registry", None)
                if bind is not None:
                    bind(registry)
        if self.batch_grid:
            return self._run_batch(engine, started)

        idle_timeout = self.config.idle_timeout_s
        eviction = IdleEvictionSchedule(idle_timeout)
        n_packets = 0
        n_estimates = 0
        n_evicted = 0
        flows_seen: set = set()
        stream_started = drain_started = perf_counter()
        try:
            if self.block_size is not None:
                from repro.sources.base import iter_blocks

                fanout = self._fanout if registry is None else self._fanout_timed
                blocks = iter_blocks(self.source, self.block_size)
                if registry is not None:
                    blocks = registry.timed_iter(blocks, "source_read")
                for block in blocks:
                    n_packets += len(block)
                    n_estimates += fanout(engine.push_block(block))
                    if len(block) and eviction.due(float(block.timestamps.max())):
                        evicted = engine.evict_idle(idle_timeout)
                        n_evicted += len({item.flow for item in evicted})
                        flows_seen.update(item.flow for item in evicted)
                        n_estimates += fanout(evicted)
            else:
                for packet in self.source:
                    n_packets += 1
                    n_estimates += self._fanout(engine.push(packet))
                    if eviction.due(packet.timestamp):
                        evicted = engine.evict_idle(idle_timeout)
                        n_evicted += len({item.flow for item in evicted})
                        flows_seen.update(item.flow for item in evicted)
                        n_estimates += self._fanout(evicted)
            drain_started = perf_counter()
            n_estimates += self._fanout(engine.flush())
        finally:
            for sink in self.sinks:
                sink.close()
        flows_seen.update(engine._streams.keys())
        if registry is not None:
            registry.inc("qoe_monitor_packets_total", n_packets)
            registry.inc("qoe_monitor_estimates_total", n_estimates)
            registry.inc("qoe_monitor_evicted_flows_total", n_evicted)
            registry.set_gauge("qoe_monitor_flows_seen", len(flows_seen))
        finished = perf_counter()
        return MonitorReport(
            n_packets=n_packets,
            n_estimates=n_estimates,
            n_flows=len(flows_seen),
            n_evicted_flows=n_evicted,
            wall_time_s=finished - started,
            timing={
                "wall_time_s": finished - started,
                "setup_s": stream_started - started,
                "stream_s": drain_started - stream_started,
                "drain_s": finished - drain_started,
            },
            metrics=self.metrics(),
        )

    def _run_batch(self, engine: StreamingQoEPipeline, started: float) -> MonitorReport:
        try:
            estimates = engine.collect(self.source, batch=True)
            for estimate in estimates:
                item = StreamEstimate(flow=None, estimate=estimate)
                for sink in self.sinks:
                    sink.emit(item)
        finally:
            for sink in self.sinks:
                sink.close()
        # In single-flow mode the engine skips 5-tuple bookkeeping; the
        # stream's push counter is the packet count.
        stream = engine._streams.get(None)
        return MonitorReport(
            n_packets=stream._seq if stream is not None else 0,
            n_estimates=len(estimates),
            n_flows=1 if estimates else 0,
            n_evicted_flows=0,
            wall_time_s=perf_counter() - started,
        )

    def _fanout(self, items: list[StreamEstimate]) -> int:
        for item in items:
            for sink in self.sinks:
                sink.emit(item)
        return len(items)

    def _fanout_timed(self, items: list[StreamEstimate]) -> int:
        """Block-mode fan-out with a ``sink_emit`` span per non-empty batch."""
        if not items:
            return 0
        started = perf_counter()
        n = self._fanout(items)
        self.registry.time_stage("sink_emit", started)
        return n

    # -- observability ---------------------------------------------------------

    def metrics(self) -> dict:
        """The registry snapshot (``{}`` when observability is off).

        Callable mid-run or after :meth:`run`; the end-of-run snapshot also
        rides ``MonitorReport.metrics``.  Render with
        :func:`~repro.obs.render.render_prometheus` for a scrape.
        """
        if self.registry is None:
            return {}
        return self.registry.snapshot()
