"""Frame-boundary estimation from IP/UDP headers (Algorithm 1).

The key insight (Section 3.2.1): VCAs fragment each frame into (nearly)
equal-sized packets, and consecutive frames have different sizes.  So a new
packet whose size is within ``delta_size`` bytes of one of the previous
``lookback`` packets most likely belongs to that packet's frame; otherwise it
starts a new frame.  The lookback absorbs bounded packet reordering.

Two implementations share the operator's bounded state:

* :meth:`FrameAssembler.push` -- the scalar reference: one packet at a time,
  a literal transcription of Algorithm 1 (Appendix B).
* :meth:`FrameAssembler.push_rows` -- the vectorized run path: a whole
  timestamp-sorted run of one flow's ``(size, timestamp)`` columns is
  assigned to frames with array operations (stacked lookback comparison,
  pointer-doubling boundary resolution, segment-reduced aggregates) and the
  lookback tail + open frames carry across run boundaries, so interleaving
  scalar pushes and vectorized runs is frame-for-frame identical to pushing
  every packet through :meth:`push`.

Frames assembled by the vectorized path carry aggregate columns only
(``n_packets``/``size_bytes``/``raw_size_bytes``/``start_time``/``end_time``);
the packet-list view on :class:`AssembledFrame` stays available where
evaluation and ground-truth code needs it (scalar pushes and the batch
:meth:`FrameAssembler.assemble` adapter, which attaches a lazy view).
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.net.packet import RTP_FIXED_HEADER_LEN, Packet
from repro.net.trace import PacketTrace

__all__ = ["AssembledFrame", "FrameAssembler", "FrameRun", "assemble_frames"]


class AssembledFrame:
    """A frame recovered by the heuristic: running aggregates, plus packets.

    The attributes every consumer is hot on (``n_packets``, ``size_bytes``,
    ``raw_size_bytes``, ``start_time``, ``end_time``) are running values
    updated on :meth:`add` -- the streaming engine polls ``end_time`` of
    every open frame at each window-close check, so they must not recompute
    over the packet list.  The packet list itself is optional: frames built
    by the scalar push path keep one (as before), frames built by the
    vectorized run path carry aggregates only (the batch adapter attaches a
    lazy view so evaluation code can still reach the packets).
    """

    __slots__ = (
        "frame_index",
        "n_packets",
        "size_bytes",
        "raw_size_bytes",
        "_start_time",
        "_end_time",
        "_packets",
        "_packet_src",
        "_packet_idx",
    )

    def __init__(self, frame_index: int, packets: list[Packet] | None = None) -> None:
        self.frame_index = frame_index
        self.n_packets = 0
        self.size_bytes = 0
        self.raw_size_bytes = 0
        self._start_time = math.inf
        self._end_time = -math.inf
        self._packets: list[Packet] | None = []
        self._packet_src: list[Packet] | None = None
        self._packet_idx: np.ndarray | None = None
        if packets:
            for packet in packets:
                self.add(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AssembledFrame(frame_index={self.frame_index}, "
            f"n_packets={self.n_packets}, size_bytes={self.size_bytes})"
        )

    @classmethod
    def _from_aggregates(
        cls,
        frame_index: int,
        n_packets: int,
        size_bytes: int,
        raw_size_bytes: int,
        start_time: float,
        end_time: float,
    ) -> "AssembledFrame":
        """Trusted constructor for aggregate-only frames (vectorized / wire)."""
        frame = cls(frame_index)
        frame.n_packets = n_packets
        frame.size_bytes = size_bytes
        frame.raw_size_bytes = raw_size_bytes
        frame._start_time = start_time
        frame._end_time = end_time
        frame._packets = None
        return frame

    def add(self, packet: Packet) -> None:
        if self._packets is not None:
            self._packets.append(packet)
        self.n_packets += 1
        self.size_bytes += packet.media_payload_size
        self.raw_size_bytes += packet.payload_size
        timestamp = packet.timestamp
        if timestamp < self._start_time:
            self._start_time = timestamp
        if timestamp > self._end_time:
            self._end_time = timestamp

    def _add_run(
        self,
        n_packets: int,
        size_bytes: int,
        raw_size_bytes: int,
        start_time: float,
        end_time: float,
    ) -> None:
        """Bulk :meth:`add` of one vectorized run segment (aggregates only)."""
        # A frame that gains rows through the array path can no longer vouch
        # for a complete packet list; drop the view rather than expose a
        # partial one.
        self._packets = None
        self._packet_src = None
        self._packet_idx = None
        self.n_packets += n_packets
        self.size_bytes += size_bytes
        self.raw_size_bytes += raw_size_bytes
        if start_time < self._start_time:
            self._start_time = start_time
        if end_time > self._end_time:
            self._end_time = end_time

    @property
    def packets(self) -> list[Packet]:
        """The frame's packets (evaluation / ground-truth view).

        Eager for scalar-assembled frames, materialized on first access for
        batch-assembled ones; unavailable for frames that only ever existed
        as aggregate columns (streaming block path, migration snapshots).
        """
        if self._packets is None:
            if self._packet_src is None:
                raise ValueError(
                    "this AssembledFrame carries aggregate columns only; "
                    "its packet list was never retained"
                )
            assert self._packet_idx is not None
            self._packets = [self._packet_src[i] for i in self._packet_idx.tolist()]
            self._packet_src = None
            self._packet_idx = None
        return self._packets

    @property
    def start_time(self) -> float:
        return self._start_time

    @property
    def end_time(self) -> float:
        """Frame completion time: arrival of the last packet (the paper's ET_i)."""
        return self._end_time

    @property
    def true_frame_ids(self) -> set[int]:
        """Ground-truth frame ids covered by this assembled frame (evaluation only)."""
        return {p.frame_id for p in self.packets if p.frame_id is not None}

    @property
    def true_rtp_timestamps(self) -> set[int]:
        """Distinct RTP timestamps covered (evaluation only)."""
        return {p.rtp.timestamp for p in self.packets if p.rtp is not None}


class FrameRun:
    """Result of one :meth:`FrameAssembler.push_rows` call.

    ``finalized`` lists ``(row, frame)`` pairs in finalization order --
    ``row`` is the index (into the pushed arrays) of the packet whose push
    finalized the frame, exactly when scalar :meth:`FrameAssembler.push`
    would have returned it.

    The remaining attributes are per-frame placement for the streaming
    engine's window replay, as parallel sequences indexed by group ``g``
    (one group per frame the run touched, ascending ``frame_index``):
    ``frames[g]`` is the frame itself, ``occ_all[lo[g]:hi[g]]`` its run-row
    occurrences gained this run (ascending; empty for a carried frame that
    gained nothing), ``fin_rows[g]`` the run row whose push finalized it
    (``None`` if it survives the run), and ``prior_ends[g]`` its
    ``end_time`` before the run (``None`` unless carried in from earlier
    pushes).  ``occ_all`` is one shared array grouped by frame, so consumers
    can translate every occurrence with a single fancy-index.
    """

    __slots__ = ("finalized", "frames", "lo", "hi", "fin_rows", "prior_ends", "occ_all")

    def __init__(
        self,
        finalized: list[tuple[int, AssembledFrame]],
        frames: list[AssembledFrame],
        lo: np.ndarray,
        hi: np.ndarray,
        fin_rows: list[int | None],
        prior_ends: list[float | None],
        occ_all: np.ndarray,
    ) -> None:
        self.finalized = finalized
        self.frames = frames
        self.lo = lo
        self.hi = hi
        self.fin_rows = fin_rows
        self.prior_ends = prior_ends
        self.occ_all = occ_all


class FrameAssembler:
    """Implementation of Algorithm 1 (Appendix B), as an online operator.

    The assembler is a push-based stream processor: feed packets in arrival
    order with :meth:`push` (or whole sorted runs with :meth:`push_rows`) and
    collect frames as soon as they can no longer change.  The retained state
    is bounded by ``lookback`` -- the last ``lookback`` (timestamp, size,
    frame) assignments plus the (at most ``lookback``) frames those packets
    belong to -- so the assembler can run forever over a live capture without
    growing.  :meth:`assemble` is a thin batch adapter over the same state
    machine.

    Parameters
    ----------
    delta_size:
        Maximum packet-size difference (bytes) for two packets to be treated
        as part of the same frame (the paper uses 2 bytes for all VCAs).
    lookback:
        How many previously seen packets to compare against (``N_max``); the
        paper uses 3 for Meet, 2 for Teams and 1 for Webex.
    """

    def __init__(self, delta_size: float = 2.0, lookback: int = 2) -> None:
        if delta_size < 0:
            raise ValueError("delta_size must be non-negative")
        if lookback < 1:
            raise ValueError("lookback must be >= 1")
        self.delta_size = delta_size
        self.lookback = lookback
        self.reset()

    # -- streaming interface ---------------------------------------------------

    def reset(self) -> None:
        """Discard all streaming state (recent assignments and open frames)."""
        # The frame each recent packet was assigned to, most recent last:
        # (timestamp, payload_size, frame) triples -- one representation
        # shared by the scalar path, the vectorized path, finalize_stale and
        # the FlowSnapshot codec.
        self._recent: deque[tuple[float, int, AssembledFrame]] = deque()
        # frame_index -> number of its packets still inside the lookback.
        self._live: dict[int, int] = {}
        self._open: dict[int, AssembledFrame] = {}
        self._next_index = 0

    @property
    def open_frames(self) -> list[AssembledFrame]:
        """Frames that may still gain packets (at most ``lookback`` of them)."""
        return [self._open[index] for index in sorted(self._open)]

    def push(self, packet: Packet) -> list[AssembledFrame]:
        """Feed one packet (non-decreasing arrival order).

        Returns the frames that became *final* as a result: a frame is final
        once none of its packets remain within the lookback, because no future
        packet can then join it.  Callers that need the paper's frame order
        should sort finalized frames by ``frame_index`` (creation order).
        """
        size = packet.payload_size
        assigned_frame: AssembledFrame | None = None
        for _, previous_size, frame in reversed(self._recent):
            if abs(previous_size - size) <= self.delta_size:
                assigned_frame = frame
                break
        if assigned_frame is None:
            assigned_frame = AssembledFrame(frame_index=self._next_index)
            self._next_index += 1
            self._open[assigned_frame.frame_index] = assigned_frame
            self._live[assigned_frame.frame_index] = 0
        assigned_frame.add(packet)
        self._recent.append((packet.timestamp, size, assigned_frame))
        self._live[assigned_frame.frame_index] += 1

        finalized: list[AssembledFrame] = []
        if len(self._recent) > self.lookback:
            _, _, old_frame = self._recent.popleft()
            index = old_frame.frame_index
            self._live[index] -= 1
            if self._live[index] == 0:
                del self._live[index]
                del self._open[index]
                finalized.append(old_frame)
        return finalized

    def push_rows(
        self,
        sizes: np.ndarray,
        media_sizes: np.ndarray,
        timestamps: np.ndarray,
        max_gap_s: float | None = None,
        horizon: float | None = None,
    ) -> FrameRun | None:
        """Feed a timestamp-sorted run of one flow's packet columns at once.

        Vectorized Algorithm 1: boundary detection is a stacked sliding
        comparison against the previous ``lookback`` sizes (most recent match
        wins, mirroring :meth:`push`'s ``reversed(self._recent)`` scan),
        frame membership resolves lookback joins into older frames by
        pointer doubling to each row's boundary root, and per-frame
        aggregates come from one stable sort + segment reduction.  The
        lookback tail carried in ``self._recent`` is prepended, so rows of
        this run join frames opened by earlier pushes exactly as scalar
        pushes would, and the post-run state (lookback tail, open frames,
        next frame index) is indistinguishable from having pushed every row
        through :meth:`push`.

        ``max_gap_s`` is the streaming engine's liveness guard: when given,
        the call first proves that no frame ever goes ``max_gap_s`` without
        gaining a packet, being finalized, or the run ending (``horizon``
        bounds the wait of frames still open at the end of the run).  If any
        frame could cross that bound, a concurrent ``finalize_stale`` sweep
        might evict it mid-run -- which shifts every later lookback pop -- so
        the call commits *nothing* and returns ``None``; the caller falls
        back to the scalar path, which interleaves eviction exactly.

        Returns a :class:`FrameRun` (finalized frames in finalization order
        plus per-frame placement spans), or ``None`` on the liveness bailout.
        """
        m = len(sizes)
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return FrameRun([], [], empty, empty, [], [], empty)
        lookback = self.lookback
        recent = self._recent
        n_prev = len(recent)
        n = n_prev + m

        cols = np.empty((2, n), dtype=np.float64)
        all_sizes = cols[0]
        all_ts = cols[1]
        for i, (entry_ts, entry_size, _) in enumerate(recent):
            all_sizes[i] = entry_size
            all_ts[i] = entry_ts
        all_sizes[n_prev:] = sizes
        all_ts[n_prev:] = timestamps

        # Most-recent match within the lookback: smallest k in [1, lookback]
        # with |size[g] - size[g-k]| <= delta_size, exactly the reversed scan.
        matched = np.zeros(m, dtype=bool)
        offsets = np.zeros(m, dtype=np.int64)
        tail = all_sizes[n_prev:]
        for k in range(1, lookback + 1):
            lo = k - n_prev if k > n_prev else 0
            if lo >= m:
                break
            candidates = all_sizes[n_prev + lo - k : n - k]
            hit = ~matched[lo:] & (np.abs(tail[lo:] - candidates) <= self.delta_size)
            offsets[lo:][hit] = k
            matched[lo:] |= hit

        # Resolve every row to its boundary root (pointer doubling): a row
        # that joins via a row that itself joined an older frame must land in
        # that older frame, which a plain cumulative sum over boundary flags
        # would miss.
        parent = np.arange(n, dtype=np.int64)
        join_rows = np.flatnonzero(matched) + n_prev
        parent[join_rows] = join_rows - offsets[matched]
        while True:
            grandparent = parent[parent]
            if (grandparent == parent).all():
                break
            parent = grandparent

        # Frame id per combined position: carried entries keep their frame's
        # index; new boundary rows mint indices in creation (row) order.
        root_fid = np.empty(n, dtype=np.int64)
        for i, (_, _, entry_frame) in enumerate(recent):
            root_fid[i] = entry_frame.frame_index
        boundary_rows = np.flatnonzero(~matched)
        n_new = len(boundary_rows)
        root_fid[n_prev + boundary_rows] = self._next_index + np.arange(n_new)
        fid = root_fid[parent]

        # Group combined positions by frame (stable sort keeps positions
        # ascending within each group).
        order = np.argsort(fid, kind="stable")
        fid_sorted = fid[order]
        group_starts = np.flatnonzero(
            np.concatenate(([True], fid_sorted[1:] != fid_sorted[:-1]))
        )
        group_ends = np.concatenate((group_starts[1:], [n]))
        group_fids = fid_sorted[group_starts]
        group_last = group_ends - 1
        last_pos = order[group_last]

        # Per-group aggregates over the *new* rows only (carried entries are
        # already inside their frame's running aggregates).  New positions
        # sort after carried ones within a group, so they are each group's
        # tail.
        vals = np.zeros((3, n), dtype=np.int64)
        vals[0, n_prev:] = 1
        vals[1, n_prev:] = media_sizes
        vals[2, n_prev:] = sizes
        counts, media_sums, raw_sums = np.add.reduceat(vals[:, order], group_starts, axis=1)
        first_new = group_ends - counts  # index into `order` of each group's first new row
        ts_sorted = all_ts[order]

        # Finalization schedule: entry q pops when row q + lookback is pushed
        # (the deque never exceeds lookback entries mid-run -- max_gap_s
        # guarantees no stale eviction), so a frame finalizes at its last
        # occurrence + lookback if that row is inside the run.
        fin_pos = last_pos + lookback

        if max_gap_s is not None:
            # Liveness precheck (see docstring).  Every wait below is a
            # difference of timestamps inside [oldest carried entry, horizon],
            # so if that whole interval fits in max_gap_s (the overwhelmingly
            # common case) no frame can violate the bound -- skip the
            # per-frame arithmetic entirely.
            run_horizon = float(timestamps[-1]) if horizon is None else horizon
            first_ts = recent[0][0] if n_prev else float(timestamps[0])
            if run_horizon - first_ts > max_gap_s:
                # Gaps between a frame's consecutive occurrences,
                # carried-tail ts included:
                gaps = np.diff(ts_sorted)
                same_group = fid_sorted[1:] == fid_sorted[:-1]
                if bool(np.any(same_group & (gaps > max_gap_s))):
                    return None
                # ... and from each frame's final occurrence to its
                # finalization row (or the run horizon if it stays open).
                wait_until = np.where(
                    fin_pos < n, all_ts[np.minimum(fin_pos, n - 1)], run_horizon
                )
                if bool(np.any(wait_until - ts_sorted[group_last] > max_gap_s)):
                    return None

        # Commit: build/update frame objects and their placement.  Per-frame
        # Python work is the path's constant factor, so every per-group value
        # is pre-extracted into one zip of plain scalars and the frame
        # objects are built with direct slot stores.
        next_index = self._next_index
        open_table = self._open
        frames: list[AssembledFrame] = []
        prior_ends: list[float | None] = []
        append_frame = frames.append
        append_prior = prior_ends.append
        occ_all = order - n_prev
        new_frame = AssembledFrame.__new__
        for frame_id, count, media_sum, raw_sum, first_ts, end_ts in zip(
            group_fids.tolist(),
            counts.tolist(),
            media_sums.tolist(),
            raw_sums.tolist(),
            ts_sorted[np.minimum(first_new, n - 1)].tolist(),
            ts_sorted[group_last].tolist(),
        ):
            if frame_id < next_index:
                frame = open_table[frame_id]
                append_prior(frame._end_time)
                if count:
                    frame._add_run(count, media_sum, raw_sum, first_ts, end_ts)
            else:
                append_prior(None)
                frame = new_frame(AssembledFrame)
                frame.frame_index = frame_id
                frame.n_packets = count
                frame.size_bytes = media_sum
                frame.raw_size_bytes = raw_sum
                frame._start_time = first_ts
                frame._end_time = end_ts
                frame._packets = None
                frame._packet_src = None
                frame._packet_idx = None
            append_frame(frame)
        # Finalization order == row order: at most one frame finalizes per
        # pushed row, so sorting the finalizing groups by their fin row is a
        # stable total order.
        fin_rows_out: list[int | None] = [None] * len(frames)
        fin_groups = np.flatnonzero(fin_pos < n)
        fin_groups = fin_groups[np.argsort(fin_pos[fin_groups])]
        finalized = []
        for g, fin_row in zip(fin_groups.tolist(), (fin_pos[fin_groups] - n_prev).tolist()):
            fin_rows_out[g] = fin_row
            finalized.append((fin_row, frames[g]))

        # Post-run bounded state: the deque holds the last lookback combined
        # positions; open frames are exactly those with an entry in it.
        # Frames are recovered from their group (group_fids is sorted, so a
        # searchsorted per tail entry beats a full fid -> frame table).
        self._next_index = next_index + n_new
        tail_start = n - lookback if n > lookback else 0
        new_recent: deque[tuple[float, int, AssembledFrame]] = deque()
        live: dict[int, int] = {}
        open_frames: dict[int, AssembledFrame] = {}
        for q in range(tail_start, n):
            if q < n_prev:
                entry = recent[q]
                frame = entry[2]
            else:
                j = q - n_prev
                frame = frames[int(np.searchsorted(group_fids, fid[q]))]
                entry = (float(timestamps[j]), int(sizes[j]), frame)
            new_recent.append(entry)
            index = frame.frame_index
            live[index] = live.get(index, 0) + 1
            open_frames[index] = frame
        self._recent = new_recent
        self._live = live
        self._open = open_frames
        # Carried frames whose last entry popped mid-run left _open above via
        # reconstruction; frames still open keep their identity.
        return FrameRun(finalized, frames, first_new, group_ends, fin_rows_out, prior_ends, occ_all)

    def flush(self) -> list[AssembledFrame]:
        """Finalize and return the remaining open frames; resets the stream."""
        remaining = [self._open[index] for index in sorted(self._open)]
        self.reset()
        return remaining

    def finalize_stale(self, older_than: float) -> list[AssembledFrame]:
        """Force-finalize open frames whose last packet predates ``older_than``.

        Algorithm 1's lookback is packet-count based, so when a stream's video
        stalls (camera off, total loss) the last frame stays open indefinitely
        and a live monitor would stop emitting windows.  This evicts such
        frames -- and their entries in the lookback -- so estimate latency
        stays bounded in wall-clock terms.  Batch assembly never needs it.
        """
        stale = [frame for frame in self._open.values() if frame.end_time < older_than]
        if not stale:
            return []
        stale_ids = {frame.frame_index for frame in stale}
        self._recent = deque(
            entry for entry in self._recent if entry[2].frame_index not in stale_ids
        )
        for frame in stale:
            del self._open[frame.frame_index]
            del self._live[frame.frame_index]
        return sorted(stale, key=lambda f: f.frame_index)

    # -- batch adapters --------------------------------------------------------

    def assemble(self, packets) -> list[AssembledFrame]:
        """Group ``packets`` (in arrival order) into frames.

        Every packet is assigned to exactly one frame.  A packet joins the
        frame of the most recently seen packet (among the last ``lookback``)
        whose size is within ``delta_size`` bytes; otherwise it opens a new
        frame.  This is the batch adapter over :meth:`push_rows` -- one
        vectorized call over the sorted columns, frame-for-frame identical
        to pushing each packet -- with a lazy packet-list view attached to
        every frame so evaluation/ground-truth consumers keep working.

        .. warning:: This **resets the instance's streaming state** first --
           do not call it on an assembler that is concurrently being driven
           via :meth:`push`; give each live stream its own instance (as the
           streaming engine does).
        """
        self.reset()
        ordered = sorted(packets, key=lambda p: p.timestamp)
        if not ordered:
            return []
        count = len(ordered)
        sizes = np.fromiter((p.payload_size for p in ordered), np.int64, count)
        timestamps = np.fromiter((p.timestamp for p in ordered), np.float64, count)
        media_sizes = np.maximum(sizes - RTP_FIXED_HEADER_LEN, 0)
        run = self.push_rows(sizes, media_sizes, timestamps)
        assert run is not None  # no liveness bound in batch mode
        occ_all = run.occ_all
        lo_list = run.lo.tolist()
        hi_list = run.hi.tolist()
        for g, frame in enumerate(run.frames):
            frame._packet_src = ordered
            frame._packet_idx = occ_all[lo_list[g] : hi_list[g]]
        frames = [frame for _, frame in run.finalized]
        frames.extend(self.flush())
        frames.sort(key=lambda f: f.frame_index)
        return frames

    def assemble_trace(self, trace: PacketTrace) -> list[AssembledFrame]:
        return self.assemble(trace.packets)


def assemble_frames(
    packets, delta_size: float = 2.0, lookback: int = 2
) -> list[AssembledFrame]:
    """Convenience wrapper around :class:`FrameAssembler`."""
    return FrameAssembler(delta_size=delta_size, lookback=lookback).assemble(packets)


def intra_frame_size_differences(trace: PacketTrace) -> np.ndarray:
    """Maximum intra-frame packet size difference per ground-truth frame.

    Used to regenerate Figure 2 (intra-frame CDF).  Frames are identified by
    the ground-truth frame annotations; frames with fewer than two packets are
    skipped, as in the paper.
    """
    sizes_by_frame: dict[int, list[int]] = {}
    for packet in trace:
        if packet.frame_id is None:
            continue
        sizes_by_frame.setdefault(packet.frame_id, []).append(packet.payload_size)
    diffs = [
        max(sizes) - min(sizes)
        for sizes in sizes_by_frame.values()
        if len(sizes) >= 2
    ]
    return np.array(diffs, dtype=float)


def inter_frame_size_differences(trace: PacketTrace) -> np.ndarray:
    """Absolute size difference between the last packet of one ground-truth
    frame and the first packet of the next (Figure 2, inter-frame CDF)."""
    frames: dict[int, list[Packet]] = {}
    for packet in trace:
        if packet.frame_id is None:
            continue
        frames.setdefault(packet.frame_id, []).append(packet)
    ordered_frames = [
        sorted(packets, key=lambda p: p.timestamp)
        for _, packets in sorted(frames.items(), key=lambda item: min(p.timestamp for p in item[1]))
    ]
    diffs = []
    for previous, current in zip(ordered_frames, ordered_frames[1:]):
        diffs.append(abs(current[0].payload_size - previous[-1].payload_size))
    return np.array(diffs, dtype=float)
