"""Feature preprocessing helpers: standard scaling and label encoding."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "LabelEncoder"]


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Constant features (zero variance) are left centred but unscaled so they do
    not blow up to NaN.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) == 0:
            raise ValueError("cannot fit a scaler on an empty dataset")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        return X * self.scale_ + self.mean_


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integers and back."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    def fit(self, y) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted; call fit() first")
        index = {label: i for i, label in enumerate(self.classes_)}
        try:
            return np.array([index[v] for v in np.asarray(y)], dtype=int)
        except KeyError as exc:
            raise ValueError(f"unseen label during transform: {exc.args[0]!r}") from exc

    def fit_transform(self, y) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, encoded) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder is not fitted; call fit() first")
        encoded = np.asarray(encoded, dtype=int)
        if encoded.size and (encoded.min() < 0 or encoded.max() >= len(self.classes_)):
            raise ValueError("encoded labels out of range")
        return self.classes_[encoded]
