"""Throughput benchmark: seed-style batch estimation vs the streaming engine.

Measures packets/second of QoE estimation over a 5-minute synthetic
multi-flow trace (two interleaved sessions), comparing

* the **seed batch path** -- a faithful replica of the pre-refactor
  ``QoEPipeline.estimate``: per-window trace re-slicing that rebuilds the
  timestamp list for every window (O(n * windows)), plus the full-trace
  heuristic pass that scans all frames per window; and
* the **streaming engine** -- one pass over the interleaved packets with
  per-flow demultiplexing and O(window) state.

The result is written to ``benchmarks/results/BENCH_streaming.json`` so the
performance trajectory of the hot path is tracked across PRs.  The refactor's
acceptance bar is a >= 3x packets/sec speedup.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left

import numpy as np
import pytest

from conftest import RESULTS_DIR, save_artifact
from repro.core.heuristic import IPUDPHeuristic
from repro.core.pipeline import QoEPipeline
from repro.core.streaming import StreamingQoEPipeline
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.trace import PacketTrace

#: The 5-minute operator trace.  CI's smoke invocation shrinks it via
#: BENCH_SMOKE_DURATION_S; the seed path's O(n * windows) penalty grows with
#: duration, so the smoke run only asserts the stream is not *slower* and
#: writes a separate artifact (the tracked BENCH_streaming.json stays a
#: full-length measurement).
_SMOKE = "BENCH_SMOKE_DURATION_S" in os.environ
TRACE_DURATION_S = float(os.environ.get("BENCH_SMOKE_DURATION_S", 300.0))
SPEEDUP_FLOOR = 1.0 if _SMOKE else 3.0
_ARTIFACT_NAME = "BENCH_streaming_smoke" if _SMOKE else "BENCH_streaming"

#: Shared between the two benchmark tests and the assertion test (the file's
#: tests run in definition order).
_measured: dict[str, float] = {}


def _synthetic_session(seed: int, client_ip: str, client_port: int) -> list[Packet]:
    """One 5-minute VCA-like downlink flow: 25 fps video bursts + 50 Hz audio."""
    rng = np.random.default_rng(seed)
    packets: list[Packet] = []
    ip = IPv4Header(src="192.0.2.10", dst=client_ip)
    udp = UDPHeader(src_port=3478, dst_port=client_port)

    t = float(rng.uniform(0.0, 0.02))
    while t < TRACE_DURATION_S:
        frame_size = int(rng.integers(700, 1200))
        n_fragments = int(rng.integers(2, 5))
        for i in range(n_fragments):
            packets.append(
                Packet(timestamp=t + i * 0.0008, ip=ip, udp=udp, payload_size=frame_size)
            )
        t += float(rng.normal(0.04, 0.004))  # ~25 fps with jitter

    t = float(rng.uniform(0.0, 0.02))
    while t < TRACE_DURATION_S:
        packets.append(
            Packet(timestamp=t, ip=ip, udp=udp, payload_size=int(rng.integers(90, 250)))
        )
        t += 0.02  # 50 Hz audio
    packets.sort(key=lambda p: p.timestamp)
    return packets


@pytest.fixture(scope="module")
def multiflow_trace() -> PacketTrace:
    """Two interleaved sessions, as a passive monitor would capture them."""
    flow_a = _synthetic_session(1, "10.0.0.1", 50001)
    flow_b = _synthetic_session(2, "10.0.0.2", 50002)
    return PacketTrace(flow_a + flow_b)


def _seed_batch_estimate(trace: PacketTrace, heuristic: IPUDPHeuristic, window_s: float = 1.0):
    """Replica of the pre-refactor ``QoEPipeline.estimate`` (untrained path).

    Reproduces the seed's cost profile: ``window_trace`` re-extracted the
    timestamp list and a packet-list copy for *every* window (the seed
    ``time_slice`` had no cache), then the heuristic ran a second full pass
    with a per-window scan over all assembled frames.
    """
    packet_trace = trace.without_ground_truth().without_rtp()
    packets = packet_trace.packets
    end = packet_trace.end_time

    windows = []
    t = 0.0
    while t < end:
        times = [p.timestamp for p in packets]  # rebuilt per window, as seeded
        lo = bisect_left(times, t)
        hi = bisect_left(times, t + window_s)
        windows.append(PacketTrace(packets[lo:hi]))
        t += window_s

    return heuristic.estimate_trace(packet_trace, window_s=window_s, start=0.0)


def test_benchmark_seed_batch_path(benchmark, multiflow_trace):
    heuristic = IPUDPHeuristic.for_profile(QoEPipeline.for_vca("teams").profile)
    result = benchmark.pedantic(
        _seed_batch_estimate, args=(multiflow_trace, heuristic), rounds=3, iterations=1
    )
    assert len(result) >= TRACE_DURATION_S - 1
    if benchmark.stats is not None:
        _measured["batch_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_streaming_engine(benchmark, multiflow_trace):
    packets = multiflow_trace.packets

    def run():
        stream = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        count = 0
        for _ in stream.process(iter(packets)):
            count += 1
        count += len(stream.flush())
        return count, len(stream.flows)

    (n_estimates, n_flows) = benchmark.pedantic(run, rounds=3, iterations=1)
    assert n_flows == 2
    assert n_estimates >= 2 * (TRACE_DURATION_S - 1)
    if benchmark.stats is not None:
        _measured["streaming_s"] = float(benchmark.stats.stats.mean)


def test_streaming_speedup_and_artifact(multiflow_trace):
    if "batch_s" not in _measured or "streaming_s" not in _measured:
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    n_packets = len(multiflow_trace)
    batch_pps = n_packets / _measured["batch_s"]
    streaming_pps = n_packets / _measured["streaming_s"]
    speedup = streaming_pps / batch_pps

    payload = {
        "benchmark": "streaming_throughput",
        "trace": {
            "duration_s": TRACE_DURATION_S,
            "n_packets": n_packets,
            "n_flows": 2,
        },
        "seed_batch_packets_per_s": round(batch_pps, 1),
        "streaming_packets_per_s": round(streaming_pps, 1),
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{_ARTIFACT_NAME}.json").write_text(json.dumps(payload, indent=2) + "\n")
    save_artifact(
        _ARTIFACT_NAME,
        "\n".join(
            [
                f"Streaming vs seed-batch throughput ({TRACE_DURATION_S:.0f}s, 2-flow synthetic trace)",
                f"  packets:            {n_packets}",
                f"  seed batch:         {batch_pps:12.0f} packets/s",
                f"  streaming engine:   {streaming_pps:12.0f} packets/s",
                f"  speedup:            {speedup:12.2f}x  (floor: {SPEEDUP_FLOOR}x)",
            ]
        ),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"streaming engine only {speedup:.2f}x faster than the seed batch path"
    )
