"""Time-varying network conditions.

A :class:`NetworkCondition` describes the bottleneck for one interval: link
rate, one-way propagation delay, delay jitter, and Bernoulli loss probability.
A :class:`ConditionSchedule` is a piecewise-constant sequence of conditions,
each held for a fixed interval (1 second in the paper's emulation, Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

__all__ = ["NetworkCondition", "ConditionSchedule"]


@dataclass(frozen=True)
class NetworkCondition:
    """Bottleneck parameters held constant over one interval."""

    throughput_kbps: float
    delay_ms: float = 50.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.throughput_kbps <= 0:
            raise ValueError(f"throughput_kbps must be positive, got {self.throughput_kbps}")
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be non-negative, got {self.delay_ms}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be non-negative, got {self.jitter_ms}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {self.loss_rate}")

    @property
    def throughput_bytes_per_second(self) -> float:
        return self.throughput_kbps * 1000.0 / 8.0

    def scaled(self, factor: float) -> "NetworkCondition":
        """The same condition with the throughput scaled by ``factor``."""
        return replace(self, throughput_kbps=max(1.0, self.throughput_kbps * factor))


class ConditionSchedule:
    """Piecewise-constant network conditions over the duration of a call."""

    def __init__(self, conditions: Sequence[NetworkCondition], interval: float = 1.0) -> None:
        if not conditions:
            raise ValueError("a schedule needs at least one condition")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._conditions = list(conditions)
        self.interval = interval

    @classmethod
    def constant(cls, condition: NetworkCondition, duration: float, interval: float = 1.0) -> "ConditionSchedule":
        """A schedule holding ``condition`` fixed for ``duration`` seconds."""
        steps = max(1, int(np.ceil(duration / interval)))
        return cls([condition] * steps, interval=interval)

    @property
    def conditions(self) -> list[NetworkCondition]:
        return list(self._conditions)

    @property
    def duration(self) -> float:
        return len(self._conditions) * self.interval

    def at(self, time: float) -> NetworkCondition:
        """The condition active at ``time`` (clamped to the schedule bounds)."""
        if time < 0:
            time = 0.0
        index = min(int(time // self.interval), len(self._conditions) - 1)
        return self._conditions[index]

    def __len__(self) -> int:
        return len(self._conditions)

    def __iter__(self):
        return iter(self._conditions)

    def __getitem__(self, index: int) -> NetworkCondition:
        return self._conditions[index]

    def mean_throughput_kbps(self) -> float:
        return float(np.mean([c.throughput_kbps for c in self._conditions]))

    def mean_loss_rate(self) -> float:
        return float(np.mean([c.loss_rate for c in self._conditions]))

    def mean_delay_ms(self) -> float:
        return float(np.mean([c.delay_ms for c in self._conditions]))

    def truncated(self, duration: float) -> "ConditionSchedule":
        """The first ``duration`` seconds of the schedule."""
        steps = max(1, int(np.ceil(duration / self.interval)))
        return ConditionSchedule(self._conditions[:steps], interval=self.interval)

    def repeated_to(self, duration: float) -> "ConditionSchedule":
        """The schedule cycled until it covers at least ``duration`` seconds."""
        steps = max(1, int(np.ceil(duration / self.interval)))
        cycles = int(np.ceil(steps / len(self._conditions)))
        return ConditionSchedule((self._conditions * cycles)[:steps], interval=self.interval)

    @classmethod
    def concatenate(cls, schedules: Iterable["ConditionSchedule"]) -> "ConditionSchedule":
        """Join schedules (which must share the same interval) back to back."""
        schedules = list(schedules)
        if not schedules:
            raise ValueError("need at least one schedule")
        interval = schedules[0].interval
        conditions: list[NetworkCondition] = []
        for schedule in schedules:
            if schedule.interval != interval:
                raise ValueError("all schedules must share the same interval")
            conditions.extend(schedule.conditions)
        return cls(conditions, interval=interval)
