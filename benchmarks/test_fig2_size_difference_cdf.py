"""Figure 2: intra-frame vs inter-frame packet size differences (Teams).

Paper shape: intra-frame packet size differences are below 2 bytes for almost
all frames, while inter-frame differences are at least 2 bytes for >99% of
consecutive frame pairs -- the property Algorithm 1 exploits.
"""

import numpy as np

from benchmarks.conftest import save_artifact
from repro.analysis.cdf import fraction_at_or_below
from repro.analysis.reporting import format_table
from repro.core.frame_assembly import inter_frame_size_differences, intra_frame_size_differences


def _collect_differences(calls):
    intra, inter = [], []
    for call in calls:
        intra.append(intra_frame_size_differences(call.trace))
        inter.append(inter_frame_size_differences(call.trace))
    return np.concatenate(intra), np.concatenate(inter)


def test_fig2_intra_vs_inter_frame_size_difference(benchmark, lab_calls):
    intra, inter = benchmark.pedantic(_collect_differences, args=(lab_calls["teams"],), rounds=1, iterations=1)

    points = [0, 1, 2, 5, 10, 50, 100, 500]
    rows = [
        ["Intra-frame", len(intra)] + [f"{fraction_at_or_below(intra, p):.3f}" for p in points],
        ["Inter-frame", len(inter)] + [f"{fraction_at_or_below(inter, p):.3f}" for p in points],
    ]
    text = format_table(
        ["Difference type", "frames"] + [f"<= {p}B" for p in points],
        rows,
        title="Figure 2 - packet size difference CDFs (Teams, in-lab)",
    )
    save_artifact("fig2_size_difference_cdf", text)

    assert float(np.mean(intra <= 2.0)) > 0.9
    assert float(np.mean(inter >= 2.0)) > 0.9
