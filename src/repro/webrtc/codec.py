"""Video encoder model.

Generates per-frame encoded sizes and capture times for one second of video
at a given target bitrate, frame rate and resolution.  The model captures the
properties the paper's inference relies on:

* variable-bitrate encoding: consecutive frames have different sizes (which is
  what makes the inter-frame packet-size difference a usable frame-boundary
  signal, Figure 2);
* occasional keyframes that are several times larger than delta frames;
* frame rate adaptation: below a bitrate floor the encoder drops its frame
  rate rather than starving every frame of bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.webrtc.profiles import VCAProfile

__all__ = ["EncodedFrame", "VideoEncoder"]


@dataclass(frozen=True)
class EncodedFrame:
    """One encoded video frame ready for packetisation."""

    frame_id: int
    capture_time: float
    size_bytes: int
    height: int
    is_keyframe: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {self.size_bytes}")


class VideoEncoder:
    """Stateful per-call encoder producing frames second by second."""

    #: Below this many kilobits per second per frame-per-second the encoder
    #: reduces its frame rate (roughly: don't go under ~45 kbit per frame... ).
    _MIN_BITS_PER_FRAME = 4500.0

    def __init__(self, profile: VCAProfile, rng: np.random.Generator, environment: str = "lab") -> None:
        self.profile = profile
        self.rng = rng
        self.environment = environment
        self._next_frame_id = 1
        self._time_since_keyframe = 0.0
        self._content_activity = 1.0  # slowly varying content complexity

    def frame_rate_for(self, bitrate_kbps: float, max_fps: float) -> float:
        """Frame rate the encoder actually uses at ``bitrate_kbps``.

        The encoder keeps the full frame rate while each frame still gets a
        reasonable byte budget, then degrades smoothly; this produces the wide
        ground-truth FPS distributions of Figure A.1.
        """
        if bitrate_kbps <= 0:
            return 0.0
        affordable = (bitrate_kbps * 1000.0) / self._MIN_BITS_PER_FRAME
        fps = float(np.clip(affordable, 1.0, max_fps))
        return fps

    def encode_second(
        self,
        start_time: float,
        bitrate_kbps: float,
        height: int,
        max_fps: float,
    ) -> list[EncodedFrame]:
        """Encode one second of video starting at ``start_time``.

        Returns the frames captured in ``[start_time, start_time + 1)`` with
        sizes that sum to approximately the bitrate budget.
        """
        fps = self.frame_rate_for(bitrate_kbps, max_fps)
        n_frames = int(round(fps))
        if n_frames <= 0:
            return []

        # Slowly varying content activity modulates the budget (talking head
        # vs. motion), bounded to stay within the rate controller's ballpark.
        self._content_activity = float(
            np.clip(self._content_activity + self.rng.normal(0.0, 0.05), 0.75, 1.25)
        )
        budget_bytes = bitrate_kbps * 1000.0 / 8.0 * self._content_activity

        frame_interval = 1.0 / n_frames
        mean_frame_bytes = budget_bytes / n_frames

        frames: list[EncodedFrame] = []
        for i in range(n_frames):
            capture_time = start_time + i * frame_interval + self.rng.uniform(0.0, frame_interval * 0.1)
            self._time_since_keyframe += frame_interval
            is_keyframe = False
            if self._time_since_keyframe >= self.profile.keyframe_interval_s:
                is_keyframe = True
                self._time_since_keyframe = 0.0

            # Log-normal per-frame variability around the mean frame size; the
            # sigma controls how distinguishable consecutive frames are.
            size = mean_frame_bytes * float(
                np.exp(self.rng.normal(0.0, self.profile.frame_size_sigma))
            )
            if is_keyframe:
                size *= self.profile.keyframe_multiplier
            size_bytes = max(120, int(round(size)))

            frames.append(
                EncodedFrame(
                    frame_id=self._next_frame_id,
                    capture_time=capture_time,
                    size_bytes=size_bytes,
                    height=height,
                    is_keyframe=is_keyframe,
                )
            )
            self._next_frame_id += 1
        return frames
