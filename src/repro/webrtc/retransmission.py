"""Retransmission (RTX) stream and call-setup control traffic.

The paper observes that the retransmission payload type carries two kinds of
packets: fixed-size 304-byte keep-alives (92% of the RTX packets -- sent so
the RTX transport stays alive even when nothing is being retransmitted) and
actual retransmissions of lost video packets, which are as large as the video
packets they repeat (Section 3.1).  At call start a handful of DTLS/STUN
handshake packets appear; they are larger than the audio threshold and are
the source of the small media-classification false-positive rate in Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader
from repro.rtp.header import RTPHeader, VIDEO_CLOCK_RATE
from repro.webrtc.packetizer import PacketizerConfig
from repro.webrtc.profiles import VCAProfile

__all__ = ["RetransmissionStream", "generate_control_handshake"]


class RetransmissionStream:
    """RTX keep-alives plus retransmissions of reported losses."""

    def __init__(
        self,
        profile: VCAProfile,
        config: PacketizerConfig,
        rng: np.random.Generator,
    ) -> None:
        self.profile = profile
        self.config = config
        self.rng = rng
        self._sequence = int(rng.integers(0, 1 << 15))
        self._timestamp_base = int(rng.integers(0, 1 << 30))

    def _next_sequence(self) -> int:
        value = self._sequence & 0xFFFF
        self._sequence += 1
        return value

    #: At most this many retransmissions are issued per feedback interval;
    #: older losses are abandoned (the frame is obsolete by then).
    MAX_RETRANSMISSIONS_PER_SECOND = 12

    def _packet(
        self,
        departure: float,
        size: int,
        is_retransmission: bool,
        frame_id: int | None = None,
        frame_metadata: dict | None = None,
    ) -> Packet:
        header = RTPHeader(
            payload_type=self.config.payload_type,
            sequence_number=self._next_sequence(),
            timestamp=(self._timestamp_base + int(departure * VIDEO_CLOCK_RATE)) & 0xFFFFFFFF,
            ssrc=self.config.ssrc,
            marker=is_retransmission,
        )
        metadata = {"retransmission": is_retransmission}
        if frame_metadata:
            metadata.update(frame_metadata)
        return Packet(
            timestamp=departure,
            ip=IPv4Header(src=self.config.src_ip, dst=self.config.dst_ip),
            udp=UDPHeader(
                src_port=self.config.src_port,
                dst_port=self.config.dst_port,
                length=size + 8,
            ),
            payload_size=size,
            rtp=header,
            media_type=MediaType.VIDEO_RTX,
            frame_id=frame_id,
            metadata=metadata,
        )

    def generate_second(
        self,
        start_time: float,
        lost_video_packets: list[Packet] | None = None,
    ) -> list[Packet]:
        """RTX traffic for one second.

        ``lost_video_packets`` lists the original video packets whose loss was
        reported over the last feedback interval (NACKs); each produces one
        retransmission of the same size carrying the same frame identity, so a
        delivered retransmission completes the frame at the receiver exactly
        as WebRTC's RTX/NACK recovery does.
        """
        if not self.profile.uses_rtx:
            return []
        packets: list[Packet] = []
        # Keep-alives: a small steady trickle of fixed 304-byte packets.
        n_keepalives = 1 + int(self.rng.random() < 0.5)
        for _ in range(n_keepalives):
            departure = start_time + self.rng.uniform(0.0, 1.0)
            packets.append(self._packet(departure, self.profile.keepalive_size, is_retransmission=False))
        # Retransmissions of reported losses, issued early in the interval
        # (one NACK round trip after the loss).
        losses = (lost_video_packets or [])[: self.MAX_RETRANSMISSIONS_PER_SECOND]
        for lost in losses:
            departure = start_time + self.rng.uniform(0.0, 0.4)
            retransmitted_size = max(self.profile.keepalive_size + 1, lost.payload_size)
            packets.append(
                self._packet(
                    departure,
                    retransmitted_size,
                    is_retransmission=True,
                    frame_id=lost.frame_id,
                    frame_metadata=dict(lost.metadata),
                )
            )
        packets.sort(key=lambda p: p.timestamp)
        return packets


def generate_control_handshake(
    config: PacketizerConfig,
    rng: np.random.Generator,
    start_time: float = 0.0,
) -> list[Packet]:
    """DTLS/STUN handshake packets at the start of a call.

    These are non-RTP packets, several of which exceed the video size
    threshold (DTLS server-hello and key exchange), producing the ~1.5-2%
    non-video-classified-as-video rate in Tables 2, A.1 and A.2.
    """
    sizes = [
        int(rng.uniform(60, 120)),    # STUN binding request
        int(rng.uniform(60, 120)),    # STUN binding response
        int(rng.uniform(500, 1200)),  # DTLS server hello + certificate
        int(rng.uniform(500, 1200)),  # DTLS certificate continued
        int(rng.uniform(200, 400)),   # DTLS key exchange
        int(rng.uniform(60, 150)),    # DTLS finished
    ]
    packets = []
    offset = start_time
    for size in sizes:
        offset += rng.uniform(0.005, 0.05)
        packets.append(
            Packet(
                timestamp=offset,
                ip=IPv4Header(src=config.src_ip, dst=config.dst_ip),
                udp=UDPHeader(
                    src_port=config.src_port,
                    dst_port=config.dst_port,
                    length=size + 8,
                ),
                payload_size=size,
                rtp=None,
                media_type=MediaType.CONTROL,
            )
        )
    return packets
