"""Prediction-window handling (Section 2.2 and 4.1).

The estimators operate over windows of ``W`` seconds (1 s by default).  This
module slices a trace into windows aligned with the per-second ground-truth
log and pairs each window with the matching ground-truth row, reproducing the
timestamp-based matching the paper performs between packet captures and
``webrtc-internals`` logs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.trace import PacketTrace, window_grid
from repro.webrtc.stats import GroundTruthLog, PerSecondStats

__all__ = ["WindowedTrace", "window_trace", "match_windows_to_ground_truth", "MatchedWindow"]


@dataclass(frozen=True)
class WindowedTrace:
    """One prediction window: its start time, duration, and packets."""

    start: float
    duration: float
    packets: PacketTrace

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __len__(self) -> int:
        return len(self.packets)


@dataclass(frozen=True)
class MatchedWindow:
    """A prediction window paired with its ground-truth row(s)."""

    window: WindowedTrace
    ground_truth: PerSecondStats


def window_trace(trace: PacketTrace, window_s: float = 1.0, start: float = 0.0, end: float | None = None) -> list[WindowedTrace]:
    """Slice ``trace`` into consecutive windows of ``window_s`` seconds.

    Windows are aligned to ``start`` (call time zero), not to the first packet,
    so window *k* corresponds to ground-truth second *k*.  Empty windows are
    included.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if end is None:
        end = trace.end_time
    # The shared drift-free grid: starts are ``start + k * window_s`` (index
    # multiplication), since repeated ``t += window_s`` accumulates float
    # error and misaligns windows with the per-second ground-truth grid on
    # long traces with fractional windows.
    return [
        WindowedTrace(start=t, duration=window_s, packets=trace.time_slice(t, next_t))
        for _, t, next_t in window_grid(start, window_s, end)
    ]


def match_windows_to_ground_truth(
    trace: PacketTrace,
    ground_truth: GroundTruthLog,
    window_s: int = 1,
    skip_leading_s: int = 2,
    skip_trailing_s: int = 1,
) -> list[MatchedWindow]:
    """Pair per-window packet slices with ground-truth rows.

    ``window_s`` must be an integer number of seconds so the per-second
    ground-truth rows can be aggregated onto the same grid (the Figure 12
    sweep varies this from 1 to 10 seconds).  The first couple of seconds
    (call setup, handshake, encoder ramp-up) and the trailing second are
    dropped, mirroring the paper's filtering of ill-aligned log rows.
    """
    if window_s < 1:
        raise ValueError("window_s must be >= 1")
    aggregated = ground_truth.aggregate(window_s)
    matched: list[MatchedWindow] = []
    for row in aggregated:
        window_start = row.second * window_s
        if window_start < skip_leading_s:
            continue
        if window_start + window_s > len(ground_truth) - skip_trailing_s:
            continue
        window = WindowedTrace(
            start=float(window_start),
            duration=float(window_s),
            packets=trace.time_slice(float(window_start), float(window_start + window_s)),
        )
        matched.append(MatchedWindow(window=window, ground_truth=row))
    return matched
