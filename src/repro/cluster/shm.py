"""Shared-memory block rings: the zero-copy router -> worker transport.

The queue transports move a :class:`~repro.net.block.PacketBlock` by
pickling its arrays into a pipe and unpickling them on the other side --
two copies plus per-message interpreter work, which is exactly what
dominates the sharded monitor's 1-worker overhead (``BENCH_columnar``:
~64k pps over the queue vs ~287k pps for the same blocks pushed
in-process).  Blocks are already contiguous struct-of-arrays batches, so
the fix is the standard one: put the bytes in a
:class:`multiprocessing.shared_memory.SharedMemory` segment both sides map,
and move only *slot tokens* through the queue.

:class:`BlockRing` is a fixed-slot single-producer/single-consumer ring:

* one ring per shard, created by the parent (the producer) and attached by
  that shard's worker (the consumer);
* ``slot_count`` slots of ``slot_bytes`` each; a block is encoded into a
  slot with the :meth:`PacketBlock.write_into
  <repro.net.block.PacketBlock.write_into>` flat-buffer codec and decoded
  as zero-copy array views with :meth:`PacketBlock.read_from
  <repro.net.block.PacketBlock.read_from>`;
* per-slot **ready/free semaphores** provide back-pressure: the producer
  blocks (with a timeout, so it can keep draining worker output) when the
  ring is full, the consumer when it is empty.  Both sides walk the slots
  in order, so FIFO needs no shared indices;
* the consumer must finish with a popped block **before** calling
  :meth:`release` -- the slot is recycled immediately after.  The engine's
  ``push_block`` copies everything it keeps (fancy indexing copies), so
  "consume then release" is safe without an extra memcpy;
* lifecycle is explicit: workers :meth:`close` their mapping, the owner
  :meth:`unlink`\\ s the segment.  The sharded monitor unlinks in a
  ``finally`` so normal exit, aborts, and worker death all reclaim the
  segment (asserted by ``tests/cluster/test_shm_transport.py``).

Workers attach **untracked**: Python's ``resource_tracker`` would otherwise
count the segment once per process and complain (or double-unlink) when the
parent reclaims it.  Python 3.13+ exposes ``track=False``; on older
versions the registration is reverted by hand.
"""

from __future__ import annotations

from repro.net.block import PacketBlock

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["BlockRing", "RingHandle", "shm_available", "DEFAULT_SLOT_BYTES"]

#: Default slot payload capacity.  Sized for the monitor's default
#: ``chunk_size`` with generous headroom (a 1024-row block with every
#: optional column is ~58 KiB); the router splits anything larger.
DEFAULT_SLOT_BYTES = 1 << 20

#: Per-slot length prefix (written as a tiny int64 view, 8-aligned).
_SLOT_HEADER_BYTES = 8


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` works on this platform.

    Checks by actually creating (and immediately reclaiming) a minimal
    segment: some sandboxes ship the module but deny ``/dev/shm``.
    """
    if _shared_memory is None:
        return False
    try:
        segment = _shared_memory.SharedMemory(create=True, size=8)
    except (OSError, PermissionError):
        return False
    segment.close()
    segment.unlink()
    return True


def _attach_untracked(name: str):
    """Attach to an existing segment without resource-tracker registration."""
    try:
        return _shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:
        # Pre-3.13: attaching registers the segment with this process's
        # resource tracker, which would then fight the owner over cleanup.
        # Suppress the registration for the duration of the attach.
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(name_, rtype):  # pragma: no branch
            if rtype != "shared_memory":
                original(name_, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class RingHandle:
    """The worker-side descriptor of a ring: everything :meth:`attach` needs.

    Picklable only the way ``multiprocessing`` primitives are -- as part of
    the ``Process`` arguments during spawn -- which is exactly how it
    travels.
    """

    def __init__(self, name: str, slot_count: int, slot_bytes: int, ready, free) -> None:
        self.name = name
        self.slot_count = slot_count
        self.slot_bytes = slot_bytes
        self.ready = ready
        self.free = free

    def attach(self) -> "BlockRing":
        """Map the segment in this (worker) process; consumer side."""
        segment = _attach_untracked(self.name)
        return BlockRing(segment, self.slot_count, self.slot_bytes, self.ready, self.free, owner=False)


class BlockRing:
    """A fixed-slot SPSC ring of flat-encoded blocks over shared memory.

    Construct with :meth:`create` (producer/owner side) or
    :meth:`RingHandle.attach` (consumer side); the ``__init__`` signature is
    internal plumbing shared by both.
    """

    def __init__(self, segment, slot_count: int, slot_bytes: int, ready, free, owner: bool) -> None:
        self._segment = segment
        self.slot_count = slot_count
        self.slot_bytes = slot_bytes
        self._ready = ready
        self._free = free
        self._owner = owner
        self._stride = _SLOT_HEADER_BYTES + slot_bytes
        # Producer and consumer each track their own cursor; SPSC in slot
        # order means they never need to share it.
        self._cursor = 0
        self._popped: memoryview | None = None
        self._closed = False

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, ctx, slot_count: int, slot_bytes: int = DEFAULT_SLOT_BYTES) -> "BlockRing":
        """Allocate a ring: ``slot_count`` slots of ``slot_bytes`` payload.

        ``ctx`` is the multiprocessing context the worker will be spawned
        from (its semaphores must match the start method).  The creating
        process is the owner: it must eventually call :meth:`unlink`.
        """
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise RuntimeError("multiprocessing.shared_memory is unavailable on this platform")
        if slot_count < 1:
            raise ValueError(f"slot_count must be >= 1, got {slot_count!r}")
        if slot_bytes < 1024:
            raise ValueError(f"slot_bytes must be >= 1024, got {slot_bytes!r}")
        slot_bytes = (slot_bytes + 7) & ~7
        segment = _shared_memory.SharedMemory(
            create=True, size=slot_count * (_SLOT_HEADER_BYTES + slot_bytes)
        )
        ready = tuple(ctx.Semaphore(0) for _ in range(slot_count))
        free = tuple(ctx.Semaphore(1) for _ in range(slot_count))
        return cls(segment, slot_count, slot_bytes, ready, free, owner=True)

    def handle(self) -> RingHandle:
        """The descriptor to pass into the worker process's arguments."""
        return RingHandle(self._segment.name, self.slot_count, self.slot_bytes, self._ready, self._free)

    @property
    def name(self) -> str:
        """The shared-memory segment name (for leak assertions in tests)."""
        return self._segment.name

    # -- producer side ---------------------------------------------------------

    def try_push(self, block: PacketBlock, timeout: float | None = None) -> bool:
        """Encode ``block`` into the next slot; False if no slot freed in time.

        Raises :class:`ValueError` -- without consuming a slot -- when the
        block cannot fit (``byte_size() > slot_bytes``, split it first) or
        cannot be flat-encoded at all (RTP columns); the caller falls back
        to the queue transport for those.
        """
        size = block.byte_size()
        if size > self.slot_bytes:
            raise ValueError(
                f"block of {size} bytes exceeds the ring's {self.slot_bytes}-byte slots"
            )
        if not self._free[self._cursor].acquire(True, timeout):
            return False
        offset = self._cursor * self._stride
        buf = self._segment.buf
        header = memoryview(buf)[offset : offset + _SLOT_HEADER_BYTES]
        header[:] = size.to_bytes(_SLOT_HEADER_BYTES, "little")
        payload = memoryview(buf)[offset + _SLOT_HEADER_BYTES : offset + self._stride]
        try:
            block.write_into(payload)
        finally:
            header.release()
            payload.release()
        self._ready[self._cursor].release()
        self._cursor = (self._cursor + 1) % self.slot_count
        return True

    # -- consumer side ---------------------------------------------------------

    def pop(self, timeout: float | None = None) -> PacketBlock | None:
        """Decode the oldest pending slot; ``None`` on timeout.

        The returned block's columns are views into the slot: consume it
        fully (e.g. ``engine.push_block``) and then call :meth:`release`.
        At most one slot may be outstanding at a time.
        """
        if self._popped is not None:
            raise RuntimeError("previous block not released; call release() first")
        if not self._ready[self._cursor].acquire(True, timeout):
            return None
        offset = self._cursor * self._stride
        buf = self._segment.buf
        size = int.from_bytes(bytes(buf[offset : offset + _SLOT_HEADER_BYTES]), "little")
        payload = memoryview(buf)[
            offset + _SLOT_HEADER_BYTES : offset + _SLOT_HEADER_BYTES + size
        ]
        self._popped = payload
        return PacketBlock.read_from(payload)

    def release(self) -> None:
        """Recycle the slot of the last :meth:`pop`\\ ped block.

        The block decoded from it (and anything still viewing its buffer)
        must be dropped before calling this; the producer will overwrite the
        slot immediately.
        """
        if self._popped is None:
            raise RuntimeError("no popped block to release")
        self._popped.release()
        self._popped = None
        self._free[self._cursor].release()
        self._cursor = (self._cursor + 1) % self.slot_count

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Unmap the segment in this process (both sides; idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._popped is not None:
            try:
                self._popped.release()
            except BufferError:
                # A decoded block still views the slot (e.g. the worker's
                # error path closes with its last chunk in scope); the
                # mapping goes when the process does.
                pass
            self._popped = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a stray view outlived its block
            # The mapping stays until the process exits; the segment itself
            # is still reclaimed by the owner's unlink().
            pass

    def unlink(self) -> None:
        """Reclaim the OS segment (owner only; idempotent, tolerates races)."""
        if not self._owner:
            return
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
