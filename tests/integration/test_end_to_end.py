"""Integration tests: full simulate -> capture -> estimate -> evaluate flows."""

import numpy as np
import pytest

from repro.core.evaluation import EvaluationDataset, compare_methods, resolution_report
from repro.core.media import MediaClassifier
from repro.core.pipeline import QoEPipeline
from repro.net.packet import MediaType
from repro.net.trace import PacketTrace
from repro.netem.conditions import ConditionSchedule, NetworkCondition
from repro.webrtc.profiles import VCA_NAMES, get_profile
from repro.webrtc.session import SessionConfig, simulate_call


class TestSimulationRealism:
    """The simulated traffic must exhibit the transport-level properties the
    paper's method depends on; these tests pin them down per VCA."""

    @pytest.fixture(scope="class")
    def calls(self, teams_call, meet_call, webex_call):
        return {"teams": teams_call, "meet": meet_call, "webex": webex_call}

    @pytest.mark.parametrize("vca", VCA_NAMES)
    def test_audio_and_video_size_separation(self, calls, vca):
        trace = calls[vca].trace
        audio = [p.payload_size for p in trace if p.media_type is MediaType.AUDIO]
        video = [p.payload_size for p in trace if p.media_type is MediaType.VIDEO]
        assert max(audio) < 450
        assert np.percentile(video, 5) > 450

    @pytest.mark.parametrize("vca", VCA_NAMES)
    def test_intra_frame_equal_packet_property(self, calls, vca):
        from repro.core.frame_assembly import intra_frame_size_differences

        diffs = intra_frame_size_differences(calls[vca].trace)
        fraction_equal = float(np.mean(diffs <= 2.0))
        # All VCAs fragment most frames into equal packets; Meet the least.
        assert fraction_equal > 0.80
        if vca == "webex":
            assert fraction_equal > 0.97

    @pytest.mark.parametrize("vca", VCA_NAMES)
    def test_payload_types_match_profile(self, calls, vca):
        profile = get_profile(vca)
        trace = calls[vca].trace
        video_pts = {p.rtp.payload_type for p in trace if p.media_type is MediaType.VIDEO and p.rtp}
        audio_pts = {p.rtp.payload_type for p in trace if p.media_type is MediaType.AUDIO and p.rtp}
        assert video_pts == {profile.payload_types.video}
        assert audio_pts == {profile.payload_types.audio}

    @pytest.mark.parametrize("vca", VCA_NAMES)
    def test_ground_truth_heights_on_profile_ladder(self, calls, vca):
        profile = get_profile(vca)
        heights = set(calls[vca].ground_truth.frame_heights) - {0}
        assert heights <= set(profile.heights)

    def test_keepalive_packets_present(self, calls):
        trace = calls["teams"].trace
        keepalives = [p for p in trace if p.media_type is MediaType.VIDEO_RTX and p.payload_size == 304]
        assert keepalives


class TestFullPipelineFlow:
    def test_pcap_in_estimates_out(self, tmp_path, teams_calls_small):
        """Train on labelled calls, then estimate a held-out pcap blind."""
        train_calls = teams_calls_small[:3]
        test_call = teams_calls_small[3]
        pipeline = QoEPipeline.for_vca("teams").train(train_calls)

        pcap = tmp_path / "held_out.pcap"
        # Strip RTP and ground truth before writing: the operator's view.
        PacketTrace(
            [p.without_rtp().without_ground_truth() for p in test_call.trace], vca="teams"
        ).to_pcap(pcap)

        estimates = pipeline.estimate(pcap)
        assert estimates
        by_second = {int(e.window_start): e for e in estimates}
        errors = [
            abs(by_second[row.second].frame_rate - row.frames_received)
            for row in test_call.ground_truth.rows[3:-2]
            if row.second in by_second
        ]
        assert np.mean(errors) < 8.0

    def test_media_classification_then_estimation_consistency(self, teams_call):
        classifier = MediaClassifier()
        video, non_video = classifier.split(teams_call.trace)
        assert len(video) + len(non_video) == len(teams_call.trace)
        report = classifier.evaluate(teams_call.trace)
        assert report.video_recall > 0.98

    def test_paper_headline_ordering_holds_on_small_dataset(self, teams_calls_small):
        """IP/UDP ML should track RTP ML within a couple of FPS and beat the
        IP/UDP heuristic (the paper's headline claim, at reduced scale)."""
        dataset = EvaluationDataset.from_calls(teams_calls_small)
        results = compare_methods(dataset, "frame_rate", n_estimators=20)
        assert results["ipudp_ml"].summary.mae <= results["ipudp_heuristic"].summary.mae
        assert abs(results["ipudp_ml"].summary.mae - results["rtp_ml"].summary.mae) < 3.0

    def test_resolution_classification_end_to_end(self, teams_calls_small):
        dataset = EvaluationDataset.from_calls(teams_calls_small)
        report = resolution_report(dataset, "ipudp_ml", n_estimators=20)
        # Better than the majority-class baseline.
        majority = max(np.bincount([list(report.labels).index(l) for l in dataset.resolution_labels])) / len(dataset)
        assert report.accuracy >= majority * 0.9

    def test_short_bad_call_still_estimable(self):
        schedule = ConditionSchedule.constant(
            NetworkCondition(throughput_kbps=200.0, delay_ms=150.0, jitter_ms=30.0, loss_rate=0.1), 12
        )
        call = simulate_call(SessionConfig(vca="webex", duration_s=12, seed=99), schedule)
        estimates = QoEPipeline.for_vca("webex").estimate(call.trace)
        assert estimates
        assert all(np.isfinite(e.bitrate_kbps) for e in estimates)
