"""Ordered fan-in of per-shard estimate streams.

Each shard worker emits estimates in its own emission order; downstream
sinks want *one* stream in a deterministic order.  :class:`FanInSink`
merges the per-shard streams using the same watermark idea the engine uses
for windows: a shard's batches carry a **low watermark** -- a lower bound on
the ``window_start`` of anything it could still emit (see
:meth:`StreamingQoEPipeline.low_watermark
<repro.core.streaming.StreamingQoEPipeline.low_watermark>`) -- and the
fan-in releases a buffered estimate only once *every* live shard's watermark
has passed it.  Released estimates are ordered by ``(window_start,
flow key)``, which is a total, run-independent order (one flow closes each
window at most once), so the merged stream is identical no matter how the
shards' messages interleave.

**Ordering contract.**  The output is globally sorted by ``(window_start,
flow)`` provided every shard honours its watermarks, which holds whenever
cross-flow disorder in the source stays within the engine's
``new_flow_slack_s`` bound.  A violating (pathologically disordered) source
degrades only the *order* of the late estimate -- it is still delivered
exactly once.

With watermarks flowing (the sharded monitor's mode), memory is
O(in-flight window span x flows), not O(run): estimates leave the buffer as
soon as the slowest shard's watermark passes them.  Without watermarks --
including the plain single-stream ``emit`` mode -- everything is buffered
and ordered at :meth:`~FanInSink.close`, which costs O(run) memory like a
:class:`~repro.sinks.base.CollectorSink`.
"""

from __future__ import annotations

import math
from time import perf_counter

from repro.core.streaming import StreamEstimate
from repro.net.flows import FlowKey
from repro.sinks.base import EstimateSink

__all__ = ["FanInSink", "flow_sort_key"]


def flow_sort_key(flow: FlowKey | None) -> tuple:
    """A total order over flow keys (``None`` -- single-flow mode -- first)."""
    if flow is None:
        return (0,)
    return (1, flow.src, flow.src_port, flow.dst, flow.dst_port, flow.protocol)


def _estimate_sort_key(item: StreamEstimate) -> tuple:
    return (item.estimate.window_start, flow_sort_key(item.flow))


class FanInSink(EstimateSink):
    """Merge ``n_shards`` estimate streams into one ordered stream.

    Downstream can be any existing :class:`~repro.sinks.base.EstimateSink`
    (or several); they observe a single monitor-like stream and never learn
    the run was sharded.  The per-shard interface is
    :meth:`accept` (buffer a batch + raise that shard's watermark) and
    :meth:`finish` (shard exhausted); :meth:`close` flushes whatever is left
    in deterministic order and closes the downstream sinks.

    Also usable as a plain single-stream sink (``emit`` maps to shard 0
    with no watermark): the whole stream is buffered and sorted at
    ``close`` -- O(run) memory, like a collector -- which makes an unsharded
    monitor's output order bit-compatible with a sharded one's.
    """

    def __init__(self, sinks=(), n_shards: int = 1, obs=None) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        if hasattr(sinks, "emit"):  # a single sink was passed
            sinks = (sinks,)
        self.sinks = tuple(sinks)
        self.n_shards = n_shards
        #: Optional :class:`~repro.obs.registry.MetricsRegistry` for release
        #: spans and counters; releases are identical with or without it.
        self.obs = obs
        self._buffers: list[list[StreamEstimate]] = [[] for _ in range(n_shards)]
        self._watermarks: list[float] = [-math.inf] * n_shards
        self._finished: list[bool] = [False] * n_shards
        #: Migration fences: token -> release cap.  While a flow is in
        #: flight between shards its pending windows are represented by
        #: nobody's watermark, so each in-flight migration caps the release
        #: threshold at the flow's ``next_window_start`` until the new home
        #: has restored it and reported a watermark that covers it.
        self._fences: dict[object, float] = {}
        self._scanned_threshold = -math.inf
        self.records_released = 0
        self._closed = False

    # -- per-shard input -------------------------------------------------------

    def accept(
        self,
        shard_id: int,
        items: list[StreamEstimate],
        low_watermark: float | None = None,
    ) -> None:
        """Buffer one batch from ``shard_id`` and advance its watermark.

        ``low_watermark`` is the shard's bound on future emissions; ``None``
        leaves the previous bound in place.  Watermarks never move backwards
        (a stale bound cannot un-release anything).

        A batch for a shard already marked :meth:`finish`\\ ed is a protocol
        violation and raises: that shard's watermark is pinned at ``+inf``,
        so a late item would release immediately -- possibly behind
        estimates it should precede -- silently breaking the global
        ``(window_start, flow)`` ordering contract.
        """
        self._check_shard(shard_id)
        if self._finished[shard_id]:
            raise RuntimeError(
                f"shard {shard_id} already finished; a late batch would break "
                "the fan-in's ordering contract"
            )
        self._buffers[shard_id].extend(items)
        if low_watermark is not None and low_watermark > self._watermarks[shard_id]:
            self._watermarks[shard_id] = low_watermark
        new_min = (
            min(item.estimate.window_start for item in items) if items else math.inf
        )
        self._release(new_min)

    def finish(self, shard_id: int) -> None:
        """Mark ``shard_id`` exhausted: it holds back the merge no longer."""
        self._check_shard(shard_id)
        self._finished[shard_id] = True
        self._watermarks[shard_id] = math.inf
        self._release()

    # -- live migration support ------------------------------------------------

    def add_fence(self, token, bound: float) -> None:
        """Cap the release threshold at ``bound`` until ``token`` is cleared.

        Installed when a migrating flow's snapshot leaves its old shard:
        ``bound`` is the flow's ``next_window_start``, below which nothing of
        the flow is still pending, at or above which everything is.  The old
        shard's watermark covered the flow until this moment, so ``bound``
        is never below the current threshold -- a fence only prevents future
        advances, it cannot un-release.
        """
        if self._closed:
            raise RuntimeError("FanInSink is closed")
        self._fences[token] = bound

    def clear_fence(self, token) -> None:
        """Lift a migration fence (no-op for unknown tokens)."""
        if self._fences.pop(token, None) is not None and not self._closed:
            self._release()

    def rebase_watermark(self, shard_id: int, low_watermark: float) -> None:
        """Set a shard's watermark exactly, allowing it to move *backwards*.

        A migration is the one sanctioned watermark regression: the new home
        shard may now emit windows below the bound it reported before the
        flow arrived.  Its first watermark computed after the restore is a
        genuine bound again, and the caller installs it here verbatim
        (regressions included) before lifting the migration's fence.  The
        fence kept the threshold at or below the migrated flow's pending
        windows in the interim, so no release has passed anything the rebase
        re-admits.
        """
        self._check_shard(shard_id)
        if self._finished[shard_id]:
            return
        self._watermarks[shard_id] = low_watermark

    def emit(self, item: StreamEstimate) -> None:
        """Single-stream sink compatibility: everything arrives on shard 0."""
        self.accept(0, [item])

    def close(self) -> None:
        """Flush remaining buffered estimates (ordered) and close downstream."""
        if self._closed:
            return
        self._closed = True
        # Any fence still standing is moot: every worker has emitted (or
        # died, aborting the run before this point), so nothing a fence was
        # protecting can still arrive.
        self._fences.clear()
        for shard_id in range(self.n_shards):
            self._finished[shard_id] = True
            self._watermarks[shard_id] = math.inf
        self._release()
        for sink in self.sinks:
            sink.close()

    # -- internals -------------------------------------------------------------

    def _check_shard(self, shard_id: int) -> None:
        if not 0 <= shard_id < self.n_shards:
            raise ValueError(f"shard_id {shard_id} out of range for {self.n_shards} shards")
        if self._closed:
            raise RuntimeError("FanInSink is closed")

    def _release(self, new_min: float = -math.inf) -> None:
        """Emit every buffered estimate below the global watermark threshold.

        ``new_min`` is the smallest ``window_start`` among the items the
        caller just buffered (``+inf`` for none; the default ``-inf`` forces
        a scan).  When the threshold has not moved since the last scan and
        every new item sits at or above it, the scan is provably a no-op --
        surviving items were already checked, and a shard's new batch is
        bounded below by its previously reported watermark, itself >= the
        unchanged global minimum -- so it is skipped.  That makes
        :meth:`accept` O(batch) instead of O(buffered) in the steady state,
        which matters now that the zero-pickle return path calls it once per
        decoded tick batch.  A watermark-violating source (items *below* the
        threshold) still releases immediately, exactly as before.
        """
        obs = self.obs
        started = perf_counter() if obs is not None else 0.0
        threshold = min(self._watermarks)
        if self._fences:
            fence = min(self._fences.values())
            if fence < threshold:
                threshold = fence
        if threshold == -math.inf:
            return
        if threshold == self._scanned_threshold and new_min >= threshold:
            return
        self._scanned_threshold = threshold
        ready: list[StreamEstimate] = []
        for buffer in self._buffers:
            kept: list[StreamEstimate] = []
            for item in buffer:
                if item.estimate.window_start < threshold:
                    ready.append(item)
                else:
                    kept.append(item)
            buffer[:] = kept
        if not ready:
            return
        ready.sort(key=_estimate_sort_key)
        if obs is None:
            for item in ready:
                for sink in self.sinks:
                    sink.emit(item)
        else:
            emit_started = perf_counter()
            for item in ready:
                for sink in self.sinks:
                    sink.emit(item)
            obs.time_stage("sink_emit", emit_started)
        self.records_released += len(ready)
        if obs is not None:
            obs.time_stage("fanin_release", started)
            obs.inc("qoe_fanin_released_total", len(ready))
