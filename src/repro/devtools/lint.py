"""The detlint CLI: ``python -m repro.devtools.lint [paths]``.

Exit codes follow the convention the CI job and the tier-1 self-clean test
rely on:

* ``0`` -- every checked file is clean (suppressed findings do not count);
* ``1`` -- at least one finding;
* ``2`` -- usage error (unknown rule in ``--select``, missing path, bad
  flag): the lint did not meaningfully run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Keep the rule registry populated however this module is reached
# (``python -m repro.devtools.lint`` imports it without the package
# ``__init__`` having registered anything yet).
import repro.devtools.rules  # noqa: F401
from repro.devtools.framework import all_rules, lint_paths
from repro.devtools.report import render_json, render_rule_table, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="detlint: the repro invariant linter",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run on every file, ignoring rule path scopes",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; preserve both.
        return int(exc.code or 0)

    if args.list_rules:
        print(render_rule_table())
        return 0

    select: tuple[str, ...] | None = None
    if args.select is not None:
        select = tuple(name.strip() for name in args.select.split(",") if name.strip())
        known = {rule.id for rule in all_rules()}
        unknown = [name for name in select if name not in known]
        if unknown:
            print(f"error: unknown rule(s) in --select: {', '.join(unknown)}", file=sys.stderr)
            return 2
        if not select:
            print("error: --select given but names no rules", file=sys.stderr)
            return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    result = lint_paths(args.paths, select=select)
    report = render_json(result) if args.format == "json" else render_text(result)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
