"""Ground-truth QoE statistics (the ``webrtc-internals`` substitute).

Chrome's ``webrtc-internals`` page reports receiver-side statistics once per
second; the paper uses four of them as ground truth: frames received per
second, video bytes received per second (bitrate), frame height (resolution)
and the inter-frame jitter of decoded frames.  :class:`GroundTruthLog` holds
the same per-second rows for a simulated call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PerSecondStats", "GroundTruthLog"]


@dataclass(frozen=True)
class PerSecondStats:
    """One per-second row of the ground-truth log."""

    second: int
    frames_received: float
    bitrate_kbps: float
    frame_jitter_ms: float
    frame_height: int

    def __post_init__(self) -> None:
        if self.second < 0:
            raise ValueError("second must be non-negative")
        if self.frames_received < 0:
            raise ValueError("frames_received must be non-negative")
        if self.bitrate_kbps < 0:
            raise ValueError("bitrate_kbps must be non-negative")
        if self.frame_jitter_ms < 0:
            raise ValueError("frame_jitter_ms must be non-negative")


@dataclass
class GroundTruthLog:
    """Per-second ground-truth QoE for one call."""

    vca: str
    call_id: str
    start_time: float = 0.0
    rows: list[PerSecondStats] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def append(self, row: PerSecondStats) -> None:
        if self.rows and row.second <= self.rows[-1].second:
            raise ValueError(
                f"per-second rows must be appended in order; got second {row.second} "
                f"after {self.rows[-1].second}"
            )
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    @property
    def duration(self) -> int:
        return len(self.rows)

    @property
    def seconds(self) -> np.ndarray:
        return np.array([row.second for row in self.rows], dtype=int)

    @property
    def frame_rates(self) -> np.ndarray:
        return np.array([row.frames_received for row in self.rows], dtype=float)

    @property
    def bitrates_kbps(self) -> np.ndarray:
        return np.array([row.bitrate_kbps for row in self.rows], dtype=float)

    @property
    def frame_jitters_ms(self) -> np.ndarray:
        return np.array([row.frame_jitter_ms for row in self.rows], dtype=float)

    @property
    def frame_heights(self) -> np.ndarray:
        return np.array([row.frame_height for row in self.rows], dtype=int)

    def row_for_second(self, second: int) -> PerSecondStats | None:
        for row in self.rows:
            if row.second == second:
                return row
        return None

    def metric(self, name: str) -> np.ndarray:
        """Ground-truth series by metric name ("frame_rate", "bitrate",
        "frame_jitter", "resolution")."""
        if name == "frame_rate":
            return self.frame_rates
        if name == "bitrate":
            return self.bitrates_kbps
        if name == "frame_jitter":
            return self.frame_jitters_ms
        if name == "resolution":
            return self.frame_heights.astype(float)
        raise ValueError(f"unknown metric: {name!r}")

    def aggregate(self, window: int) -> "GroundTruthLog":
        """Re-aggregate the per-second log over ``window``-second windows.

        Frame rate and bitrate become per-second averages over the window,
        frame jitter the mean of the per-second jitters, and resolution the
        most frequent height -- this is how Figure 12 varies the prediction
        window size.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        if window == 1:
            return self
        aggregated = GroundTruthLog(
            vca=self.vca, call_id=self.call_id, start_time=self.start_time, metadata=dict(self.metadata)
        )
        for start in range(0, len(self.rows) - window + 1, window):
            chunk = self.rows[start : start + window]
            heights = [row.frame_height for row in chunk]
            values, counts = np.unique(heights, return_counts=True)
            aggregated.append(
                PerSecondStats(
                    second=chunk[0].second // window,
                    frames_received=float(np.mean([row.frames_received for row in chunk])),
                    bitrate_kbps=float(np.mean([row.bitrate_kbps for row in chunk])),
                    frame_jitter_ms=float(np.mean([row.frame_jitter_ms for row in chunk])),
                    frame_height=int(values[np.argmax(counts)]),
                )
            )
        return aggregated
