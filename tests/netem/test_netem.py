"""Unit tests for the network emulation substrate."""

import numpy as np
import pytest

from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.netem.conditions import ConditionSchedule, NetworkCondition
from repro.netem.impairments import IMPAIRMENT_PROFILES, impairment_schedules
from repro.netem.link import EmulatedLink
from repro.netem.ndt import generate_ndt_corpus, generate_ndt_trace, schedule_from_ndt


def make_packets(n, size=1000, spacing=0.01, start=0.0):
    return [
        Packet(
            timestamp=start + i * spacing,
            ip=IPv4Header(src="1.1.1.1", dst="2.2.2.2"),
            udp=UDPHeader(src_port=1, dst_port=2),
            payload_size=size,
        )
        for i in range(n)
    ]


class TestNetworkCondition:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkCondition(throughput_kbps=0.0)
        with pytest.raises(ValueError):
            NetworkCondition(throughput_kbps=100.0, delay_ms=-1.0)
        with pytest.raises(ValueError):
            NetworkCondition(throughput_kbps=100.0, loss_rate=1.0)

    def test_bytes_per_second_conversion(self):
        condition = NetworkCondition(throughput_kbps=800.0)
        assert condition.throughput_bytes_per_second == pytest.approx(100_000.0)

    def test_scaled(self):
        condition = NetworkCondition(throughput_kbps=1000.0)
        assert condition.scaled(0.5).throughput_kbps == 500.0


class TestConditionSchedule:
    def test_constant_schedule_duration(self):
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=1000.0), 9.5)
        assert len(schedule) == 10
        assert schedule.duration == 10.0

    def test_at_clamps_to_bounds(self):
        conditions = [NetworkCondition(throughput_kbps=float(100 * (i + 1))) for i in range(3)]
        schedule = ConditionSchedule(conditions)
        assert schedule.at(-5.0).throughput_kbps == 100.0
        assert schedule.at(0.5).throughput_kbps == 100.0
        assert schedule.at(2.5).throughput_kbps == 300.0
        assert schedule.at(99.0).throughput_kbps == 300.0

    def test_repeated_to_cycles(self):
        schedule = ConditionSchedule([NetworkCondition(throughput_kbps=100.0), NetworkCondition(throughput_kbps=200.0)])
        extended = schedule.repeated_to(5.0)
        assert len(extended) == 5
        assert extended[4].throughput_kbps == 100.0

    def test_truncated(self):
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=100.0), 10.0)
        assert len(schedule.truncated(3.0)) == 3

    def test_concatenate_requires_matching_interval(self):
        a = ConditionSchedule([NetworkCondition(throughput_kbps=100.0)], interval=1.0)
        b = ConditionSchedule([NetworkCondition(throughput_kbps=200.0)], interval=2.0)
        with pytest.raises(ValueError):
            ConditionSchedule.concatenate([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConditionSchedule([])

    def test_means(self):
        schedule = ConditionSchedule(
            [
                NetworkCondition(throughput_kbps=1000.0, loss_rate=0.1, delay_ms=10.0),
                NetworkCondition(throughput_kbps=2000.0, loss_rate=0.3, delay_ms=30.0),
            ]
        )
        assert schedule.mean_throughput_kbps() == 1500.0
        assert schedule.mean_loss_rate() == pytest.approx(0.2)
        assert schedule.mean_delay_ms() == 20.0


class TestEmulatedLink:
    def test_no_impairment_delivers_everything_in_order(self):
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=10_000.0, delay_ms=10.0), 10)
        link = EmulatedLink(schedule, rng=np.random.default_rng(0))
        packets = make_packets(50)
        delivered, report = link.transmit(packets)
        assert report.delivered == 50
        assert report.dropped_loss == 0
        arrivals = [p.timestamp for p in delivered]
        assert arrivals == sorted(arrivals)
        # Every packet is delayed by at least the propagation delay.
        assert all(d.timestamp >= o.timestamp + 0.01 for d, o in zip(delivered, packets))

    def test_full_loss_rate_drops_most_packets(self):
        schedule = ConditionSchedule.constant(
            NetworkCondition(throughput_kbps=10_000.0, loss_rate=0.9), 10
        )
        link = EmulatedLink(schedule, rng=np.random.default_rng(1))
        _, report = link.transmit(make_packets(200))
        assert report.dropped_loss > 140

    def test_bottleneck_queue_drops_when_overloaded(self):
        # 100 kbps link, 1000-byte packets every 1 ms -> massively overloaded.
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=100.0), 10)
        link = EmulatedLink(schedule, max_queue_ms=100.0, rng=np.random.default_rng(2))
        _, report = link.transmit(make_packets(300, spacing=0.001))
        assert report.dropped_queue > 0
        assert report.delivered < 300

    def test_jitter_can_reorder_packets(self):
        schedule = ConditionSchedule.constant(
            NetworkCondition(throughput_kbps=50_000.0, delay_ms=20.0, jitter_ms=30.0), 10
        )
        link = EmulatedLink(schedule, rng=np.random.default_rng(3))
        packets = make_packets(200, spacing=0.002)
        delivered, _ = link.transmit(packets)
        # Delivered list is sorted by arrival; check that the original send
        # order (recoverable via object identity of sizes is not possible) --
        # instead check that some packet arrives before an earlier-sent one by
        # comparing arrival deltas to send deltas.
        send_index = {id(p): i for i, p in enumerate(packets)}
        assert len(delivered) > 100

    def test_loss_fraction_property(self):
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=10_000.0), 5)
        link = EmulatedLink(schedule, rng=np.random.default_rng(4))
        _, report = link.transmit(make_packets(10))
        assert report.loss_fraction == 0.0

    def test_reset_clears_queue_state(self):
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=200.0), 10)
        link = EmulatedLink(schedule, rng=np.random.default_rng(5))
        link.transmit(make_packets(100, spacing=0.001))
        link.reset()
        assert link._link_free_at == 0.0

    def test_invalid_queue_size(self):
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=100.0), 1)
        with pytest.raises(ValueError):
            EmulatedLink(schedule, max_queue_ms=0.0)


class TestNDT:
    def test_trace_respects_speed_cap(self, rng):
        trace = generate_ndt_trace(rng, duration_s=10, max_speed_kbps=10_000.0)
        assert len(trace.samples) == 10
        assert all(s.throughput_kbps <= 10_000.0 for s in trace.samples)
        assert all(s.rtt_ms > 0 for s in trace.samples)
        assert all(0.0 <= s.loss_rate <= 0.5 for s in trace.samples)

    def test_corpus_size_and_ids(self, rng):
        corpus = generate_ndt_corpus(7, rng=rng)
        assert len(corpus) == 7
        assert len({t.test_id for t in corpus}) == 7

    def test_schedule_from_ndt_covers_duration(self, rng):
        trace = generate_ndt_trace(rng)
        schedule = schedule_from_ndt(trace, duration_s=25.0, rng=rng)
        assert len(schedule) == 25
        assert all(c.throughput_kbps >= 100.0 for c in schedule)

    def test_invalid_durations(self, rng):
        with pytest.raises(ValueError):
            generate_ndt_trace(rng, duration_s=0)
        with pytest.raises(ValueError):
            generate_ndt_corpus(0, rng=rng)


class TestImpairments:
    def test_profiles_match_table_a6(self):
        assert set(IMPAIRMENT_PROFILES) == {
            "mean_throughput",
            "throughput_stdev",
            "mean_latency",
            "latency_stdev",
            "packet_loss",
        }
        assert IMPAIRMENT_PROFILES["packet_loss"].values == (1.0, 2.0, 5.0, 10.0, 15.0, 20.0)
        assert IMPAIRMENT_PROFILES["mean_throughput"].values == (100.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0)
        assert len(IMPAIRMENT_PROFILES["latency_stdev"].values) == 10

    def test_loss_profile_condition(self):
        profile = IMPAIRMENT_PROFILES["packet_loss"]
        condition = profile.condition_for(10.0)
        assert condition.loss_rate == pytest.approx(0.10)
        assert condition.throughput_kbps == 1500.0
        assert condition.delay_ms == 50.0

    def test_latency_profile_condition(self):
        condition = IMPAIRMENT_PROFILES["mean_latency"].condition_for(300.0)
        assert condition.delay_ms == 300.0

    def test_throughput_stdev_schedule_varies(self, rng):
        profile = IMPAIRMENT_PROFILES["throughput_stdev"]
        schedule = impairment_schedules(profile, 1000.0, duration_s=20.0, rng=rng)
        throughputs = [c.throughput_kbps for c in schedule]
        assert np.std(throughputs) > 100.0

    def test_constant_profile_schedule(self):
        profile = IMPAIRMENT_PROFILES["packet_loss"]
        schedule = impairment_schedules(profile, 5.0, duration_s=10.0)
        assert len(schedule) == 10
        assert all(c.loss_rate == pytest.approx(0.05) for c in schedule)
