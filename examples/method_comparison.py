"""Compare the paper's four estimation methods on a small in-lab dataset.

Reproduces the core of the paper's evaluation at toy scale: frame rate,
bitrate and frame jitter errors for RTP ML, IP/UDP ML, RTP Heuristic and
IP/UDP Heuristic, plus the IP/UDP ML feature importances.

Run with:  python examples/method_comparison.py [vca]
"""

from __future__ import annotations

import sys

from repro import LabDatasetConfig, build_lab_dataset
from repro.analysis.reporting import format_feature_importances, format_method_comparison
from repro.core.evaluation import EvaluationDataset, compare_methods, feature_importance_report


def main(vca: str = "teams") -> None:
    print(f"Simulating a small in-lab dataset for {vca} ...")
    lab = build_lab_dataset(LabDatasetConfig(calls_per_vca=5, call_duration_s=20, vcas=(vca,), seed=11))
    dataset = EvaluationDataset.from_calls(lab[vca])
    print(f"{dataset.n_windows} one-second prediction windows\n")

    for metric in ("frame_rate", "bitrate", "frame_jitter"):
        results = compare_methods(dataset, metric, n_estimators=15)
        print(format_method_comparison(results, metric, title=f"{metric} errors ({vca}, 5-fold CV)"))
        print()

    top = feature_importance_report(dataset, "ipudp_ml", "frame_rate", k=5, n_estimators=15)
    print(format_feature_importances(top, title=f"IP/UDP ML top-5 features for frame rate ({vca})"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "teams")
