"""Estimate sinks: the pluggable output side of a monitor.

A *sink* consumes :class:`~repro.core.streaming.StreamEstimate` objects as
the engine emits them -- one call per closed window per flow, in emission
order.  The protocol is two methods:

* ``emit(item)`` -- handle one estimate;
* ``close()`` -- end of stream: flush buffers, close files.  Must be
  idempotent; emitting after close is undefined.

Sinks must be O(1)-ish per estimate so the monitor's end-to-end memory bound
(O(window) per live flow) survives the output side.  File sinks stream to
disk, the summary sinks keep rolling aggregates; only
:class:`CollectorSink` -- meant for tests and small offline runs -- retains
everything.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.pipeline import PipelineEstimate
from repro.core.streaming import StreamEstimate

__all__ = ["EstimateSink", "CollectorSink", "flow_as_dict", "estimate_as_dict"]


class EstimateSink:
    """Base class for estimate consumers.

    Subclasses implement ``emit`` and (when they hold resources or final
    state) override ``close``.  The base supplies context-manager support --
    ``with SummarySink(...) as sink: ...`` closes the sink on exit -- so
    every sink, not just the file-backed ones, can scope its lifetime to a
    ``with`` block.

    The consumer contract itself stays structural: the monitor only ever
    calls ``emit``/``close``, so any duck-typed object with those two methods
    works as a sink without subclassing.  Subclassing buys the context
    manager and marks intent.
    """

    def emit(self, item: StreamEstimate) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """End of stream; must be idempotent.  Default: nothing to release."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def flow_as_dict(item: StreamEstimate) -> dict:
    """The flow 5-tuple of an estimate as plain columns (``None`` -> nulls)."""
    flow = item.flow
    if flow is None:
        return {"src": None, "src_port": None, "dst": None, "dst_port": None, "protocol": None}
    return {
        "src": flow.src,
        "src_port": flow.src_port,
        "dst": flow.dst,
        "dst_port": flow.dst_port,
        "protocol": flow.protocol,
    }


def estimate_as_dict(item: StreamEstimate) -> dict:
    """One estimate as a flat, JSON/CSV-friendly record (flow + metrics)."""
    estimate = item.estimate
    return {
        **flow_as_dict(item),
        "window_start": estimate.window_start,
        "frame_rate": estimate.frame_rate,
        "bitrate_kbps": estimate.bitrate_kbps,
        "frame_jitter_ms": estimate.frame_jitter_ms,
        "resolution": estimate.resolution,
        "source": estimate.source,
    }


class CollectorSink(EstimateSink):
    """Retain every estimate in memory (tests, small offline runs).

    ``items`` holds the :class:`~repro.core.streaming.StreamEstimate`
    objects in emission order; :attr:`estimates` strips the flow tags,
    which makes comparing against ``QoEPipeline.estimate`` a one-liner.
    """

    def __init__(self) -> None:
        self.items: list[StreamEstimate] = []
        self.closed = False

    def emit(self, item: StreamEstimate) -> None:
        self.items.append(item)

    def close(self) -> None:
        self.closed = True

    @property
    def estimates(self) -> list[PipelineEstimate]:
        """The bare per-window estimates, in emission order."""
        return [item.estimate for item in self.items]

    def for_flow(self, flow) -> list[PipelineEstimate]:
        """Estimates belonging to one flow key (or ``None`` in single-flow mode)."""
        return [item.estimate for item in self.items if item.flow == flow]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[StreamEstimate]:
        return iter(self.items)
