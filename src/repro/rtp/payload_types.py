"""Per-VCA RTP payload type maps.

The paper observes different payload type numbers in the lab and in the
real-world deployment (Section 5.2): in the lab Teams used PT 111 (audio),
102 (video), 103 (video retransmission), while in the real-world data Teams
used 100 (video) and 101 (retransmission), and Webex used 100 for video with
no retransmission stream.  The simulator reproduces both variants so the RTP
baselines must handle the remapping exactly as the paper's methodology does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.media import MediaType

__all__ = ["PayloadTypeMap", "LAB_PAYLOAD_TYPES", "REAL_WORLD_PAYLOAD_TYPES"]


@dataclass(frozen=True)
class PayloadTypeMap:
    """Mapping between RTP payload type numbers and media types for one VCA."""

    audio: int
    video: int
    video_rtx: int | None = None
    extra: dict[int, MediaType] = field(default_factory=dict)

    def media_type(self, payload_type: int) -> MediaType | None:
        """Media type for ``payload_type``, or ``None`` if unknown."""
        if payload_type == self.audio:
            return MediaType.AUDIO
        if payload_type == self.video:
            return MediaType.VIDEO
        if self.video_rtx is not None and payload_type == self.video_rtx:
            return MediaType.VIDEO_RTX
        return self.extra.get(payload_type)

    def payload_type(self, media: MediaType) -> int | None:
        """Payload type number for ``media``, or ``None`` if the VCA has no such stream."""
        if media is MediaType.AUDIO:
            return self.audio
        if media is MediaType.VIDEO:
            return self.video
        if media is MediaType.VIDEO_RTX:
            return self.video_rtx
        return None

    @property
    def video_types(self) -> set[int]:
        """Payload types that carry video or video retransmissions."""
        types = {self.video}
        if self.video_rtx is not None:
            types.add(self.video_rtx)
        return types


#: Payload types observed in the in-lab dataset (Section 3.1).
LAB_PAYLOAD_TYPES: dict[str, PayloadTypeMap] = {
    "meet": PayloadTypeMap(audio=111, video=96, video_rtx=97),
    "teams": PayloadTypeMap(audio=111, video=102, video_rtx=103),
    "webex": PayloadTypeMap(audio=111, video=102, video_rtx=103),
}

#: Payload types observed in the real-world dataset (Section 5.2).
REAL_WORLD_PAYLOAD_TYPES: dict[str, PayloadTypeMap] = {
    "meet": PayloadTypeMap(audio=111, video=96, video_rtx=97),
    "teams": PayloadTypeMap(audio=111, video=100, video_rtx=101),
    "webex": PayloadTypeMap(audio=111, video=100, video_rtx=None),
}
