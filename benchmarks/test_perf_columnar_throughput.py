"""Throughput benchmark: columnar block path vs per-packet streaming push.

Measures packets/second of QoE estimation over a synthetic many-flow vantage
trace, comparing -- for both the heuristic and a trained pipeline --

* the **per-packet push path** (the PR 1 engine loop tracked in
  ``BENCH_streaming.json``): one ``StreamingQoEPipeline.push`` per packet;
* the **columnar block path** (this PR): ``TraceSource``-style array slices
  fed through ``StreamingQoEPipeline.push_block`` -- vectorized flow-code
  demux, array accumulator updates, tick-batched inference.

It also measures the cluster wire format: pickling one routed chunk as a
``Packet`` list (the PR 3 transport) vs as a ``PacketBlock`` (array
buffers), which is where ``BENCH_sharded.json``'s serialization collapse
came from.

The result is written to ``benchmarks/results/BENCH_columnar.json``.  The
acceptance floors are **>= 2x packets/sec for the trained pipeline** (the
paper's deployment mode) and **>= 2.5x for the heuristic pipeline**: with
the vectorized frame assembler (``FrameAssembler.push_rows``) the block
path assigns whole sorted runs to frames with array operations and
constructs zero ``Packet`` objects, so Algorithm 1 is no longer a
per-packet bottleneck.  Outputs are bit-identical between the paths (pinned
by ``tests/core/test_push_block.py``), so these numbers compare equal work.
"""

from __future__ import annotations

import json
import os
import pickle
from time import perf_counter

import numpy as np
import pytest

from conftest import RESULTS_DIR, enforced_floor, save_artifact
from repro.core.estimators import IPUDPMLEstimator
from repro.core.pipeline import QoEPipeline
from repro.core.streaming import StreamingQoEPipeline
from repro.net.block import PacketBlock
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.trace import PacketTrace

_SMOKE = "BENCH_SMOKE_DURATION_S" in os.environ
TRACE_DURATION_S = float(os.environ.get("BENCH_SMOKE_DURATION_S", 60.0))
N_FLOWS = 8
BLOCK_SIZE = 1024
#: Trained block path must beat per-packet push by this factor (the ISSUE 4
#: acceptance bar); smoke runs only assert it is not slower.
TRAINED_SPEEDUP_FLOOR = float(os.environ.get("BENCH_COLUMNAR_MIN_SPEEDUP", "1.0" if _SMOKE else "2.0"))
#: With the vectorized assembler the heuristic block path is array-native
#: end to end; it must clearly beat per-packet push on real hardware.
HEURISTIC_SPEEDUP_FLOOR = (
    1.0 if _SMOKE else enforced_floor("BENCH_COLUMNAR_MIN_HEURISTIC_SPEEDUP", 2.5)
)
_ARTIFACT_NAME = "BENCH_columnar_smoke" if _SMOKE else "BENCH_columnar"

_measured: dict[str, float] = {}
_counts: dict[str, int] = {}


def _synthetic_session(seed: int, client_ip: str, client_port: int) -> list[Packet]:
    """One VCA-like downlink flow: ~25 fps fragmented video bursts."""
    rng = np.random.default_rng(seed)
    ip = IPv4Header(src="192.0.2.10", dst=client_ip)
    udp = UDPHeader(src_port=3478, dst_port=client_port)
    packets: list[Packet] = []
    t = float(rng.uniform(0.0, 0.02))
    while t < TRACE_DURATION_S:
        size = int(rng.integers(700, 1200))
        for i in range(int(rng.integers(2, 5))):
            packets.append(Packet(timestamp=t + i * 0.0008, ip=ip, udp=udp, payload_size=size))
        t += float(rng.normal(0.04, 0.004))
    return packets


def _trained_pipeline() -> QoEPipeline:
    """A deterministically-trained stack (same recipe as tests/cluster)."""
    pipeline = QoEPipeline.for_vca("teams")
    pipeline.ml = IPUDPMLEstimator.for_profile(pipeline.profile, n_estimators=8, max_depth=6)
    rng = np.random.default_rng(0)
    X = rng.uniform(0.0, 1500.0, size=(80, len(pipeline.ml.feature_names)))
    pipeline.ml.fit(
        X,
        {
            "frame_rate": rng.uniform(5.0, 30.0, 80),
            "bitrate": rng.uniform(100.0, 2000.0, 80),
            "frame_jitter": rng.uniform(0.0, 50.0, 80),
            "resolution": rng.choice(["low", "medium", "high"], 80),
        },
    )
    pipeline._trained = True
    return pipeline


@pytest.fixture(scope="module")
def vantage_trace() -> PacketTrace:
    """N_FLOWS interleaved sessions, as one capture point would see them."""
    flows = [
        _synthetic_session(seed, f"10.0.0.{seed + 1}", 50000 + seed) for seed in range(N_FLOWS)
    ]
    trace = PacketTrace([p for flow in flows for p in flow])
    trace.block  # noqa: B018 -- builds the columnar cache outside the timed regions
    return trace


@pytest.fixture(scope="module")
def trained_pipeline() -> QoEPipeline:
    return _trained_pipeline()


def _run_per_packet(pipeline: QoEPipeline, trace: PacketTrace) -> int:
    engine = StreamingQoEPipeline(pipeline)
    count = sum(1 for packet in trace for _ in engine.push(packet))
    return count + len(engine.flush())


def _run_blocks(pipeline: QoEPipeline, trace: PacketTrace) -> int:
    engine = StreamingQoEPipeline(pipeline)
    block = trace.block
    count = 0
    for lo in range(0, len(block), BLOCK_SIZE):
        count += len(engine.push_block(block[lo : lo + BLOCK_SIZE]))
    return count + len(engine.flush())


def test_benchmark_heuristic_per_packet(benchmark, vantage_trace):
    n = benchmark.pedantic(_run_per_packet, args=(QoEPipeline.for_vca("teams"), vantage_trace), rounds=5, iterations=1, warmup_rounds=1)
    _counts["heuristic_push"] = n
    if benchmark.stats is not None:
        _measured["heuristic_push_s"] = float(benchmark.stats.stats.min)


def test_benchmark_heuristic_blocks(benchmark, vantage_trace):
    n = benchmark.pedantic(_run_blocks, args=(QoEPipeline.for_vca("teams"), vantage_trace), rounds=5, iterations=1, warmup_rounds=1)
    _counts["heuristic_block"] = n
    if benchmark.stats is not None:
        _measured["heuristic_block_s"] = float(benchmark.stats.stats.min)


def test_benchmark_trained_per_packet(benchmark, vantage_trace, trained_pipeline):
    n = benchmark.pedantic(_run_per_packet, args=(trained_pipeline, vantage_trace), rounds=5, iterations=1, warmup_rounds=1)
    _counts["trained_push"] = n
    if benchmark.stats is not None:
        _measured["trained_push_s"] = float(benchmark.stats.stats.min)


def test_benchmark_trained_blocks(benchmark, vantage_trace, trained_pipeline):
    n = benchmark.pedantic(_run_blocks, args=(trained_pipeline, vantage_trace), rounds=5, iterations=1, warmup_rounds=1)
    _counts["trained_block"] = n
    if benchmark.stats is not None:
        _measured["trained_block_s"] = float(benchmark.stats.stats.min)


def _wire_roundtrip_s(payload, rounds: int = 50) -> float:
    started = perf_counter()
    for _ in range(rounds):
        pickle.loads(pickle.dumps(payload))
    return (perf_counter() - started) / rounds


def test_columnar_speedup_and_artifact(vantage_trace):
    needed = {"heuristic_push_s", "heuristic_block_s", "trained_push_s", "trained_block_s"}
    if not needed <= _measured.keys():
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    # Both paths saw the same work and emitted every estimate.
    assert _counts["heuristic_push"] == _counts["heuristic_block"]
    assert _counts["trained_push"] == _counts["trained_block"]

    n_packets = len(vantage_trace)
    pps = {name: n_packets / seconds for name, seconds in _measured.items()}
    heuristic_speedup = pps["heuristic_block_s"] / pps["heuristic_push_s"]
    trained_speedup = pps["trained_block_s"] / pps["trained_push_s"]

    # Wire format: one routed 1024-packet chunk, list-of-Packet vs block.
    chunk = vantage_trace.packets[:BLOCK_SIZE]
    wire_block = PacketBlock.from_packets(chunk, keep_packets=False)
    list_roundtrip_s = _wire_roundtrip_s(chunk)
    block_roundtrip_s = _wire_roundtrip_s(wire_block)

    payload = {
        "benchmark": "columnar_throughput",
        "trace": {
            "duration_s": TRACE_DURATION_S,
            "n_packets": n_packets,
            "n_flows": N_FLOWS,
        },
        "block_size": BLOCK_SIZE,
        "heuristic_per_packet_pps": round(pps["heuristic_push_s"], 1),
        "heuristic_block_pps": round(pps["heuristic_block_s"], 1),
        "heuristic_speedup": round(heuristic_speedup, 2),
        "heuristic_speedup_floor": HEURISTIC_SPEEDUP_FLOOR,
        "trained_per_packet_pps": round(pps["trained_push_s"], 1),
        "trained_block_pps": round(pps["trained_block_s"], 1),
        "trained_speedup": round(trained_speedup, 2),
        "trained_speedup_floor": TRAINED_SPEEDUP_FLOOR,
        "wire_chunk_packets": len(chunk),
        "wire_packet_list_roundtrip_ms": round(list_roundtrip_s * 1e3, 3),
        "wire_block_roundtrip_ms": round(block_roundtrip_s * 1e3, 3),
        "wire_speedup": round(list_roundtrip_s / block_roundtrip_s, 1),
        "wire_packet_list_bytes": len(pickle.dumps(chunk)),
        "wire_block_bytes": len(pickle.dumps(wire_block)),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{_ARTIFACT_NAME}.json").write_text(json.dumps(payload, indent=2) + "\n")
    save_artifact(
        _ARTIFACT_NAME,
        "\n".join(
            [
                f"Columnar block path vs per-packet push ({TRACE_DURATION_S:.0f}s, {N_FLOWS}-flow synthetic trace)",
                f"  packets:                    {n_packets}",
                f"  heuristic per-packet:       {pps['heuristic_push_s']:12.0f} packets/s",
                f"  heuristic blocks:           {pps['heuristic_block_s']:12.0f} packets/s  ({heuristic_speedup:.2f}x, floor {HEURISTIC_SPEEDUP_FLOOR}x)",
                f"  trained per-packet:         {pps['trained_push_s']:12.0f} packets/s",
                f"  trained blocks:             {pps['trained_block_s']:12.0f} packets/s  ({trained_speedup:.2f}x, floor {TRAINED_SPEEDUP_FLOOR}x)",
                f"  wire roundtrip (1024 pkts): {list_roundtrip_s * 1e3:8.2f} ms as Packet list",
                f"                              {block_roundtrip_s * 1e3:8.2f} ms as PacketBlock ({list_roundtrip_s / block_roundtrip_s:.0f}x)",
            ]
        ),
    )
    assert trained_speedup >= TRAINED_SPEEDUP_FLOOR, (
        f"trained block path only {trained_speedup:.2f}x the per-packet push "
        f"(floor {TRAINED_SPEEDUP_FLOOR}x)"
    )
    assert heuristic_speedup >= HEURISTIC_SPEEDUP_FLOOR, (
        f"heuristic block path only {heuristic_speedup:.2f}x the per-packet push "
        f"(floor {HEURISTIC_SPEEDUP_FLOOR}x)"
    )
    assert block_roundtrip_s < list_roundtrip_s, "block wire format slower than pickling packets"
