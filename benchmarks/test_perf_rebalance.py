"""Elastic-sharding benchmark: epoch-routing overhead + migration latency.

Two questions, one artifact (``benchmarks/results/BENCH_rebalance.json``):

* **Steady-state routing overhead.**  With ``rebalance=None`` every flow
  lookup still passes through the epoch-aware
  :meth:`~repro.cluster.router.FlowShardRouter.shard_of_key` (one falsy
  overlay check before the memoized CRC-32 map).  Packets/second of a
  2-worker run is compared against the pre-PR static map -- simulated by
  binding ``shard_of_key`` straight to ``base_shard_of_key`` on the
  router instance, which is byte-for-byte the old lookup.  The epoch-routed
  configuration must reach ``MIN_RATIO`` of the static-map throughput
  (default floor: 0.95, i.e. at most a 5% regression).

* **Migration latency.**  A skewed trace (three of four flows hash to one
  shard at ``n_workers=2``) run under a :class:`ScheduledRebalancer` that
  re-homes the first hot flow three times.  Each stop-and-copy cut's wall
  time -- drain request to restored-and-unfenced -- is read back from
  ``monitor.migrations[*]["latency_s"]`` and reported as mean/max.  This
  leg uses the ``"shm"`` transport (the deployment the latency number is
  for) and self-skips where shared memory is unavailable; the artifact
  then records ``null`` migration stats.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from conftest import RESULTS_DIR, enforced_floor, save_artifact
from repro import CollectorSink, IteratorSource, QoEPipeline, ShardedQoEMonitor
from repro.cluster.rebalance import ScheduledRebalancer
from repro.cluster.shm import shm_available
from repro.net.flows import FlowKey
from repro.net.packet import IPv4Header, Packet, UDPHeader

_SMOKE = "BENCH_SMOKE_DURATION_S" in os.environ
TRACE_DURATION_S = float(os.environ.get("BENCH_SMOKE_DURATION_S", 60.0))
N_WORKERS = 2
_CPUS = os.cpu_count() or 1
#: Epoch-routed pps must reach this fraction of the static-map pps: the
#: overlay branch may cost at most 5% of routing throughput.  The JSON
#: artifact records exactly this (enforced) value.
MIN_RATIO = enforced_floor("BENCH_REBALANCE_MIN_RATIO", 0.95)
_ARTIFACT_NAME = "BENCH_rebalance_smoke" if _SMOKE else "BENCH_rebalance"

#: Four flows whose canonical 5-tuples hash 3-vs-1 at two shards -- the
#: skew that makes migrating the first flow a genuine rebalance.
SKEWED_KEYS = [
    FlowKey(src="192.0.2.10", src_port=3478, dst=f"10.0.0.{i}", dst_port=50000 + i)
    for i in range(1, 5)
]

_measured: dict[str, float] = {}
_counts: dict[str, int] = {}
_migrations: list[dict] = []


def _synthetic_session(seed: int, client_ip: str, client_port: int) -> list[Packet]:
    """One VCA-like downlink flow: ~25 fps fragmented video bursts."""
    rng = np.random.default_rng(seed)
    ip = IPv4Header(src="192.0.2.10", dst=client_ip)
    udp = UDPHeader(src_port=3478, dst_port=client_port)
    packets: list[Packet] = []
    t = float(rng.uniform(0.0, 0.02))
    while t < TRACE_DURATION_S:
        size = int(rng.integers(700, 1200))
        for i in range(int(rng.integers(2, 5))):
            packets.append(Packet(timestamp=t + i * 0.0008, ip=ip, udp=udp, payload_size=size))
        t += float(rng.normal(0.04, 0.004))
    return packets


@pytest.fixture(scope="module")
def skewed_trace() -> list[Packet]:
    """The four SKEWED_KEYS sessions interleaved in timestamp order."""
    flows = [
        _synthetic_session(i, key.dst, key.dst_port)
        for i, key in enumerate(SKEWED_KEYS, start=1)
    ]
    return sorted((p for flow in flows for p in flow), key=lambda p: p.timestamp)


def _monitor(packets: list[Packet], **kwargs) -> tuple[ShardedQoEMonitor, CollectorSink]:
    sink = CollectorSink()
    monitor = ShardedQoEMonitor(
        QoEPipeline.for_vca("teams"),
        IteratorSource(iter(packets)),
        sinks=sink,
        n_workers=N_WORKERS,
        **kwargs,
    )
    return monitor, sink


def _run_static_map(packets: list[Packet]) -> int:
    monitor, _ = _monitor(packets)
    # Pre-PR lookup: bypass the epoch overlay entirely.  ``partition_block``
    # resolves ``self.shard_of_key`` per unique flow, so shadowing it with
    # the memoized base map reproduces the old routing hot path exactly.
    monitor.router.shard_of_key = monitor.router.base_shard_of_key
    report = monitor.run()
    return report.n_estimates


def _run_epoch_routed(packets: list[Packet]) -> int:
    monitor, _ = _monitor(packets)  # rebalance=None: overlay branch, no policy
    report = monitor.run()
    return report.n_estimates


def _run_forced_migrations(packets: list[Packet]) -> int:
    # Re-home the first hot flow three times (away, back, away again), at
    # fixed fractions of the trace so the schedule scales with smoke runs.
    schedule = [
        (TRACE_DURATION_S * 0.25, SKEWED_KEYS[0], 1),
        (TRACE_DURATION_S * 0.50, SKEWED_KEYS[0], 0),
        (TRACE_DURATION_S * 0.75, SKEWED_KEYS[0], 1),
    ]
    monitor, _ = _monitor(
        packets,
        transport="shm",
        rebalance=ScheduledRebalancer(schedule, interval_s=0.5),
    )
    report = monitor.run()
    _migrations[:] = monitor.migrations
    return report.n_estimates


def test_benchmark_static_map_routing(benchmark, skewed_trace):
    n_estimates = benchmark.pedantic(
        _run_static_map, args=(skewed_trace,), rounds=2, iterations=1
    )
    _counts["static_map"] = n_estimates
    if benchmark.stats is not None:
        _measured["static_map_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_epoch_routed(benchmark, skewed_trace):
    n_estimates = benchmark.pedantic(
        _run_epoch_routed, args=(skewed_trace,), rounds=2, iterations=1
    )
    _counts["epoch_routed"] = n_estimates
    if benchmark.stats is not None:
        _measured["epoch_routed_s"] = float(benchmark.stats.stats.mean)


@pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable on this platform"
)
def test_benchmark_forced_migrations(benchmark, skewed_trace):
    n_estimates = benchmark.pedantic(
        _run_forced_migrations, args=(skewed_trace,), rounds=2, iterations=1
    )
    _counts["migrated"] = n_estimates
    # The schedule's three cuts all executed, each with a measured wall time.
    assert len(_migrations) == 3
    assert all(m["latency_s"] > 0.0 for m in _migrations)
    if benchmark.stats is not None:
        _measured["migrated_s"] = float(benchmark.stats.stats.mean)


def test_rebalance_overhead_and_artifact(skewed_trace):
    needed = {"static_map_s", "epoch_routed_s"}
    if not needed <= _measured.keys():
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    # Both routing configurations saw the same trace and emitted everything.
    assert _counts["static_map"] == _counts["epoch_routed"]
    if "migrated" in _counts:
        # ...and so did the run that migrated a flow three times mid-stream.
        assert _counts["migrated"] == _counts["static_map"]

    n_packets = len(skewed_trace)
    static_pps = n_packets / _measured["static_map_s"]
    epoch_pps = n_packets / _measured["epoch_routed_s"]
    ratio = epoch_pps / static_pps

    migration_stats = None
    if _migrations:
        latencies_ms = [m["latency_s"] * 1e3 for m in _migrations]
        migration_stats = {
            "transport": "shm",
            "n_migrations": len(latencies_ms),
            "mean_latency_ms": round(sum(latencies_ms) / len(latencies_ms), 2),
            "max_latency_ms": round(max(latencies_ms), 2),
        }

    payload = {
        "benchmark": "rebalance_overhead",
        "trace": {
            "duration_s": TRACE_DURATION_S,
            "n_packets": n_packets,
            "n_flows": len(SKEWED_KEYS),
        },
        "cpu_count": _CPUS,
        "n_workers": N_WORKERS,
        "static_map_packets_per_s": round(static_pps, 1),
        "epoch_routed_packets_per_s": round(epoch_pps, 1),
        "epoch_vs_static_ratio": round(ratio, 3),
        "min_ratio_floor": MIN_RATIO,
        "forced_migrations": migration_stats,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{_ARTIFACT_NAME}.json").write_text(json.dumps(payload, indent=2) + "\n")
    lines = [
        f"Elastic sharding overhead ({TRACE_DURATION_S:.0f}s skewed 4-flow trace, "
        f"{N_WORKERS} workers, {_CPUS} CPUs)",
        f"  packets:               {n_packets}",
        f"  static CRC-32 map:     {static_pps:12.0f} packets/s",
        f"  epoch-routed (idle):   {epoch_pps:12.0f} packets/s",
        f"  epoch/static ratio:    {ratio:12.3f}   (floor: {MIN_RATIO})",
    ]
    if migration_stats is not None:
        lines.append(
            f"  migration latency:     {migration_stats['mean_latency_ms']:9.2f} ms mean, "
            f"{migration_stats['max_latency_ms']:.2f} ms max "
            f"({migration_stats['n_migrations']} forced cuts, shm transport)"
        )
    save_artifact(_ARTIFACT_NAME, "\n".join(lines))
    assert static_pps > 0 and epoch_pps > 0
    assert ratio >= MIN_RATIO, (
        f"epoch-aware routing reached only {ratio:.3f}x the static-map throughput "
        f"(floor {MIN_RATIO}x on {_CPUS} CPUs)"
    )
