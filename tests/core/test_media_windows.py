"""Unit tests for media classification and windowing."""

import numpy as np
import pytest

from repro.core.media import MediaClassifier
from repro.core.windows import match_windows_to_ground_truth, window_trace
from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader
from repro.net.trace import PacketTrace


def make_packet(timestamp, size, media=None):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="1.1.1.1", dst="2.2.2.2"),
        udp=UDPHeader(src_port=1, dst_port=2),
        payload_size=size,
        media_type=media,
    )


class TestMediaClassifier:
    def test_threshold_separates_sizes(self):
        classifier = MediaClassifier(video_size_threshold=450)
        assert classifier.is_video(make_packet(0.0, 1000))
        assert not classifier.is_video(make_packet(0.0, 200))

    def test_keepalive_size_excluded_despite_threshold(self):
        classifier = MediaClassifier(video_size_threshold=300, keepalive_size=304)
        assert not classifier.is_video(make_packet(0.0, 304))
        assert classifier.is_video(make_packet(0.0, 305))

    def test_keepalive_filter_can_be_disabled(self):
        classifier = MediaClassifier(video_size_threshold=300, keepalive_size=None)
        assert classifier.is_video(make_packet(0.0, 304))

    def test_split(self):
        classifier = MediaClassifier()
        trace = PacketTrace([make_packet(0.0, 1000), make_packet(1.0, 150)])
        video, non_video = classifier.split(trace)
        assert len(video) == 1 and len(non_video) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            MediaClassifier(video_size_threshold=0)

    def test_evaluation_on_simulated_call_matches_paper_shape(self, teams_call):
        """Video recall should be ~100% and non-video recall ~98% (Table 2)."""
        report = MediaClassifier().evaluate(teams_call.trace)
        assert report.video_recall > 0.98
        assert report.nonvideo_recall > 0.90
        assert report.nonvideo_as_video > 0  # DTLS handshake false positives
        matrix = report.as_matrix()
        assert matrix.shape == (2, 2)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_calibrate_from_labelled_traces(self, teams_call):
        classifier = MediaClassifier.calibrate([teams_call.trace])
        audio_sizes = [p.payload_size for p in teams_call.trace if p.media_type is MediaType.AUDIO]
        assert classifier.video_size_threshold > max(audio_sizes) * 0.95

    def test_calibrate_without_audio_uses_default(self):
        classifier = MediaClassifier.calibrate([PacketTrace([make_packet(0.0, 1000)])])
        assert classifier.video_size_threshold == MediaClassifier().video_size_threshold

    def test_packets_without_ground_truth_skipped_in_evaluation(self):
        report = MediaClassifier().evaluate(PacketTrace([make_packet(0.0, 1000)]))
        assert report.total_video == 0 and report.total_nonvideo == 0
        assert report.video_recall == 0.0


class TestWindowing:
    def test_window_trace_aligned_to_start(self):
        trace = PacketTrace([make_packet(0.2, 100), make_packet(2.7, 100)])
        windows = window_trace(trace, window_s=1.0, start=0.0, end=3.0)
        assert len(windows) == 3
        assert windows[0].start == 0.0
        assert len(windows[0]) == 1
        assert len(windows[1]) == 0
        assert len(windows[2]) == 1

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            window_trace(PacketTrace([make_packet(0.0, 1)]), window_s=0.0)

    def test_matching_skips_leading_and_trailing_seconds(self, teams_call):
        matched = match_windows_to_ground_truth(teams_call.trace, teams_call.ground_truth, window_s=1)
        starts = [m.window.start for m in matched]
        assert min(starts) >= 2.0
        assert max(starts) <= teams_call.duration_s - 2
        assert len(matched) == teams_call.duration_s - 3

    def test_matching_rows_align_with_seconds(self, teams_call):
        matched = match_windows_to_ground_truth(teams_call.trace, teams_call.ground_truth, window_s=1)
        for sample in matched:
            assert sample.ground_truth.second == int(sample.window.start)

    def test_matching_with_larger_window(self, teams_call):
        matched = match_windows_to_ground_truth(teams_call.trace, teams_call.ground_truth, window_s=5)
        assert matched, "expected at least one 5-second window"
        for sample in matched:
            assert sample.window.duration == 5.0
            # Aggregated frame rate is a per-second average, so it stays in FPS range.
            assert 0.0 <= sample.ground_truth.frames_received <= 60.0

    def test_invalid_window(self, teams_call):
        with pytest.raises(ValueError):
            match_windows_to_ground_truth(teams_call.trace, teams_call.ground_truth, window_s=0)


class TestWindowDriftRegression:
    """``window_trace`` must not accumulate float error over long traces.

    The seed implementation advanced the window start with repeated
    ``t += window_s``; with a fractional window the accumulated round-off
    misaligns late windows with the ground-truth grid.  Starts must be exactly
    ``start + k * window_s``.
    """

    def test_long_trace_fractional_window_starts_exact(self):
        duration = 3600.0
        window_s = 0.1
        trace = PacketTrace([make_packet(0.05, 100), make_packet(duration - 0.05, 100)])
        windows = window_trace(trace, window_s=window_s, start=0.0)
        assert len(windows) == 36000
        # Exact float equality against index multiplication, including the
        # very last window where repeated addition drifts by ~1e-10.
        for k in (0, 1, 9999, 23456, 35999):
            assert windows[k].start == k * window_s

        drifted = 0.0
        for _ in range(36000):
            drifted += window_s
        assert drifted != 36000 * window_s, "sanity: repeated addition does drift"

    def test_fractional_window_assigns_boundary_packets_consistently(self):
        window_s = 0.2
        # Timestamps that land exactly on (float-imprecise) window boundaries.
        trace = PacketTrace([make_packet(k * window_s, 100) for k in range(50)])
        windows = window_trace(trace, window_s=window_s, start=0.0)
        assert sum(len(w) for w in windows) == 50 - 1  # last packet defines end
        for window in windows:
            for packet in window.packets:
                assert window.start <= packet.timestamp < window.start + window_s + 1e-12

    def test_iter_windows_matches_window_trace_grid(self):
        trace = PacketTrace([make_packet(0.05, 100), make_packet(599.95, 100)])
        starts = [t for t, _ in trace.iter_windows(0.3, start=0.0, end=600.0)]
        assert starts == [k * 0.3 for k in range(len(starts))]

    def test_boundary_frames_counted_exactly_once_on_fractional_grid(self):
        """A packet/frame ending exactly on a fractional window boundary must
        land in exactly one window, both in iter_windows and the heuristics."""
        from repro.core.frame_assembly import AssembledFrame
        from repro.core.heuristic import estimates_from_frames

        window_s = 0.3
        boundary = 6 * window_s  # 1.7999999999999998 != 1.5 + 0.3
        trace = PacketTrace([make_packet(t, 100) for t in (0.1, boundary, 2.5)])
        attributions = sum(len(w) for _, w in trace.iter_windows(window_s, start=0.0, end=3.0))
        assert attributions == 3, "each packet in exactly one window"

        frame = AssembledFrame(frame_index=0, packets=[make_packet(boundary, 1000)])
        counted = 0
        for k in range(12):
            t = k * window_s
            est = estimates_from_frames([frame], t, window_s, window_end=(k + 1) * window_s)
            counted += est.n_frames
        assert counted == 1, "boundary frame attributed to exactly one window"
