"""Linear models: ordinary least squares and ridge regression.

These are not used by the paper's headline results (random forests win) but
serve as sanity-check baselines in the ablation benchmarks and as cheap
regressors in tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearRegression", "RidgeRegression"]


class LinearRegression:
    """Ordinary least squares fitted via the normal equations (lstsq)."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError("X and y have inconsistent lengths")
        if self.fit_intercept:
            design = np.hstack([np.ones((len(X), 1)), X])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("LinearRegression is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return X @ self.coef_ + self.intercept_


class RidgeRegression:
    """L2-regularised least squares (closed form)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError("X and y have inconsistent lengths")

        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            x_centered = X - x_mean
            y_centered = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            x_centered = X
            y_centered = y

        n_features = X.shape[1]
        gram = x_centered.T @ x_centered + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, x_centered.T @ y_centered)
        self.intercept_ = y_mean - float(x_mean @ self.coef_) if self.fit_intercept else 0.0
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("RidgeRegression is not fitted; call fit() first")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return X @ self.coef_ + self.intercept_
