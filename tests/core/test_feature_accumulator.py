"""Incremental IP/UDP feature accumulators vs the batch extractor.

The streaming engine computes the 14 Table-1 features with
:class:`~repro.core.features.IPUDPFeatureAccumulator` (running counters plus a
per-window buffer for the exact percentile statistics).  These tests assert it
reproduces :func:`~repro.core.features.extract_ipudp_features` on the same
window for randomized traces.
"""

import numpy as np
import pytest

from repro.core.features import (
    IPUDP_FEATURE_NAMES,
    IPUDPFeatureAccumulator,
    extract_ipudp_features,
)
from repro.core.media import MediaClassifier
from repro.core.windows import window_trace
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.trace import PacketTrace


def make_packet(timestamp, size):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="1.1.1.1", dst="2.2.2.2"),
        udp=UDPHeader(src_port=1, dst_port=2),
        payload_size=size,
    )


def random_trace(rng, n_packets, duration):
    """Mixed audio/video/keep-alive sizes with bursty random arrivals."""
    timestamps = np.sort(rng.uniform(0.0, duration, size=n_packets))
    # Cluster some arrivals below the microburst threshold.
    timestamps[rng.random(n_packets) < 0.4] *= 0.999
    timestamps = np.sort(timestamps)
    sizes = rng.choice(
        [80, 120, 200, 304, 449, 450, 451, 700, 900, 901, 1100, 1200],
        size=n_packets,
    )
    return PacketTrace([make_packet(float(t), int(s)) for t, s in zip(timestamps, sizes)])


class TestAccumulatorMatchesBatchExtractor:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_windows_match(self, seed):
        rng = np.random.default_rng(seed)
        trace = random_trace(rng, n_packets=400, duration=8.0)
        classifier = MediaClassifier()
        for window in window_trace(trace, window_s=1.0, start=0.0):
            accumulator = IPUDPFeatureAccumulator(window.duration, classifier=classifier)
            for packet in window.packets:
                accumulator.push(packet)
            expected = extract_ipudp_features(window, classifier=classifier)
            # Bit-identical, not merely close: a last-ulp difference could
            # cross a forest split threshold and flip a prediction.
            np.testing.assert_array_equal(
                accumulator.features(), expected,
                err_msg=f"feature mismatch (names: {IPUDP_FEATURE_NAMES})",
            )

    def test_fractional_window_sizes(self):
        rng = np.random.default_rng(99)
        trace = random_trace(rng, n_packets=300, duration=6.0)
        classifier = MediaClassifier()
        for window in window_trace(trace, window_s=0.5, start=0.0):
            accumulator = IPUDPFeatureAccumulator(window.duration, classifier=classifier)
            for packet in window.packets:
                accumulator.push(packet)
            np.testing.assert_array_equal(
                accumulator.features(),
                extract_ipudp_features(window, classifier=classifier),
            )

    def test_empty_window_is_all_zeros(self):
        accumulator = IPUDPFeatureAccumulator(1.0)
        np.testing.assert_array_equal(accumulator.features(), np.zeros(14))

    def test_single_video_packet(self):
        accumulator = IPUDPFeatureAccumulator(1.0)
        assert accumulator.push(make_packet(0.25, 1000))
        features = accumulator.features()
        window = window_trace(PacketTrace([make_packet(0.25, 1000)]), 1.0, start=0.0, end=1.0)[0]
        np.testing.assert_allclose(features, extract_ipudp_features(window))
        assert features[IPUDP_FEATURE_NAMES.index("# microbursts")] == 1.0

    def test_non_video_packets_ignored(self):
        accumulator = IPUDPFeatureAccumulator(1.0)
        assert not accumulator.push(make_packet(0.1, 120))   # audio-sized
        assert not accumulator.push(make_packet(0.2, 304))   # keep-alive
        np.testing.assert_array_equal(accumulator.features(), np.zeros(14))

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            IPUDPFeatureAccumulator(0.0)


class TestLiveCounters:
    def test_mid_window_introspection_counters(self):
        """The running counters are the monitor-facing partial-window view and
        must agree with the buffers they summarize at any point mid-window."""
        rng = np.random.default_rng(3)
        trace = random_trace(rng, n_packets=200, duration=2.0)
        classifier = MediaClassifier()
        accumulator = IPUDPFeatureAccumulator(2.0, classifier=classifier)
        video_sizes = []
        for packet in trace:
            counted = accumulator.push(packet)
            assert counted == classifier.is_video(packet)
            if counted:
                video_sizes.append(float(packet.payload_size))
            if video_sizes:
                assert accumulator.n == len(video_sizes)
                assert accumulator.byte_sum == sum(video_sizes)
                assert accumulator.size_min == min(video_sizes)
                assert accumulator.size_max == max(video_sizes)
                assert accumulator.microbursts >= 1
