"""Unit tests for jitter buffer, receiver, stats, profiles, sender and session."""

import numpy as np
import pytest

from repro.net.packet import MediaType
from repro.netem.conditions import ConditionSchedule, NetworkCondition
from repro.webrtc.jitter_buffer import JitterBuffer
from repro.webrtc.profiles import VCA_PROFILES, get_profile
from repro.webrtc.receiver import Receiver
from repro.webrtc.sender import VCASender
from repro.webrtc.session import SessionConfig, simulate_call
from repro.webrtc.stats import GroundTruthLog, PerSecondStats


class TestProfiles:
    def test_three_vcas_defined(self):
        assert set(VCA_PROFILES) == {"meet", "teams", "webex"}

    def test_lookup_case_insensitive(self):
        assert get_profile("Teams").name == "teams"

    def test_unknown_vca_raises(self):
        with pytest.raises(KeyError):
            get_profile("zoom")

    def test_paper_heuristic_lookbacks(self):
        assert get_profile("meet").heuristic_lookback == 3
        assert get_profile("teams").heuristic_lookback == 2
        assert get_profile("webex").heuristic_lookback == 1

    def test_resolution_ladders_match_paper(self):
        assert get_profile("meet").heights == (180, 270, 360)
        assert len(set(r.height for r in get_profile("teams").ladder)) == 11
        assert get_profile("webex").heights == (180, 360)
        # Real-world Meet ladder adds 540p and 720p.
        real_heights = {r.height for r in get_profile("meet").ladder_real_world}
        assert {540, 720} <= real_heights

    def test_rung_selection_monotone_in_bitrate(self):
        profile = get_profile("teams")
        low = profile.rung_for_bitrate(100.0).height
        high = profile.rung_for_bitrate(3000.0).height
        assert low < high

    def test_meet_unequal_fragmentation_higher_in_real_world(self):
        meet = get_profile("meet")
        assert meet.unequal_fragmentation_prob_real_world > meet.unequal_fragmentation_prob

    def test_environment_validation(self):
        with pytest.raises(ValueError):
            get_profile("meet").ladder_for("staging")


class TestJitterBuffer:
    def test_playout_times_monotone(self, rng):
        buffer = JitterBuffer()
        playouts = []
        t = 0.0
        for frame_id in range(100):
            t += abs(rng.normal(1 / 30.0, 0.01))
            playouts.append(buffer.submit(frame_id, t, 5000, 360).playout_time)
        assert all(b >= a for a, b in zip(playouts, playouts[1:]))

    def test_playout_never_before_completion(self, rng):
        buffer = JitterBuffer()
        for frame_id in range(50):
            event = buffer.submit(frame_id, frame_id / 30.0, 5000, 360)
            assert event.playout_time >= event.completion_time
            assert event.buffering_delay >= 0.0

    def test_target_delay_grows_with_jitter(self):
        steady = JitterBuffer()
        for i in range(200):
            steady.submit(i, i / 30.0, 1000, 360)
        jittery = JitterBuffer()
        generator = np.random.default_rng(0)
        t = 0.0
        for i in range(200):
            t += abs(generator.normal(1 / 30.0, 0.02))
            jittery.submit(i, t, 1000, 360)
        assert jittery.target_delay_ms > steady.target_delay_ms

    def test_delay_bounded(self):
        buffer = JitterBuffer(min_delay_ms=10.0, max_delay_ms=200.0)
        generator = np.random.default_rng(1)
        t = 0.0
        for i in range(300):
            t += abs(generator.normal(1 / 15.0, 0.2))
            buffer.submit(i, t, 1000, 360)
        assert 10.0 <= buffer.target_delay_ms <= 200.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            JitterBuffer(min_delay_ms=50.0, max_delay_ms=10.0)

    def test_reset(self):
        buffer = JitterBuffer()
        buffer.submit(1, 0.0, 100, 180)
        buffer.reset()
        assert buffer.target_delay_ms == buffer.min_delay_ms


class TestGroundTruthLog:
    def _row(self, second, fps=30.0, bitrate=1000.0, jitter=10.0, height=360):
        return PerSecondStats(
            second=second, frames_received=fps, bitrate_kbps=bitrate, frame_jitter_ms=jitter, frame_height=height
        )

    def test_rows_must_be_ordered(self):
        log = GroundTruthLog(vca="teams", call_id="c")
        log.append(self._row(0))
        with pytest.raises(ValueError):
            log.append(self._row(0))

    def test_metric_accessors(self):
        log = GroundTruthLog(vca="teams", call_id="c")
        for second in range(3):
            log.append(self._row(second, fps=20.0 + second))
        assert np.allclose(log.frame_rates, [20.0, 21.0, 22.0])
        assert np.allclose(log.metric("frame_rate"), log.frame_rates)
        assert log.metric("resolution").dtype == float
        with pytest.raises(ValueError):
            log.metric("mos")

    def test_aggregate_windows(self):
        log = GroundTruthLog(vca="teams", call_id="c")
        for second in range(6):
            log.append(self._row(second, fps=30.0 if second % 2 == 0 else 20.0, height=360 if second < 4 else 720))
        aggregated = log.aggregate(2)
        assert len(aggregated) == 3
        assert aggregated.rows[0].frames_received == pytest.approx(25.0)
        assert aggregated.rows[2].frame_height in (360, 720)

    def test_aggregate_window_one_is_identity(self):
        log = GroundTruthLog(vca="teams", call_id="c")
        log.append(self._row(0))
        assert log.aggregate(1) is log

    def test_validation(self):
        with pytest.raises(ValueError):
            PerSecondStats(second=-1, frames_received=0, bitrate_kbps=0, frame_jitter_ms=0, frame_height=0)
        with pytest.raises(ValueError):
            PerSecondStats(second=0, frames_received=-1, bitrate_kbps=0, frame_jitter_ms=0, frame_height=0)


class TestReceiver:
    def test_receiver_reassembles_frames_from_call(self, teams_call):
        # The fixture's call already exercised the receiver; rebuild one from
        # the captured trace to test reassembly in isolation.
        receiver = Receiver(vca="teams", call_id="rebuild")
        receiver.process(teams_call.trace.packets)
        assert receiver.frames_decoded() > 200
        log = receiver.build_log(teams_call.duration_s)
        assert len(log) == teams_call.duration_s

    def test_log_fps_consistent_with_decoded_frames(self, teams_call):
        log = teams_call.ground_truth
        # Total frames in the log should be close to 30 fps x duration.
        total = log.frame_rates.sum()
        assert total > 0.6 * 30 * teams_call.duration_s

    def test_incomplete_frames_do_not_decode(self):
        receiver = Receiver(vca="teams", call_id="x")
        from repro.net.packet import IPv4Header, Packet, UDPHeader

        packet = Packet(
            timestamp=0.1,
            ip=IPv4Header(src="a.b.c.d" if False else "1.2.3.4", dst="10.0.0.1"),
            udp=UDPHeader(src_port=1, dst_port=2),
            payload_size=1000,
            media_type=MediaType.VIDEO,
            frame_id=1,
            metadata={"frame_packets": 3, "height": 360},
        )
        receiver.process([packet])
        assert receiver.frames_decoded() == 0

    def test_build_log_requires_positive_duration(self):
        with pytest.raises(ValueError):
            Receiver(vca="teams", call_id="x").build_log(0)


class TestSenderAndSession:
    def test_sender_emits_all_stream_types(self, rng):
        sender = VCASender(get_profile("teams"), rng)
        second = sender.generate_second(0)
        types = {p.media_type for p in second.packets}
        assert MediaType.VIDEO in types
        assert MediaType.AUDIO in types
        assert MediaType.VIDEO_RTX in types

    def test_sender_packets_within_second(self, rng):
        sender = VCASender(get_profile("webex"), rng)
        second = sender.generate_second(4)
        assert all(4.0 <= p.timestamp < 5.0 for p in second.packets)

    def test_session_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(vca="teams", duration_s=1)
        with pytest.raises(ValueError):
            SessionConfig(vca="teams", environment="space")
        with pytest.raises(ValueError):
            SessionConfig(vca="teams", participants=3)

    def test_simulated_call_artifacts(self, teams_call):
        assert len(teams_call.trace) > 1000
        assert len(teams_call.ground_truth) == teams_call.duration_s
        assert len(teams_call.target_bitrates_kbps) == teams_call.duration_s
        assert teams_call.vca == "teams"

    def test_call_reproducible_with_same_seed(self):
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=2000.0), 8)
        a = simulate_call(SessionConfig(vca="webex", duration_s=8, seed=9), schedule)
        b = simulate_call(SessionConfig(vca="webex", duration_s=8, seed=9), schedule)
        assert len(a.trace) == len(b.trace)
        assert np.allclose(a.ground_truth.frame_rates, b.ground_truth.frame_rates)

    def test_congested_call_degrades_qoe(self):
        good = ConditionSchedule.constant(NetworkCondition(throughput_kbps=3000.0), 15)
        bad = ConditionSchedule.constant(NetworkCondition(throughput_kbps=300.0, loss_rate=0.05), 15)
        call_good = simulate_call(SessionConfig(vca="teams", duration_s=15, seed=5), good)
        call_bad = simulate_call(SessionConfig(vca="teams", duration_s=15, seed=5), bad)
        assert call_bad.ground_truth.bitrates_kbps[5:].mean() < call_good.ground_truth.bitrates_kbps[5:].mean()

    def test_resolution_follows_throughput(self):
        good = ConditionSchedule.constant(NetworkCondition(throughput_kbps=3000.0), 15)
        bad = ConditionSchedule.constant(NetworkCondition(throughput_kbps=250.0), 15)
        call_good = simulate_call(SessionConfig(vca="teams", duration_s=15, seed=6), good)
        call_bad = simulate_call(SessionConfig(vca="teams", duration_s=15, seed=6), bad)
        assert call_bad.ground_truth.frame_heights[10:].max() < call_good.ground_truth.frame_heights[10:].max()

    def test_audio_packet_sizes_below_video_sizes(self, teams_call):
        audio = [p.payload_size for p in teams_call.trace if p.media_type is MediaType.AUDIO]
        video = [p.payload_size for p in teams_call.trace if p.media_type is MediaType.VIDEO]
        assert np.percentile(audio, 99) < np.percentile(video, 1)
