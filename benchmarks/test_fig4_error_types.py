"""Figure 4: IP/UDP Heuristic error taxonomy (splits / interleaves / coalesces).

Paper shape: Meet shows the most frame splits per prediction window (VP8/VP9
unequal fragmentation); Webex shows relatively more coalesces (many small,
similar frames), leading to FPS under-estimation.
"""

import numpy as np

from benchmarks.conftest import save_artifact
from repro.analysis.reporting import format_table
from repro.core.errors import analyze_heuristic_errors
from repro.core.heuristic import IPUDPHeuristic
from repro.webrtc.profiles import get_profile


def _error_breakdowns(lab_calls):
    breakdowns = {}
    for vca, calls in lab_calls.items():
        heuristic = IPUDPHeuristic.for_profile(get_profile(vca))
        per_call = [
            analyze_heuristic_errors(call.trace, heuristic, duration_s=call.duration_s)
            for call in calls
        ]
        breakdowns[vca] = {
            "splits": float(np.mean([b.avg_splits for b in per_call])),
            "interleaves": float(np.mean([b.avg_interleaves for b in per_call])),
            "coalesces": float(np.mean([b.avg_coalesces for b in per_call])),
        }
    return breakdowns


def test_fig4_heuristic_error_types(benchmark, lab_calls):
    breakdowns = benchmark.pedantic(_error_breakdowns, args=(lab_calls,), rounds=1, iterations=1)

    rows = [
        [vca, values["splits"], values["interleaves"], values["coalesces"]]
        for vca, values in breakdowns.items()
    ]
    text = format_table(
        ["VCA", "Splits [avg #frames/window]", "Interleaves", "Coalesces"],
        rows,
        title="Figure 4 - IP/UDP Heuristic error types (in-lab)",
    )
    save_artifact("fig4_error_types", text)

    # Meet has the most splits; every VCA shows some coalescing.
    assert breakdowns["meet"]["splits"] >= breakdowns["webex"]["splits"]
    assert all(values["coalesces"] >= 0.0 for values in breakdowns.values())
