"""Random forests built on the CART trees in :mod:`repro.ml.tree`.

The paper uses random forests for all ML-based QoE estimators ("we present
the results obtained using only random forests, as they consistently yield
the highest accuracy", Section 4.3) and relies on impurity-based feature
importances for the analysis in Section 5.  Both regressors and classifiers
are provided; the classifier additionally exposes class probabilities which
the resolution-confusion analysis uses.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "RandomForestClassifier"]


class _BaseForest:
    """Shared bootstrap / aggregation machinery for the two forests."""

    tree_class: type

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.estimators_: list = []
        self.feature_importances_: np.ndarray | None = None
        self.n_features_: int = 0

    def _make_tree(self, seed: int):
        return self.tree_class(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseForest":
        """Fit ``n_estimators`` trees on bootstrap resamples of ``(X, y)``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(
                f"X and y have inconsistent lengths: {len(X)} vs {len(y)}"
            )
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_features_ = X.shape[1]
        self._prepare_targets(y)

        rng = np.random.default_rng(self.random_state)
        self.estimators_ = []
        importances = np.zeros(self.n_features_)
        n = len(X)
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = self._make_tree(seed)
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else np.zeros(self.n_features_)
        )
        return self

    def _prepare_targets(self, y: np.ndarray) -> None:
        """Hook used by the classifier to record the label set."""

    def predict_many(self, rows) -> np.ndarray:
        """Vectorized prediction over a sequence of single-sample vectors.

        Stacks ``rows`` (each a 1-D feature vector) into one design matrix
        and runs the forest once.  Tree traversal and the per-sample mean /
        soft-vote are independent across rows, so the result is bit-identical
        to predicting each row on its own -- this is the cross-flow batched
        inference entry point used by the sharded monitor's tick batching.
        """
        if len(rows) == 0:
            return np.empty(0)
        return self.predict(np.vstack(rows))

    def _check_fitted(self) -> None:
        if not self.estimators_:
            raise RuntimeError(
                f"{type(self).__name__} instance is not fitted; call fit() first"
            )

    # -- persistence -------------------------------------------------------

    #: Discriminator stored in the serialized form, set by subclasses.
    kind: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the fitted forest (trees included)."""
        self._check_fitted()
        assert self.feature_importances_ is not None
        return {
            "kind": self.kind,
            "params": {
                "n_estimators": self.n_estimators,
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "bootstrap": self.bootstrap,
                "random_state": self.random_state,
            },
            "n_features": self.n_features_,
            "feature_importances": [float(v) for v in self.feature_importances_],
            "trees": [tree.to_dict() for tree in self.estimators_],
            **self._extra_to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_BaseForest":
        """Inverse of :meth:`to_dict`; the reloaded forest predicts bit-identically."""
        if data.get("kind") != cls.kind:
            raise ValueError(
                f"serialized forest is a {data.get('kind')!r}, expected {cls.kind!r}"
            )
        forest = cls(**data["params"])
        forest._extra_from_dict(data)
        forest.n_features_ = int(data["n_features"])
        forest.feature_importances_ = np.asarray(data["feature_importances"], dtype=float)
        forest.estimators_ = [cls.tree_class.from_dict(tree) for tree in data["trees"]]
        return forest

    def _extra_to_dict(self) -> dict:
        return {}

    def _extra_from_dict(self, data: dict) -> None:
        pass


class RandomForestRegressor(_BaseForest):
    """Bagged ensemble of CART regression trees (mean aggregation)."""

    tree_class = DecisionTreeRegressor
    kind = "regressor"

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict the per-sample mean of the individual tree predictions.

        The mean is accumulated sequentially in tree order (element-wise)
        rather than via ``np.mean``, whose pairwise-summation blocking
        depends on the batch shape: with it, a window predicted alone and
        the same window predicted inside a batch could differ in the last
        ulp, breaking the batched-inference bit-identity contract.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        total = self.estimators_[0].predict(X).astype(float, copy=True)
        for tree in self.estimators_[1:]:
            total += tree.predict(X)
        return total / len(self.estimators_)


class RandomForestClassifier(_BaseForest):
    """Bagged ensemble of CART classification trees (soft-vote aggregation)."""

    tree_class = DecisionTreeClassifier
    kind = "classifier"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.classes_: np.ndarray | None = None

    def _prepare_targets(self, y: np.ndarray) -> None:
        self.classes_ = np.unique(y)

    def _extra_to_dict(self) -> dict:
        assert self.classes_ is not None
        return {"classes": [c.item() if hasattr(c, "item") else c for c in self.classes_]}

    def _extra_from_dict(self, data: dict) -> None:
        self.classes_ = np.array(data["classes"])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average class-probability estimates across the ensemble.

        Trees fitted on bootstrap samples may not have seen every class, so
        per-tree probabilities are re-aligned onto the forest-level class set
        before averaging.
        """
        self._check_fitted()
        assert self.classes_ is not None
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        class_pos = {c: i for i, c in enumerate(self.classes_)}
        proba = np.zeros((len(X), len(self.classes_)))
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            for j, cls in enumerate(tree.classes_):
                proba[:, class_pos[cls]] += tree_proba[:, j]
        proba /= len(self.estimators_)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict the class with the highest averaged probability."""
        proba = self.predict_proba(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(proba, axis=1)]
