"""Figure 1: CDF of packet sizes per payload type (Teams, in-lab data).

Paper shape: audio packets (PT=111) span 89-385 bytes; video packets (PT=102)
are much larger, with 99% above 564 bytes; retransmission packets (PT=103)
are dominated by 304-byte keep-alives.
"""

import numpy as np

from benchmarks.conftest import save_artifact
from repro.analysis.cdf import fraction_at_or_below
from repro.analysis.reporting import format_table
from repro.net.packet import MediaType


def _sizes_by_media(calls):
    sizes = {MediaType.AUDIO: [], MediaType.VIDEO: [], MediaType.VIDEO_RTX: []}
    for call in calls:
        for packet in call.trace:
            if packet.media_type in sizes:
                sizes[packet.media_type].append(packet.payload_size)
    return {media: np.array(values) for media, values in sizes.items()}


def test_fig1_packet_size_cdf_teams(benchmark, lab_calls):
    sizes = benchmark.pedantic(_sizes_by_media, args=(lab_calls["teams"],), rounds=1, iterations=1)

    points = [100, 200, 304, 385, 564, 800, 1000, 1200]
    rows = []
    for media, label in [
        (MediaType.AUDIO, "Audio (PT=111)"),
        (MediaType.VIDEO_RTX, "Video-RTx (PT=103)"),
        (MediaType.VIDEO, "Video (PT=102)"),
    ]:
        values = sizes[media]
        rows.append([label, len(values)] + [f"{fraction_at_or_below(values, p):.2f}" for p in points])
    text = format_table(
        ["Stream", "packets"] + [f"<= {p}B" for p in points],
        rows,
        title="Figure 1 - packet size CDF by payload type (Teams, in-lab)",
    )
    save_artifact("fig1_packet_size_cdf", text)

    # Shape assertions from the paper.
    audio, video = sizes[MediaType.AUDIO], sizes[MediaType.VIDEO]
    assert audio.min() >= 89 and audio.max() <= 385
    assert float(np.mean(video > 564)) > 0.9
    # 304-byte keep-alives are the single most common RTX packet size (the
    # challenging NDT conditions produce more true retransmissions than the
    # paper's 92/8 split, so the fraction is lower here -- see EXPERIMENTS.md).
    rtx = sizes[MediaType.VIDEO_RTX]
    values, counts = np.unique(rtx, return_counts=True)
    assert int(values[np.argmax(counts)]) == 304
    assert float(np.mean(rtx == 304)) > 0.25
