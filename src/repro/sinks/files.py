"""File sinks: stream estimates to disk as they are emitted.

Both sinks write one record per estimate and keep no per-record state, so a
monitor writing them runs in O(window) memory end to end.  Both accept either
a path (the sink owns the file handle and closes it) or an open text
file-like object (the caller owns it; ``close()`` only flushes).
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path

from repro.core.streaming import StreamEstimate
from repro.sinks.base import EstimateSink, estimate_as_dict

__all__ = ["JSONLinesSink", "CSVSink"]

#: Column order of the flat estimate record (shared by both file formats).
FIELD_NAMES: tuple[str, ...] = (
    "src", "src_port", "dst", "dst_port", "protocol",
    "window_start", "frame_rate", "bitrate_kbps", "frame_jitter_ms",
    "resolution", "source",
)


class _FileSink(EstimateSink):
    """Shared open/own/close machinery for the text-file sinks."""

    def __init__(self, target) -> None:
        if isinstance(target, (str, Path)):
            self._file = open(target, "w", newline="")  # noqa: SIM115 -- owned until close()
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.records_written = 0

    def close(self) -> None:
        if self._file is None:
            return
        if self._owns_file:
            self._file.close()
        else:
            self._file.flush()
        self._file = None

    def _check_open(self) -> None:
        if self._file is None:
            raise RuntimeError(f"{type(self).__name__} is closed")


def _json_safe(record: dict) -> dict:
    """Map non-finite floats to ``None`` so every line is *valid* JSON.

    ``json.dumps`` would otherwise serialize ``NaN``/``Infinity`` literals --
    Python-specific extensions that jq, pandas' strict reader and BigQuery
    all reject.  Estimates can legitimately carry them (e.g. jitter over a
    window with a single frame), so the record maps them to ``null`` and
    ``allow_nan=False`` below guarantees nothing slips through.
    """
    return {
        key: None if isinstance(value, float) and not math.isfinite(value) else value
        for key, value in record.items()
    }


class JSONLinesSink(_FileSink):
    """One JSON object per line per estimate (jq/pandas/BigQuery friendly).

    Non-finite metric values (``NaN``, ``inf``) become JSON ``null``: every
    emitted line parses under strict JSON rules, which is the promise the
    jq/pandas/BigQuery consumers rely on.
    """

    def emit(self, item: StreamEstimate) -> None:
        self._check_open()
        self._file.write(json.dumps(_json_safe(estimate_as_dict(item)), allow_nan=False) + "\n")
        self.records_written += 1


class CSVSink(_FileSink):
    """CSV with a header row; columns are :data:`FIELD_NAMES`."""

    def __init__(self, target) -> None:
        super().__init__(target)
        self._writer = csv.DictWriter(self._file, fieldnames=list(FIELD_NAMES))
        self._writer.writeheader()

    def emit(self, item: StreamEstimate) -> None:
        self._check_open()
        self._writer.writerow(estimate_as_dict(item))
        self.records_written += 1
