"""Throughput benchmark: the zero-pickle estimate return path (PR 6).

PR 5 removed serialization from the router->worker direction; the return
direction still pickled every per-tick estimate batch through a
``multiprocessing`` queue.  PR 6 flat-encodes estimate batches
(:class:`~repro.net.estwire.EstimateBatch`) into a reverse per-shard ring
and packs multiple payloads per slot in both directions behind
length-prefixed segment headers.

Measured configurations (same synthetic many-flow vantage trace as
``BENCH_shm``):

* **end-to-end**: ``ShardedQoEMonitor`` with 1 worker, shm transport, ring
  return vs queue return -- the full-pipeline effect of the return path
  (recorded; the pipeline has plenty of non-transport work, so no floor);
* **small chunks**: 32-packet chunks with vs without slot batching -- the
  semaphore-amortization effect batching exists for (recorded);
* **return-path microbenchmark**: a producer process ships the same
  estimate batches to the parent over (a) a pickling queue and (b) a
  return ring with slot batching.  This isolates the transport, so the
  ``MIN_SPEEDUP`` floor (default 1.5x, multi-core runners only -- see
  ``conftest.enforced_floor``) is enforced here.

The result is written to ``benchmarks/results/BENCH_shm_return.json``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
from time import perf_counter

import numpy as np
import pytest

from repro import CollectorSink, IteratorSource, QoEPipeline, ShardedQoEMonitor
from repro.cluster.shm import BlockRing, shm_available
from repro.core.pipeline import PipelineEstimate
from repro.core.streaming import StreamEstimate
from repro.net.estwire import EstimateBatch
from repro.net.flows import FlowKey
from repro.net.packet import IPv4Header, Packet, UDPHeader

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable on this platform"
)

_SMOKE = "BENCH_SMOKE_DURATION_S" in os.environ
TRACE_DURATION_S = float(os.environ.get("BENCH_SMOKE_DURATION_S", 60.0))
N_FLOWS = 8
SMALL_CHUNK = 32
_CPUS = os.cpu_count() or 1
_ARTIFACT_NAME = "BENCH_shm_return_smoke" if _SMOKE else "BENCH_shm_return"

# NOTE: no ``from conftest import ...`` here, unlike the sibling benchmark
# files.  The microbenchmark's spawn children re-import THIS module to
# unpickle their target functions, and in a whole-repo pytest run several
# conftest.py files compete for the bare ``conftest`` module name (sys.path
# order in the child, sys.modules rebinding in the parent), so a name-based
# import can resolve to a tests/ conftest and break either side.  The
# harness helpers are loaded by explicit path, parent-side only.


def _bench_conftest():
    """Load ``benchmarks/conftest.py`` by path, immune to name shadowing."""
    import importlib.util
    import pathlib

    module = sys.modules.get("_bench_conftest")
    if module is None:
        spec = importlib.util.spec_from_file_location(
            "_bench_conftest", pathlib.Path(__file__).with_name("conftest.py")
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        sys.modules["_bench_conftest"] = module
    return module

#: Microbenchmark shape: many small tick batches -- the regime the return
#: ring's slot batching exists for.
MICRO_BATCHES = 200 if _SMOKE else 2000
MICRO_ROWS = 32
_MICRO_SLOTS = 16

_measured: dict[str, float] = {}
_counts: dict[str, int] = {}


def _synthetic_session(seed: int, client_ip: str, client_port: int) -> list[Packet]:
    """One VCA-like downlink flow: ~25 fps fragmented video bursts."""
    rng = np.random.default_rng(seed)
    ip = IPv4Header(src="192.0.2.10", dst=client_ip)
    udp = UDPHeader(src_port=3478, dst_port=client_port)
    packets: list[Packet] = []
    t = float(rng.uniform(0.0, 0.02))
    while t < TRACE_DURATION_S:
        size = int(rng.integers(700, 1200))
        for i in range(int(rng.integers(2, 5))):
            packets.append(Packet(timestamp=t + i * 0.0008, ip=ip, udp=udp, payload_size=size))
        t += float(rng.normal(0.04, 0.004))
    return packets


@pytest.fixture(scope="module")
def vantage_trace() -> list[Packet]:
    """N_FLOWS interleaved sessions, as one capture point would see them."""
    flows = [
        _synthetic_session(seed, f"10.0.0.{seed + 1}", 50000 + seed) for seed in range(N_FLOWS)
    ]
    return sorted((p for flow in flows for p in flow), key=lambda p: p.timestamp)


def _run_sharded(packets: list[Packet], **kwargs) -> int:
    sink = CollectorSink()
    report = ShardedQoEMonitor(
        QoEPipeline.for_vca("teams"),
        IteratorSource(iter(packets)),
        sinks=sink,
        transport="shm",
        **kwargs,
    ).run()
    assert report.n_flows == N_FLOWS
    return report.n_estimates


def test_benchmark_queue_return_one_worker(benchmark, vantage_trace):
    n_estimates = benchmark.pedantic(
        _run_sharded,
        args=(vantage_trace,),
        kwargs={"n_workers": 1, "shm_return": "queue"},
        rounds=2,
        iterations=1,
    )
    _counts["queue_return"] = n_estimates
    if benchmark.stats is not None:
        _measured["queue_return_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_ring_return_one_worker(benchmark, vantage_trace):
    n_estimates = benchmark.pedantic(
        _run_sharded,
        args=(vantage_trace,),
        kwargs={"n_workers": 1, "shm_return": "ring"},
        rounds=2,
        iterations=1,
    )
    _counts["ring_return"] = n_estimates
    if benchmark.stats is not None:
        _measured["ring_return_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_small_chunks_batched(benchmark, vantage_trace):
    n_estimates = benchmark.pedantic(
        _run_sharded,
        args=(vantage_trace,),
        kwargs={"n_workers": 1, "chunk_size": SMALL_CHUNK, "shm_batch_slots": True},
        rounds=2,
        iterations=1,
    )
    _counts["small_batched"] = n_estimates
    if benchmark.stats is not None:
        _measured["small_batched_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_small_chunks_unbatched(benchmark, vantage_trace):
    n_estimates = benchmark.pedantic(
        _run_sharded,
        args=(vantage_trace,),
        kwargs={"n_workers": 1, "chunk_size": SMALL_CHUNK, "shm_batch_slots": False},
        rounds=2,
        iterations=1,
    )
    _counts["small_unbatched"] = n_estimates
    if benchmark.stats is not None:
        _measured["small_unbatched_s"] = float(benchmark.stats.stats.mean)


# -- return-path microbenchmark ------------------------------------------------
#
# Both producers build identical [StreamEstimate] tick batches in the child
# process and signal readiness before the parent starts the clock, so the
# comparison isolates transport cost: pickling through a queue vs
# flat-encoding into a slot-batched ring.


def _micro_batches(n_batches: int, rows: int) -> list[list[StreamEstimate]]:
    pool = [
        FlowKey(src="192.0.2.10", src_port=3478, dst="10.0.0.1", dst_port=50000 + i, protocol=17)
        for i in range(8)
    ]
    batches = []
    for b in range(n_batches):
        batches.append(
            [
                StreamEstimate(
                    flow=pool[i % len(pool)],
                    estimate=PipelineEstimate(
                        window_start=float(b),
                        frame_rate=25.0 + i,
                        bitrate_kbps=2500.0 + i,
                        frame_jitter_ms=5.0 + 0.1 * i,
                        resolution="720p",
                        source="heuristic",
                    ),
                )
                for i in range(rows)
            ]
        )
    return batches


def _queue_producer_main(out_queue, n_batches: int, rows: int) -> None:
    batches = _micro_batches(n_batches, rows)
    out_queue.put(("ready",))
    for b, batch in enumerate(batches):
        out_queue.put(("progress", 0, batch, float(b)))
    out_queue.put(("done",))


def _ring_producer_main(ring_handle, token_queue, n_batches: int, rows: int) -> None:
    ring = ring_handle.attach()
    try:
        payloads: list = []
        cost = 0
        encoded = []
        for b, batch in enumerate(_micro_batches(n_batches, rows)):
            eb = EstimateBatch.from_estimates(batch, float(b))
            encoded.append((eb.byte_size(), eb))
        token_queue.put(("ready",))
        for size, eb in encoded:
            segment_cost = ring.segment_cost(size)
            if payloads and cost + segment_cost > ring.slot_bytes:
                ring.try_push_segments(payloads, timeout=None)
                token_queue.put(("est",))
                payloads, cost = [], 0
            payloads.append((size, eb.write_into))
            cost += segment_cost
        if payloads:
            ring.try_push_segments(payloads, timeout=None)
            token_queue.put(("est",))
        token_queue.put(("done",))
    finally:
        ring.close()


def _time_queue_return(ctx, n_batches: int, rows: int) -> tuple[int, float]:
    out_queue = ctx.Queue(maxsize=_MICRO_SLOTS)
    producer = ctx.Process(
        target=_queue_producer_main, args=(out_queue, n_batches, rows), daemon=True
    )
    producer.start()
    assert out_queue.get(timeout=120.0)[0] == "ready"
    started = perf_counter()
    n = 0
    while True:
        message = out_queue.get(timeout=120.0)
        if message[0] == "done":
            break
        n += len(message[2])
    elapsed = perf_counter() - started
    producer.join(10.0)
    return n, elapsed


def _time_ring_return(ctx, n_batches: int, rows: int) -> tuple[int, float]:
    ring = BlockRing.create(ctx, _MICRO_SLOTS)
    token_queue = ctx.Queue()
    try:
        producer = ctx.Process(
            target=_ring_producer_main,
            args=(ring.handle(), token_queue, n_batches, rows),
            daemon=True,
        )
        producer.start()
        assert token_queue.get(timeout=120.0)[0] == "ready"
        started = perf_counter()
        n = 0
        while True:
            message = token_queue.get(timeout=120.0)
            if message[0] == "done":
                break
            segments = ring.pop_segments(timeout=120.0)
            for segment in segments:
                batch = EstimateBatch.read_from(segment)
                n += len(batch.to_estimates())
                batch = None
            segments = None
            ring.release()
        elapsed = perf_counter() - started
        producer.join(10.0)
        return n, elapsed
    finally:
        ring.close()
        ring.unlink()


def test_benchmark_return_microbench():
    ctx = multiprocessing.get_context("spawn")
    expected = MICRO_BATCHES * MICRO_ROWS
    # Two rounds each, keep the best: spawn jitter is large relative to the
    # measured window and both paths deserve their best case.
    queue_runs = [_time_queue_return(ctx, MICRO_BATCHES, MICRO_ROWS) for _ in range(2)]
    ring_runs = [_time_ring_return(ctx, MICRO_BATCHES, MICRO_ROWS) for _ in range(2)]
    assert all(n == expected for n, _ in queue_runs + ring_runs)
    _measured["micro_queue_s"] = min(elapsed for _, elapsed in queue_runs)
    _measured["micro_ring_s"] = min(elapsed for _, elapsed in ring_runs)
    _counts["micro"] = expected


def test_return_path_speedup_and_artifact(vantage_trace):
    harness = _bench_conftest()

    # Return-path microbenchmark floor: ring+codec estimates/s must reach
    # this multiple of the pickling queue.  Enforced on multi-core runners
    # only; the JSON artifact records exactly this (enforced) value.
    min_speedup = harness.enforced_floor("BENCH_SHM_MIN_SPEEDUP", 1.5)
    needed = {
        "queue_return_s",
        "ring_return_s",
        "small_batched_s",
        "small_unbatched_s",
        "micro_queue_s",
        "micro_ring_s",
    }
    if not needed <= _measured.keys():
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    # Every configuration saw the same work and produced every estimate.
    assert _counts["queue_return"] == _counts["ring_return"]
    assert _counts["small_batched"] == _counts["small_unbatched"]

    n_packets = len(vantage_trace)
    queue_pps = n_packets / _measured["queue_return_s"]
    ring_pps = n_packets / _measured["ring_return_s"]
    small_batched_pps = n_packets / _measured["small_batched_s"]
    small_unbatched_pps = n_packets / _measured["small_unbatched_s"]
    micro_queue_eps = _counts["micro"] / _measured["micro_queue_s"]
    micro_ring_eps = _counts["micro"] / _measured["micro_ring_s"]
    micro_speedup = micro_ring_eps / micro_queue_eps

    payload = {
        "benchmark": "shm_return_path",
        "trace": {
            "duration_s": TRACE_DURATION_S,
            "n_packets": n_packets,
            "n_flows": N_FLOWS,
        },
        "cpu_count": _CPUS,
        "queue_return_1_worker_packets_per_s": round(queue_pps, 1),
        "ring_return_1_worker_packets_per_s": round(ring_pps, 1),
        "ring_vs_queue_return_1_worker_speedup": round(ring_pps / queue_pps, 2),
        "small_chunk_size": SMALL_CHUNK,
        "small_chunk_batched_packets_per_s": round(small_batched_pps, 1),
        "small_chunk_unbatched_packets_per_s": round(small_unbatched_pps, 1),
        "slot_batching_small_chunk_speedup": round(
            small_batched_pps / small_unbatched_pps, 2
        ),
        "return_microbench": {
            "n_batches": MICRO_BATCHES,
            "rows_per_batch": MICRO_ROWS,
            "queue_estimates_per_s": round(micro_queue_eps, 1),
            "ring_estimates_per_s": round(micro_ring_eps, 1),
            "ring_vs_queue_speedup": round(micro_speedup, 2),
        },
        "min_speedup_floor": min_speedup,
    }
    harness.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (harness.RESULTS_DIR / f"{_ARTIFACT_NAME}.json").write_text(json.dumps(payload, indent=2) + "\n")
    harness.save_artifact(
        _ARTIFACT_NAME,
        "\n".join(
            [
                f"Zero-pickle return path ({TRACE_DURATION_S:.0f}s, {N_FLOWS}-flow synthetic trace, {_CPUS} CPUs)",
                f"  packets:                        {n_packets}",
                f"  1 worker, queue return:         {queue_pps:12.0f} packets/s",
                f"  1 worker, ring return:          {ring_pps:12.0f} packets/s",
                f"  {SMALL_CHUNK}-pkt chunks, batched slots:  {small_batched_pps:12.0f} packets/s",
                f"  {SMALL_CHUNK}-pkt chunks, 1 seg/slot:    {small_unbatched_pps:12.0f} packets/s",
                f"  return microbench, queue:       {micro_queue_eps:12.0f} estimates/s",
                f"  return microbench, ring:        {micro_ring_eps:12.0f} estimates/s",
                f"  microbench speedup:             {micro_speedup:12.2f}x  (floor: {min_speedup}x)",
            ]
        ),
    )
    assert queue_pps > 0 and ring_pps > 0
    assert micro_speedup >= min_speedup, (
        f"ring return path only {micro_speedup:.2f}x the pickling queue "
        f"(floor {min_speedup}x on {_CPUS} CPUs)"
    )
