"""Throughput benchmark: sharded multi-worker monitor vs single-process engine.

Measures packets/second of QoE estimation over a synthetic many-flow vantage
trace, comparing

* the **single-process streaming engine** (the PR 1 number tracked in
  ``BENCH_streaming.json``) run in-process;
* ``ShardedQoEMonitor`` with **1 worker** -- isolates the routing + IPC +
  process overhead of the cluster layer; and
* ``ShardedQoEMonitor`` with **N > 1 workers** -- the scale-out path.

The result is written to ``benchmarks/results/BENCH_sharded.json``.  Sharding
pays for IPC (every packet is pickled across a process boundary), so its win
is parallel hardware: on multi-core runners the multi-worker configuration
must not regress against the 1-worker sharded floor (``MIN_SCALING``); on a
single core the numbers are recorded for tracking and the scaling assertion
is vacuous (there is nothing to scale onto, and the honest comparison --
against ``BENCH_streaming``'s in-process packets/sec -- is also recorded).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from conftest import RESULTS_DIR, enforced_floor, save_artifact
from repro import CollectorSink, IteratorSource, QoEPipeline, ShardedQoEMonitor
from repro.core.streaming import StreamingQoEPipeline
from repro.net.packet import IPv4Header, Packet, UDPHeader

_SMOKE = "BENCH_SMOKE_DURATION_S" in os.environ
TRACE_DURATION_S = float(os.environ.get("BENCH_SMOKE_DURATION_S", 60.0))
N_FLOWS = 8
MULTI_WORKERS = 2
_CPUS = os.cpu_count() or 1
#: Multi-worker pps must reach this fraction of the 1-worker sharded pps.
#: Genuine scaling needs >1 core; serial hardware only records the numbers.
#: The JSON artifact records exactly this (enforced) value.
MIN_SCALING = enforced_floor("BENCH_SHARDED_MIN_SCALING", 0.8)
_ARTIFACT_NAME = "BENCH_sharded_smoke" if _SMOKE else "BENCH_sharded"

_measured: dict[str, float] = {}
_counts: dict[str, int] = {}


def _synthetic_session(seed: int, client_ip: str, client_port: int) -> list[Packet]:
    """One VCA-like downlink flow: ~25 fps fragmented video bursts."""
    rng = np.random.default_rng(seed)
    ip = IPv4Header(src="192.0.2.10", dst=client_ip)
    udp = UDPHeader(src_port=3478, dst_port=client_port)
    packets: list[Packet] = []
    t = float(rng.uniform(0.0, 0.02))
    while t < TRACE_DURATION_S:
        size = int(rng.integers(700, 1200))
        for i in range(int(rng.integers(2, 5))):
            packets.append(Packet(timestamp=t + i * 0.0008, ip=ip, udp=udp, payload_size=size))
        t += float(rng.normal(0.04, 0.004))
    return packets


@pytest.fixture(scope="module")
def vantage_trace() -> list[Packet]:
    """N_FLOWS interleaved sessions, as one capture point would see them."""
    flows = [
        _synthetic_session(seed, f"10.0.0.{seed + 1}", 50000 + seed) for seed in range(N_FLOWS)
    ]
    return sorted((p for flow in flows for p in flow), key=lambda p: p.timestamp)


def _run_sharded(packets: list[Packet], n_workers: int) -> int:
    sink = CollectorSink()
    report = ShardedQoEMonitor(
        QoEPipeline.for_vca("teams"),
        IteratorSource(iter(packets)),
        sinks=sink,
        n_workers=n_workers,
    ).run()
    assert report.n_flows == N_FLOWS
    return report.n_estimates


def test_benchmark_single_process_engine(benchmark, vantage_trace):
    def run():
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        count = sum(1 for _ in engine.process(iter(vantage_trace)))
        return count + len(engine.flush())

    n_estimates = benchmark.pedantic(run, rounds=2, iterations=1)
    _counts["single_process"] = n_estimates
    if benchmark.stats is not None:
        _measured["single_process_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_sharded_one_worker(benchmark, vantage_trace):
    n_estimates = benchmark.pedantic(
        _run_sharded, args=(vantage_trace, 1), rounds=2, iterations=1
    )
    _counts["sharded_1w"] = n_estimates
    if benchmark.stats is not None:
        _measured["sharded_1w_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_sharded_multi_worker(benchmark, vantage_trace):
    n_estimates = benchmark.pedantic(
        _run_sharded, args=(vantage_trace, MULTI_WORKERS), rounds=2, iterations=1
    )
    _counts["sharded_multi"] = n_estimates
    if benchmark.stats is not None:
        _measured["sharded_multi_s"] = float(benchmark.stats.stats.mean)


def test_sharded_scaling_and_artifact(vantage_trace):
    needed = {"single_process_s", "sharded_1w_s", "sharded_multi_s"}
    if not needed <= _measured.keys():
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    # Every configuration saw the same work and produced every estimate.
    assert _counts["single_process"] == _counts["sharded_1w"] == _counts["sharded_multi"]

    n_packets = len(vantage_trace)
    single_pps = n_packets / _measured["single_process_s"]
    one_worker_pps = n_packets / _measured["sharded_1w_s"]
    multi_pps = n_packets / _measured["sharded_multi_s"]
    scaling = multi_pps / one_worker_pps

    streaming_reference = None
    reference_path = RESULTS_DIR / "BENCH_streaming.json"
    if reference_path.exists():
        streaming_reference = json.loads(reference_path.read_text()).get(
            "streaming_packets_per_s"
        )

    payload = {
        "benchmark": "sharded_throughput",
        "trace": {
            "duration_s": TRACE_DURATION_S,
            "n_packets": n_packets,
            "n_flows": N_FLOWS,
        },
        "cpu_count": _CPUS,
        "multi_workers": MULTI_WORKERS,
        "single_process_packets_per_s": round(single_pps, 1),
        "sharded_1_worker_packets_per_s": round(one_worker_pps, 1),
        "sharded_multi_worker_packets_per_s": round(multi_pps, 1),
        "multi_vs_1_worker_scaling": round(scaling, 2),
        "min_scaling_floor": MIN_SCALING,
        "single_process_reference_packets_per_s": streaming_reference,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{_ARTIFACT_NAME}.json").write_text(json.dumps(payload, indent=2) + "\n")
    save_artifact(
        _ARTIFACT_NAME,
        "\n".join(
            [
                f"Sharded monitor throughput ({TRACE_DURATION_S:.0f}s, {N_FLOWS}-flow synthetic trace, {_CPUS} CPUs)",
                f"  packets:                 {n_packets}",
                f"  single-process engine:   {single_pps:12.0f} packets/s",
                f"  sharded, 1 worker:       {one_worker_pps:12.0f} packets/s",
                f"  sharded, {MULTI_WORKERS} workers:      {multi_pps:12.0f} packets/s",
                f"  multi-vs-1 scaling:      {scaling:12.2f}x  (floor: {MIN_SCALING}x)",
            ]
        ),
    )
    assert multi_pps > 0 and one_worker_pps > 0
    assert scaling >= MIN_SCALING, (
        f"{MULTI_WORKERS}-worker sharded monitor only {scaling:.2f}x the 1-worker "
        f"throughput (floor {MIN_SCALING}x on {_CPUS} CPUs)"
    )
