"""Sharded multi-worker execution of the QoE monitor.

The scale-out layer on top of the Source -> Engine -> Sink architecture:

* :class:`~repro.cluster.router.FlowShardRouter` -- deterministic
  hash-partitioning of packets onto N shards by canonical 5-tuple;
* :class:`~repro.cluster.worker.ShardWorker` -- spawn-safe worker processes,
  each running a :class:`~repro.core.streaming.StreamingQoEPipeline` rebuilt
  from the ``QoEPipeline.save`` payload, with cross-flow tick-batched
  inference;
* :class:`~repro.cluster.fanin.FanInSink` -- watermark-driven ordered merge
  of the per-shard estimate streams into any existing sink;
* :class:`~repro.cluster.shm.BlockRing` -- the zero-copy shared-memory
  block transport between router and workers (``transport="shm"``);
* :class:`~repro.cluster.monitor.ShardedQoEMonitor` -- the facade, same
  ``run() -> MonitorReport`` surface as :class:`~repro.monitor.QoEMonitor`;
* :mod:`~repro.cluster.rebalance` -- elastic sharding policies: live flow
  migration between workers (snapshot / restore via
  :mod:`~repro.net.flowwire`) driven by per-shard load, enabled with
  ``ShardedQoEMonitor(rebalance=...)``.

Output is estimate-for-estimate identical to the single-process monitor,
in the deterministic fan-in order ``(window_start, flow)``, for any worker
count -- with or without live migrations.
"""

from repro.cluster.fanin import FanInSink, flow_sort_key
from repro.cluster.monitor import ShardedQoEMonitor
from repro.cluster.rebalance import (
    GreedyRebalancer,
    Migration,
    RebalancePolicy,
    ScheduledRebalancer,
    ShardLoad,
    summarize_migrations,
)
from repro.cluster.router import FlowShardRouter
from repro.cluster.shm import BlockRing, shm_available
from repro.cluster.worker import ShardWorker

__all__ = [
    "FlowShardRouter",
    "ShardWorker",
    "FanInSink",
    "BlockRing",
    "ShardedQoEMonitor",
    "flow_sort_key",
    "shm_available",
    "RebalancePolicy",
    "GreedyRebalancer",
    "ScheduledRebalancer",
    "Migration",
    "ShardLoad",
    "summarize_migrations",
]
