"""End-to-end sharded monitor tests (real spawn worker processes).

The pinned acceptance criteria of the cluster subsystem:

* for a multi-flow trace, ``ShardedQoEMonitor`` with N = 1, 2, 4 workers
  produces **exactly** the same estimates as the single-process
  ``QoEMonitor``, in the deterministic fan-in order ``(window_start,
  flow)``, and identical output for every N;
* cross-flow tick-batched inference is bit-identical to per-window
  inference;
* the workers are genuinely spawn-constructed from the ``QoEPipeline.save``
  payload (the PR 2 persistence wire format).
"""

from __future__ import annotations

import pytest

from repro import (
    CollectorSink,
    IteratorSource,
    QoEMonitor,
    QoEPipeline,
    ShardedQoEMonitor,
    SummarySink,
)
from repro.cluster.fanin import flow_sort_key


def fan_in_order(items):
    """Sort collected single-process estimates into the fan-in contract order."""
    return sorted(items, key=lambda item: (item.estimate.window_start, flow_sort_key(item.flow)))


def as_rows(items):
    return [(item.flow, item.estimate) for item in items]


def run_single(pipeline, packets) -> CollectorSink:
    sink = CollectorSink()
    QoEMonitor(pipeline, IteratorSource(iter(packets)), sinks=sink).run()
    return sink


def run_sharded(pipeline, packets, n_workers, **kwargs):
    sink = CollectorSink()
    monitor = ShardedQoEMonitor(
        pipeline, IteratorSource(iter(packets)), sinks=sink, n_workers=n_workers, **kwargs
    )
    report = monitor.run()
    return sink, report, monitor


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_heuristic_matches_single_process(self, many_flow_packets, n_workers):
        pipeline = QoEPipeline.for_vca("teams")
        single = run_single(pipeline, many_flow_packets)
        expected = as_rows(fan_in_order(single.items))
        sink, report, _ = run_sharded(pipeline, many_flow_packets, n_workers)
        assert as_rows(sink.items) == expected  # exact: same estimates, fan-in order
        assert report.n_packets == len(many_flow_packets)
        assert report.n_estimates == len(expected)
        assert report.n_flows == 4
        assert sink.closed

    def test_trained_matches_single_process_bit_identically(self, many_flow_packets, trained_pipeline):
        single = run_single(trained_pipeline, many_flow_packets)
        expected = as_rows(fan_in_order(single.items))
        assert all(estimate.source == "ml" for _, estimate in expected)
        for n_workers in (1, 2):
            sink, _, _ = run_sharded(trained_pipeline, many_flow_packets, n_workers)
            # Dataclass equality on floats == bit-identical predictions,
            # through the payload wire format and tick-batched inference.
            assert as_rows(sink.items) == expected

    def test_output_identical_for_every_worker_count(self, many_flow_packets):
        pipeline = QoEPipeline.for_vca("teams")
        outputs = [
            as_rows(run_sharded(pipeline, many_flow_packets, n)[0].items) for n in (1, 2, 4)
        ]
        assert outputs[0] == outputs[1] == outputs[2]

    def test_from_model_deploys_saved_pipeline(self, many_flow_packets, trained_pipeline, tmp_path):
        path = tmp_path / "teams.model.json"
        trained_pipeline.save(path)
        single = run_single(trained_pipeline, many_flow_packets)
        sink = CollectorSink()
        ShardedQoEMonitor.from_model(
            path, IteratorSource(iter(many_flow_packets)), sinks=sink, n_workers=2
        ).run()
        assert as_rows(sink.items) == as_rows(fan_in_order(single.items))


class TestShardedMonitorSurface:
    def test_report_has_throughput_counters(self, many_flow_packets):
        _, report, _ = run_sharded(QoEPipeline.for_vca("teams"), many_flow_packets, 2)
        assert report.packets_consumed == report.n_packets == len(many_flow_packets)
        assert report.flows_seen == report.n_flows == 4
        assert report.wall_time_s > 0.0
        assert report.packets_per_s == pytest.approx(report.packets_consumed / report.wall_time_s)

    def test_per_shard_stats_cover_all_flows(self, many_flow_packets):
        _, report, monitor = run_sharded(QoEPipeline.for_vca("teams"), many_flow_packets, 2)
        assert len(monitor.shard_stats) == 2
        assert sum(stats["n_packets"] for stats in monitor.shard_stats) == len(many_flow_packets)
        assert sum(stats["n_flows"] for stats in monitor.shard_stats) == report.n_flows

    def test_sharded_monitor_is_one_shot(self, many_flow_packets):
        _, _, monitor = run_sharded(QoEPipeline.for_vca("teams"), many_flow_packets, 1)
        with pytest.raises(RuntimeError, match="already ran"):
            monitor.run()

    def test_rejects_single_flow_config(self, many_flow_packets):
        pipeline = QoEPipeline.for_vca("teams")
        with pytest.raises(ValueError, match="demux_flows"):
            ShardedQoEMonitor(
                pipeline,
                IteratorSource(iter(many_flow_packets)),
                config=pipeline.config.replace(demux_flows=False),
            )
        with pytest.raises(ValueError, match="chunk_size"):
            ShardedQoEMonitor(pipeline, IteratorSource(iter(many_flow_packets)), chunk_size=0)

    def test_sinks_compose_like_the_single_process_monitor(self, many_flow_packets):
        pipeline = QoEPipeline.for_vca("teams")
        collector = CollectorSink()
        summary = SummarySink(degraded_fps_threshold=1e9)
        monitor = ShardedQoEMonitor(
            pipeline,
            IteratorSource(iter(many_flow_packets)),
            sinks=[collector, summary],
            n_workers=2,
        )
        monitor.run()
        assert summary.closed
        assert len(summary.flows) == 4
        assert sum(s.windows for s in summary.flows.values()) == len(collector)

    def test_idle_eviction_evicts_and_never_double_emits(self):
        """Workers run the monitor's amortized idle sweep on their shards."""
        from repro.net.packet import IPv4Header, Packet, UDPHeader

        def make_packet(timestamp, dst_port):
            return Packet(
                timestamp=timestamp,
                ip=IPv4Header(src="192.0.2.10", dst="10.0.0.1"),
                udp=UDPHeader(src_port=3478, dst_port=dst_port),
                payload_size=1000,
            )

        long_lived = [make_packet(0.05 * i, 51000) for i in range(1200)]  # 0..60 s
        short = [make_packet(0.01 * i, 40000) for i in range(300)]  # dies at 3 s
        feed = sorted(long_lived + short, key=lambda p: p.timestamp)
        pipeline = QoEPipeline.for_vca("teams")
        # One worker co-locates the flows, so the long flow's stream time
        # drives the short flow's eviction (as in the single-process sweep);
        # with more shards an idle flow alone on its shard is simply flushed
        # at end of source instead.
        sink, report, _ = run_sharded(
            pipeline,
            feed,
            1,
            config=pipeline.config.replace(idle_timeout_s=10.0),
        )
        assert report.n_evicted_flows >= 1
        assert report.n_flows == 2
        per_flow: dict = {}
        for item in sink.items:
            per_flow.setdefault(item.flow, []).append(item.estimate.window_start)
        for starts in per_flow.values():
            assert len(starts) == len(set(starts))

    def test_chunk_size_does_not_change_output(self, many_flow_packets):
        pipeline = QoEPipeline.for_vca("teams")
        small, _, _ = run_sharded(pipeline, many_flow_packets, 2, chunk_size=64)
        large, _, _ = run_sharded(pipeline, many_flow_packets, 2, chunk_size=1024)
        assert as_rows(small.items) == as_rows(large.items)


class TestColumnarTransport:
    """The block transport (default) against the legacy packet transport."""

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_block_transport_matches_packet_transport(self, many_flow_packets, n_workers):
        pipeline = QoEPipeline.for_vca("teams")
        block_sink, block_report, _ = run_sharded(
            pipeline, many_flow_packets, n_workers, transport="block"
        )
        packet_sink, packet_report, _ = run_sharded(
            pipeline, many_flow_packets, n_workers, transport="packets"
        )
        assert as_rows(block_sink.items) == as_rows(packet_sink.items)
        assert block_report == packet_report
        assert block_report.n_packets == len(many_flow_packets)

    def test_trained_block_transport_bit_identical_to_single_process(
        self, many_flow_packets, trained_pipeline
    ):
        single = run_single(trained_pipeline, many_flow_packets)
        expected = as_rows(fan_in_order(single.items))
        for n_workers in (1, 2, 4):
            sink, _, _ = run_sharded(
                trained_pipeline, many_flow_packets, n_workers, transport="block"
            )
            assert as_rows(sink.items) == expected

    def test_rejects_unknown_transport(self, many_flow_packets):
        from repro import IteratorSource

        with pytest.raises(ValueError, match="transport"):
            ShardedQoEMonitor(
                QoEPipeline.for_vca("teams"),
                IteratorSource(iter(many_flow_packets)),
                transport="carrier-pigeon",
            )
