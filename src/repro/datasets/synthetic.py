"""Synthetic single-parameter impairment sweeps (Section 5.4, Table A.6).

Each sweep varies exactly one network parameter while holding the others at
their defaults, with four calls per parameter value.  The paper uses these
datasets to characterise how estimation errors respond to loss, latency,
jitter and throughput variation (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.collection import collect_call
from repro.netem.impairments import IMPAIRMENT_PROFILES, ImpairmentProfile, impairment_schedules
from repro.webrtc.profiles import VCA_NAMES
from repro.webrtc.session import CallResult

__all__ = ["SweepConfig", "build_impairment_sweep"]


@dataclass(frozen=True)
class SweepConfig:
    """Which impairment to sweep and at what scale."""

    profile_name: str = "packet_loss"
    calls_per_value: int = 4
    call_duration_s: int = 20
    vcas: tuple[str, ...] = VCA_NAMES
    seed: int = 31
    values: tuple[float, ...] | None = None  # default: the profile's values

    def __post_init__(self) -> None:
        if self.profile_name not in IMPAIRMENT_PROFILES:
            raise ValueError(
                f"unknown impairment profile {self.profile_name!r}; "
                f"known: {sorted(IMPAIRMENT_PROFILES)}"
            )
        if self.calls_per_value < 1:
            raise ValueError("calls_per_value must be >= 1")

    @property
    def profile(self) -> ImpairmentProfile:
        return IMPAIRMENT_PROFILES[self.profile_name]

    @property
    def swept_values(self) -> tuple[float, ...]:
        return self.values if self.values is not None else self.profile.values


def build_impairment_sweep(config: SweepConfig | None = None) -> dict[str, dict[float, list[CallResult]]]:
    """Run the sweep; returns ``{vca: {value: [CallResult, ...]}}``."""
    config = config if config is not None else SweepConfig()
    rng = np.random.default_rng(config.seed)
    profile = config.profile

    result: dict[str, dict[float, list[CallResult]]] = {}
    for vca in config.vcas:
        vca = vca.lower()
        per_value: dict[float, list[CallResult]] = {}
        for value in config.swept_values:
            calls = []
            for call_index in range(config.calls_per_value):
                schedule = impairment_schedules(profile, value, config.call_duration_s, rng=rng)
                calls.append(
                    collect_call(
                        vca=vca,
                        schedule=schedule,
                        duration_s=config.call_duration_s,
                        environment="lab",
                        seed=int(rng.integers(0, 2**31 - 1)),
                        call_id=f"{vca}-{config.profile_name}-{value:g}-{call_index}",
                    )
                )
            per_value[value] = calls
        result[vca] = per_value
    return result
