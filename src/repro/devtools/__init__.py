"""Project-specific static analysis: the invariant linter ("detlint").

Nine PRs of this repository's history established contracts that generic
linters cannot see: routing must never touch the salted builtin ``hash()``
(PR 3), forest aggregation must accumulate sequentially so batched and
per-window predictions stay bit-identical (PR 3), every wire codec is
explicitly little-endian (PRs 4-7), the telemetry plane must cost one falsy
branch when disabled (PR 8).  ``repro.devtools`` turns those contracts into
named, CI-gated AST rules that fail in seconds instead of flaking in a
four-worker migration test.

Usage::

    python -m repro.devtools.lint src/repro            # lint, text report
    python -m repro.devtools.lint --format json src/   # machine-readable
    python -m repro.devtools.lint --list-rules         # rule table

Suppress a single line with a trailing comment naming the rule and --
by convention, enforced in review -- the reason::

    buf = np.frombuffer(seg.buf, ...)  # detlint: disable=CODEC002 -- not wire decoding

The framework lives in :mod:`repro.devtools.framework` (single-pass engine,
rule registry, import tracker, suppressions), the rules in
:mod:`repro.devtools.rules`, the reporters in :mod:`repro.devtools.report`,
and the CLI in :mod:`repro.devtools.lint`.
"""

from repro.devtools.framework import (
    Finding,
    LintContext,
    Rule,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    rule,
)
from repro.devtools.report import render_json, render_text

# Importing the rules module registers every rule with the framework.
from repro.devtools import rules as _rules  # noqa: F401

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "rule",
]
