"""Figure 12: IP/UDP ML frame-rate MAE as the prediction window grows.

Paper shape: errors shrink as the window grows (misalignment averages out and
the target becomes smoother).
"""

import numpy as np

from benchmarks.conftest import N_ESTIMATORS, save_artifact
from repro.analysis.reporting import format_series
from repro.core.evaluation import EvaluationDataset, cross_validated_predictions
from repro.ml.metrics import mean_absolute_error

WINDOW_SIZES = (1, 2, 5)


def _window_sweep(lab_calls):
    mae = {vca: [] for vca in lab_calls}
    for vca, calls in lab_calls.items():
        for window_s in WINDOW_SIZES:
            dataset = EvaluationDataset.from_calls(calls, window_s=window_s)
            predictions = cross_validated_predictions(
                dataset, "ipudp_ml", "frame_rate", n_splits=3, n_estimators=N_ESTIMATORS
            )
            mae[vca].append(mean_absolute_error(dataset.ground_truth["frame_rate"], predictions))
    return mae


def test_fig12_prediction_window_sweep(benchmark, lab_calls):
    mae = benchmark.pedantic(_window_sweep, args=(lab_calls,), rounds=1, iterations=1)

    sections = [
        format_series(
            f"Figure 12 - IP/UDP ML frame-rate MAE vs prediction window ({vca}, in-lab)",
            WINDOW_SIZES,
            [round(v, 2) for v in series],
            x_label="window [s]",
            y_label="MAE [fps]",
        )
        for vca, series in mae.items()
    ]
    save_artifact("fig12_window_sweep", "\n\n".join(sections))

    for vca, series in mae.items():
        # Larger windows do not increase the error (allowing small noise).
        assert series[-1] <= series[0] * 1.25, vca
    mean_small = np.mean([series[0] for series in mae.values()])
    mean_large = np.mean([series[-1] for series in mae.values()])
    assert mean_large <= mean_small
