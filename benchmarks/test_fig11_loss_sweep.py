"""Figure 11 (and Table A.6): frame-rate MAE of IP/UDP ML under increasing
packet loss, using the controlled impairment sweeps of Section 5.4.

Paper shape: errors grow as loss grows (losses cause retransmissions and
reordering that IP/UDP features cannot fully disambiguate); the IP/UDP
Heuristic degrades even faster than the ML model.
"""

import numpy as np

from benchmarks.conftest import N_ESTIMATORS, save_artifact
from repro.analysis.reporting import format_series, format_table
from repro.core.evaluation import EvaluationDataset, cross_validated_predictions, heuristic_predictions
from repro.datasets.synthetic import SweepConfig, build_impairment_sweep
from repro.ml.metrics import mean_absolute_error
from repro.netem.impairments import IMPAIRMENT_PROFILES

LOSS_VALUES = (1.0, 5.0, 10.0, 20.0)


def _sweep_mae():
    sweep = build_impairment_sweep(
        SweepConfig(
            profile_name="packet_loss",
            calls_per_value=2,
            call_duration_s=15,
            values=LOSS_VALUES,
            seed=31,
        )
    )
    ml_mae = {vca: [] for vca in sweep}
    heuristic_mae = {vca: [] for vca in sweep}
    for vca, per_value in sweep.items():
        for value in LOSS_VALUES:
            dataset = EvaluationDataset.from_calls(per_value[value])
            truth = dataset.ground_truth["frame_rate"]
            predictions = cross_validated_predictions(
                dataset, "ipudp_ml", "frame_rate", n_splits=3, n_estimators=N_ESTIMATORS
            )
            ml_mae[vca].append(mean_absolute_error(truth, predictions))
            heuristic_mae[vca].append(
                mean_absolute_error(truth, heuristic_predictions(dataset, "ipudp_heuristic", "frame_rate"))
            )
    return ml_mae, heuristic_mae


def test_fig11_loss_sweep(benchmark):
    ml_mae, heuristic_mae = benchmark.pedantic(_sweep_mae, rounds=1, iterations=1)

    sections = [
        format_table(
            ["Impairment", "swept values"],
            [[name, str(profile.values)] for name, profile in IMPAIRMENT_PROFILES.items()],
            title="Table A.6 - impairment profiles",
        )
    ]
    for vca in ml_mae:
        sections.append(
            format_series(
                f"Figure 11 - IP/UDP ML frame-rate MAE vs packet loss ({vca})",
                LOSS_VALUES,
                [round(v, 2) for v in ml_mae[vca]],
                x_label="loss [%]",
                y_label="MAE [fps]",
            )
        )
        sections.append(
            format_series(
                f"(companion) IP/UDP Heuristic frame-rate MAE vs packet loss ({vca})",
                LOSS_VALUES,
                [round(v, 2) for v in heuristic_mae[vca]],
                x_label="loss [%]",
                y_label="MAE [fps]",
            )
        )
    save_artifact("fig11_loss_sweep", "\n\n".join(sections))

    for vca, series in ml_mae.items():
        assert all(np.isfinite(v) and v >= 0 for v in series), vca
        # At 20% loss the loss-sensitive heuristic is at least as bad as the ML model.
        assert heuristic_mae[vca][-1] >= series[-1] * 0.8, vca
    # The size-based heuristic degrades sharply with loss (retransmissions
    # create false frame boundaries): averaged across VCAs, MAE at 20% loss
    # clearly exceeds MAE at 1% loss.  (In this reproduction the ML model is
    # more loss-robust than the paper reports -- see EXPERIMENTS.md.)
    heuristic_low = np.mean([series[0] for series in heuristic_mae.values()])
    heuristic_high = np.mean([series[-1] for series in heuristic_mae.values()])
    assert heuristic_high > heuristic_low
