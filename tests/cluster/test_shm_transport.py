"""Shared-memory block transport tests: codec, ring, and the full monitor.

The pinned acceptance criteria of the PR 5 transport:

* the flat-buffer codec round-trips every block bit-identically, handing
  out zero-copy views on decode;
* :class:`~repro.cluster.shm.BlockRing` is a correct bounded SPSC ring
  (back-pressure on full, FIFO, slot reuse only after release);
* ``ShardedQoEMonitor(transport="shm")`` emits exactly the estimates of
  the ``"block"`` queue transport and the single-process monitor, in the
  same fan-in order, for N = 1, 2, 4 workers, heuristic and trained;
* no SharedMemory segment outlives a run -- normal exit, parent-side
  abort, and worker death included.
"""

from __future__ import annotations

import multiprocessing
import queue

import numpy as np
import pytest

from repro import CollectorSink, IteratorSource, QoEMonitor, QoEPipeline, ShardedQoEMonitor
from repro.cluster.fanin import flow_sort_key
from repro.cluster.shm import BlockRing, shm_available
from repro.cluster.worker import _WorkerChannel
from repro.net.block import PacketBlock
from repro.net.media import MediaType
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.rtp.header import RTPHeader

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable on this platform"
)

_COLUMNS = (
    "timestamps", "sizes", "src_codes", "dst_codes", "src_ports", "dst_ports",
    "protocols", "ttls", "total_lengths", "udp_lengths", "flow_codes",
)


def make_packet(timestamp=0.0, dst="10.0.0.1", dst_port=50000, size=1000, **extra):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="192.0.2.10", dst=dst),
        udp=UDPHeader(src_port=3478, dst_port=dst_port),
        payload_size=size,
        **extra,
    )


def make_block(n=32, n_flows=3, **extra) -> PacketBlock:
    return PacketBlock.from_packets(
        [
            make_packet(timestamp=0.01 * i, dst_port=50000 + i % n_flows, size=900 + i, **extra)
            for i in range(n)
        ],
        keep_packets=False,
    )


def encoded(block: PacketBlock) -> bytearray:
    buf = bytearray(block.byte_size())
    written = block.write_into(memoryview(buf))
    assert written == len(buf)
    return buf


def assert_blocks_equal(a: PacketBlock, b: PacketBlock) -> None:
    assert a.addresses == b.addresses
    assert a.flows == b.flows
    for name in _COLUMNS:
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype.itemsize == right.dtype.itemsize, name
        assert np.array_equal(left, right), name


def no_segment_leaked(names) -> bool:
    from multiprocessing import shared_memory

    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        segment.close()
        return False
    return True


class TestFlatBufferCodec:
    def test_round_trip_bit_identical(self):
        block = make_block()
        decoded = PacketBlock.read_from(memoryview(encoded(block)))
        assert_blocks_equal(block, decoded)
        assert decoded.media_codes is None and decoded.frame_ids is None
        assert decoded.rtp is None and not decoded.has_packet_cache

    def test_round_trip_optional_columns(self):
        block = PacketBlock.from_packets(
            [
                make_packet(timestamp=0.01 * i, media_type=MediaType.VIDEO if i % 2 else None,
                            frame_id=i if i % 3 else None)
                for i in range(1, 20)
            ]
        )
        decoded = PacketBlock.read_from(memoryview(encoded(block)))
        assert_blocks_equal(block, decoded)
        assert np.array_equal(decoded.media_codes, block.media_codes)
        assert np.array_equal(decoded.frame_ids, block.frame_ids)
        # Full fidelity through packet materialization too.
        assert [p.media_type for p in decoded.to_packets()] == [
            p.media_type for p in block.to_packets()
        ]

    def test_decode_is_zero_copy_views(self):
        buf = encoded(make_block())
        first = PacketBlock.read_from(memoryview(buf))
        second = PacketBlock.read_from(memoryview(buf))
        for name in _COLUMNS:
            assert getattr(first, name).base is not None, name
        # Two decodes of one buffer alias the same memory: proof of zero-copy.
        original = float(second.timestamps[0])
        first.timestamps[0] = original + 1.0
        assert second.timestamps[0] == original + 1.0

    def test_empty_block_round_trips(self):
        block = PacketBlock.from_packets([])
        decoded = PacketBlock.read_from(memoryview(encoded(block)))
        assert len(decoded) == 0 and decoded.flows == () and decoded.addresses == ()

    def test_rtp_blocks_are_not_flat_encodable(self):
        rtp = RTPHeader(payload_type=96, sequence_number=7, timestamp=90000, ssrc=1)
        block = PacketBlock.from_packets([make_packet(rtp=rtp)])
        with pytest.raises(ValueError, match="RTP"):
            block.byte_size()
        with pytest.raises(ValueError, match="RTP"):
            block.write_into(memoryview(bytearray(1 << 16)))

    def test_write_into_checks_capacity_and_read_checks_magic(self):
        block = make_block()
        with pytest.raises(ValueError, match="too small"):
            block.write_into(memoryview(bytearray(block.byte_size() - 8)))
        junk = bytearray(encoded(block))
        junk[:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            PacketBlock.read_from(memoryview(junk))

    def test_sliced_block_encodes_its_view(self):
        block = make_block(n=64)
        part = block[10:30].compact()
        decoded = PacketBlock.read_from(memoryview(encoded(part)))
        assert_blocks_equal(part, decoded)


class TestBlockRing:
    def _ring(self, slot_count=2, slot_bytes=8192):
        ctx = multiprocessing.get_context("spawn")
        ring = BlockRing.create(ctx, slot_count, slot_bytes)
        return ring, ring.handle().attach()

    def test_fifo_round_trip(self):
        ring, consumer = self._ring()
        try:
            blocks = [make_block(n=8 + i) for i in range(5)]
            for block in blocks:
                assert ring.try_push(block)
                popped = consumer.pop(timeout=1.0)
                assert_blocks_equal(block, popped)
                del popped
                consumer.release()
        finally:
            consumer.close()
            ring.close()
            ring.unlink()

    def test_backpressure_and_slot_reuse(self):
        ring, consumer = self._ring(slot_count=2)
        try:
            block = make_block()
            assert ring.try_push(block) and ring.try_push(block)
            assert not ring.try_push(block, timeout=0.05)  # full: producer blocks
            popped = consumer.pop(timeout=1.0)
            del popped
            consumer.release()
            assert ring.try_push(block, timeout=0.5)  # released slot is reusable
        finally:
            consumer.close()
            ring.close()
            ring.unlink()

    def test_pop_empty_times_out_and_release_requires_pop(self):
        ring, consumer = self._ring()
        try:
            assert consumer.pop(timeout=0.05) is None
            with pytest.raises(RuntimeError, match="no popped block"):
                consumer.release()
            assert ring.try_push(make_block())
            consumer.pop(timeout=1.0)
            with pytest.raises(RuntimeError, match="not released"):
                consumer.pop(timeout=0.05)
        finally:
            consumer.close()
            ring.close()
            ring.unlink()

    def test_oversized_block_raises_without_consuming_a_slot(self):
        ring, consumer = self._ring(slot_count=1, slot_bytes=1024)
        try:
            with pytest.raises(ValueError, match="exceeds"):
                ring.try_push(make_block(n=512))
            assert ring.try_push(make_block(n=4))  # the slot is still free
        finally:
            consumer.close()
            ring.close()
            ring.unlink()

    def test_close_tolerates_live_views_of_a_popped_slot(self):
        """The worker's error path closes the ring while its last decoded
        block is still in scope; close() must not raise a secondary
        BufferError over the still-exported slot view."""
        import gc

        ring, consumer = self._ring()
        name = ring.name
        assert ring.try_push(make_block())
        block = consumer.pop(timeout=1.0)  # intentionally kept alive
        consumer.close()
        ring.close()
        ring.unlink()
        assert no_segment_leaked([name])
        assert block is not None
        # Drop the views so the segments' deferred __del__ unmaps quietly.
        del block
        gc.collect()

    def test_unlink_reclaims_segment(self):
        ring, consumer = self._ring()
        name = ring.name
        consumer.close()
        ring.close()
        ring.unlink()
        assert no_segment_leaked([name])

    def test_create_validates_arguments(self):
        ctx = multiprocessing.get_context("spawn")
        with pytest.raises(ValueError, match="slot_count"):
            BlockRing.create(ctx, 0)
        with pytest.raises(ValueError, match="slot_bytes"):
            BlockRing.create(ctx, 2, slot_bytes=16)


def fan_in_order(items):
    return sorted(items, key=lambda item: (item.estimate.window_start, flow_sort_key(item.flow)))


def as_rows(items):
    return [(item.flow, item.estimate) for item in items]


def run_sharded(pipeline, packets, n_workers, **kwargs):
    sink = CollectorSink()
    monitor = ShardedQoEMonitor(
        pipeline, IteratorSource(iter(packets)), sinks=sink, n_workers=n_workers, **kwargs
    )
    report = monitor.run()
    return sink, report, monitor


def ring_names(monitor) -> list[str]:
    return [ring.name for ring in monitor._rings]


class TestShmTransportEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_matches_block_transport_and_single_process(self, many_flow_packets, n_workers):
        pipeline = QoEPipeline.for_vca("teams")
        single = CollectorSink()
        QoEMonitor(pipeline, IteratorSource(iter(many_flow_packets)), sinks=single).run()
        expected = as_rows(fan_in_order(single.items))

        shm_sink, shm_report, monitor = run_sharded(
            pipeline, many_flow_packets, n_workers, transport="shm"
        )
        block_sink, block_report, _ = run_sharded(
            pipeline, many_flow_packets, n_workers, transport="block"
        )
        assert as_rows(shm_sink.items) == as_rows(block_sink.items) == expected
        assert shm_report == block_report
        assert shm_report.n_packets == len(many_flow_packets)
        assert no_segment_leaked(ring_names(monitor))

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_trained_bit_identical(self, many_flow_packets, trained_pipeline, n_workers):
        single = CollectorSink()
        QoEMonitor(trained_pipeline, IteratorSource(iter(many_flow_packets)), sinks=single).run()
        expected = as_rows(fan_in_order(single.items))
        assert all(estimate.source == "ml" for _, estimate in expected)
        sink, _, monitor = run_sharded(
            trained_pipeline, many_flow_packets, n_workers, transport="shm"
        )
        # Dataclass equality on floats == bit-identical predictions, through
        # the flat-buffer codec and the ring.
        assert as_rows(sink.items) == expected
        assert no_segment_leaked(ring_names(monitor))

    def test_tiny_slots_split_blocks_without_changing_output(self, many_flow_packets):
        pipeline = QoEPipeline.for_vca("teams")
        small, _, monitor = run_sharded(
            pipeline, many_flow_packets, 2, transport="shm", shm_slot_bytes=2048
        )
        large, _, _ = run_sharded(pipeline, many_flow_packets, 2, transport="shm")
        assert as_rows(small.items) == as_rows(large.items)
        assert no_segment_leaked(ring_names(monitor))

    def test_rtp_blocks_fall_back_to_queue(self, many_flow_packets):
        """Blocks the codec refuses (RTP object columns) ride the queue."""
        rtp_packets = [
            make_packet(
                timestamp=0.01 * i,
                dst_port=50000 + i % 3,
                rtp=RTPHeader(payload_type=96, sequence_number=i % 65536,
                              timestamp=i * 3000, ssrc=42),
            )
            for i in range(400)
        ]
        pipeline = QoEPipeline.for_vca("teams")
        shm_sink, _, monitor = run_sharded(pipeline, rtp_packets, 2, transport="shm")
        block_sink, _, _ = run_sharded(pipeline, rtp_packets, 2, transport="block")
        assert as_rows(shm_sink.items) == as_rows(block_sink.items)
        assert len(shm_sink.items) > 0
        assert no_segment_leaked(ring_names(monitor))

    def test_queue_depth_validated_and_exposed(self, many_flow_packets):
        pipeline = QoEPipeline.for_vca("teams")
        with pytest.raises(ValueError, match="queue_depth"):
            ShardedQoEMonitor(
                pipeline, IteratorSource(iter(many_flow_packets)), queue_depth=0
            )
        # A depth-1 ring still produces identical output (maximal contention).
        deep, _, _ = run_sharded(pipeline, many_flow_packets, 2, transport="shm")
        shallow, _, _ = run_sharded(
            pipeline, many_flow_packets, 2, transport="shm", queue_depth=1
        )
        assert as_rows(shallow.items) == as_rows(deep.items)


class _RecordingQueue:
    """Wraps a worker's input queue, recording the kind of every message."""

    def __init__(self, inner, kinds):
        self._inner = inner
        self._kinds = kinds

    def put(self, message, timeout=None):
        self._kinds.append(message[0])
        self._inner.put(message, timeout=timeout)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _RecordingMonitor(ShardedQoEMonitor):
    """Records every worker->parent message the parent handles."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.reverse_messages = []

    def _handle(self, message):
        self.reverse_messages.append(message)
        super()._handle(message)


class TestZeroPickleReturnPath:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_queue_return_matches_ring_return(self, many_flow_packets, n_workers):
        pipeline = QoEPipeline.for_vca("teams")
        ring_sink, ring_report, monitor = run_sharded(
            pipeline, many_flow_packets, n_workers, transport="shm", shm_return="ring"
        )
        queue_sink, queue_report, _ = run_sharded(
            pipeline, many_flow_packets, n_workers, transport="shm", shm_return="queue"
        )
        assert as_rows(ring_sink.items) == as_rows(queue_sink.items)
        # Reports compare equal even though their transport telemetry differs
        # (ring mode has a "reverse" direction, queue mode does not): the
        # field is excluded from equality like wall_time_s.
        assert ring_report == queue_report
        assert "reverse" in ring_report.transport
        assert "reverse" not in queue_report.transport
        assert no_segment_leaked(ring_names(monitor))

    def test_batched_and_unbatched_slots_match(self, many_flow_packets):
        pipeline = QoEPipeline.for_vca("teams")
        batched, batched_report, monitor = run_sharded(
            pipeline, many_flow_packets, 2, transport="shm", chunk_size=16
        )
        unbatched, unbatched_report, _ = run_sharded(
            pipeline, many_flow_packets, 2, transport="shm", chunk_size=16,
            shm_batch_slots=False,
        )
        assert as_rows(batched.items) == as_rows(unbatched.items)
        assert batched_report == unbatched_report
        # Batching is what amortizes semaphore ops: with 16-packet chunks the
        # batched run must pack strictly more segments per slot...
        packed = batched_report.transport["forward"]
        single = unbatched_report.transport["forward"]
        assert packed["max_segments_per_slot"] > 1
        assert single["max_segments_per_slot"] == 1
        # ...and therefore burn fewer slots for the same segment stream.
        assert packed["slots_written"] < single["slots_written"]
        assert no_segment_leaked(ring_names(monitor))

    def test_tiny_return_slots_split_batches(self, many_flow_packets):
        # shm_slot_bytes applies to both directions: 1 KiB slots force the
        # return batcher to split tick batches across slots (and the forward
        # router to split blocks), without changing the merged output.
        pipeline = QoEPipeline.for_vca("teams")
        small, _, monitor = run_sharded(
            pipeline, many_flow_packets, 2, transport="shm", shm_slot_bytes=1024
        )
        large, _, _ = run_sharded(pipeline, many_flow_packets, 2, transport="shm")
        assert as_rows(small.items) == as_rows(large.items)
        assert no_segment_leaked(ring_names(monitor))

    def test_trained_ring_return_bit_identical(self, many_flow_packets, trained_pipeline):
        single = CollectorSink()
        QoEMonitor(trained_pipeline, IteratorSource(iter(many_flow_packets)), sinks=single).run()
        expected = as_rows(fan_in_order(single.items))
        sink, _, monitor = run_sharded(
            trained_pipeline, many_flow_packets, 2, transport="shm", shm_return="ring"
        )
        assert as_rows(sink.items) == expected
        assert no_segment_leaked(ring_names(monitor))

    def test_shm_return_validated(self, many_flow_packets):
        with pytest.raises(ValueError, match="shm_return"):
            ShardedQoEMonitor(
                QoEPipeline.for_vca("teams"),
                IteratorSource(iter(many_flow_packets)),
                shm_return="carrier-pigeon",
            )

    def test_transport_stats_surface(self, many_flow_packets):
        pipeline = QoEPipeline.for_vca("teams")
        _, report, monitor = run_sharded(
            pipeline, many_flow_packets, 2, transport="shm", chunk_size=32
        )
        for stats in monitor.shard_stats:
            for direction in ("forward", "reverse"):
                counters = stats["transport"][direction]
                assert counters["slots_written"] >= 1
                assert counters["segments_written"] >= counters["slots_written"]
                assert counters["max_segments_per_slot"] >= 1
                assert counters["occupancy_hwm"] >= 1
                assert counters["queue_fallbacks"] == 0
                assert counters["slot_reuses"] == max(
                    0, counters["slots_written"] - monitor.queue_depth
                )
        # The report aggregates: counts sum, high-water marks max.
        for direction in ("forward", "reverse"):
            per_shard = [stats["transport"][direction] for stats in monitor.shard_stats]
            agg = report.transport[direction]
            assert agg["slots_written"] == sum(c["slots_written"] for c in per_shard)
            assert agg["occupancy_hwm"] == max(c["occupancy_hwm"] for c in per_shard)

    def test_no_payload_crosses_a_queue(self, many_flow_packets, monkeypatch):
        """The zero-pickle pin: with flat-encodable traffic, both queues
        carry only slot tokens and control messages -- no PacketBlock, no
        estimate payload."""
        import repro.cluster.monitor as monitor_module
        from repro.cluster.worker import ShardWorker

        forward_kinds: list = []

        class RecordingWorker(ShardWorker):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.in_queue = _RecordingQueue(self.in_queue, forward_kinds)

        monkeypatch.setattr(monitor_module, "ShardWorker", RecordingWorker)
        sink = CollectorSink()
        monitor = _RecordingMonitor(
            QoEPipeline.for_vca("teams"),
            IteratorSource(iter(many_flow_packets)),
            sinks=sink,
            n_workers=2,
            transport="shm",
        )
        monitor.run()
        assert sink.items
        # Forward: slot tokens and the stop control, nothing else.
        assert "shm" in forward_kinds
        assert set(forward_kinds) <= {"shm", "stop"}
        # Reverse: slot tokens and the final done controls, nothing else --
        # and the done message's item list is empty (the tail rode the ring).
        kinds = {message[0] for message in monitor.reverse_messages}
        assert "est" in kinds
        assert kinds <= {"est", "done"}
        for message in monitor.reverse_messages:
            if message[0] == "done":
                assert message[2] == []


class _AbortSink(CollectorSink):
    """Raises once a few estimates have arrived: a parent-side abort."""

    def emit(self, item):
        super().emit(item)
        if len(self.items) >= 3:
            raise RuntimeError("synthetic sink failure")


class TestShmCleanup:
    def test_abort_mid_run_unlinks_segments(self, many_flow_packets):
        monitor = ShardedQoEMonitor(
            QoEPipeline.for_vca("teams"),
            IteratorSource(iter(many_flow_packets)),
            sinks=_AbortSink(),
            n_workers=2,
            transport="shm",
        )
        with pytest.raises(RuntimeError, match="synthetic sink failure"):
            monitor.run()
        # Both directions were attached (forward + reverse ring per shard)
        # and every segment was reclaimed despite the abort -- which exercises
        # the sink raising *inside* the return-slot decode.
        assert len(ring_names(monitor)) == 2 * monitor.n_workers
        assert no_segment_leaked(ring_names(monitor))

    def test_worker_death_raises_and_unlinks_segments(self, many_flow_packets):
        monitor_box: dict = {}

        def killing_source():
            for i, packet in enumerate(many_flow_packets):
                if i == len(many_flow_packets) // 4:
                    # SIGKILL one worker mid-run: no atexit, no cleanup on its
                    # side -- the parent alone must reclaim the segments.
                    victim = monitor_box["monitor"]._workers[0].process
                    victim.kill()
                    victim.join(5.0)
                yield packet

        monitor = ShardedQoEMonitor(
            QoEPipeline.for_vca("teams"),
            IteratorSource(killing_source()),
            sinks=CollectorSink(),
            n_workers=2,
            transport="shm",
            queue_depth=2,  # small ring: the parent hits the dead shard fast
        )
        monitor_box["monitor"] = monitor
        with pytest.raises(RuntimeError, match="shard worker"):
            monitor.run()
        # The SIGKILLed worker had both a forward and a reverse ring attached
        # untracked; the parent alone reclaimed all of them.
        assert len(ring_names(monitor)) == 2 * monitor.n_workers
        assert no_segment_leaked(ring_names(monitor))

    def test_shm_transport_requires_availability_flag(self, many_flow_packets, monkeypatch):
        import repro.cluster.monitor as monitor_module

        monkeypatch.setattr(monitor_module, "shm_available", lambda: False)
        with pytest.raises(RuntimeError, match="shared_memory"):
            ShardedQoEMonitor(
                QoEPipeline.for_vca("teams"),
                IteratorSource(iter(many_flow_packets)),
                transport="shm",
            )


class TestWorkerChannelProtocol:
    """The worker output protocol is linear: progress* -> done | error."""

    def test_progress_after_done_raises(self):
        out: queue.Queue = queue.Queue()
        channel = _WorkerChannel(3, out)
        channel.progress([], 1.0)
        channel.estimates_ready()
        channel.migrated(1, [], None, [])
        channel.migrate_ack(1)
        channel.done([], {})
        with pytest.raises(RuntimeError, match="progress after done"):
            channel.progress([], 2.0)
        with pytest.raises(RuntimeError, match="progress after done"):
            channel.estimates_ready()
        with pytest.raises(RuntimeError, match="migration after done"):
            channel.migrated(2, [], None, [])
        with pytest.raises(RuntimeError, match="migration after done"):
            channel.migrate_ack(2)
        with pytest.raises(RuntimeError, match="done twice"):
            channel.done([], {})
        kinds = []
        while not out.empty():
            kinds.append(out.get_nowait()[0])
        assert kinds == ["progress", "est", "migrated", "migrate_ack", "done"]

    def test_progress_and_est_carry_optional_load(self):
        out: queue.Queue = queue.Queue()
        channel = _WorkerChannel(0, out)
        load = {"live_flows": 2, "buffered_packets": 7, "open_windows": 3}
        channel.progress([], 1.0, load)
        channel.estimates_ready(load)
        channel.progress([], 2.0)
        assert out.get_nowait() == ("progress", 0, [], 1.0, load)
        assert out.get_nowait() == ("est", 0, load)
        assert out.get_nowait() == ("progress", 0, [], 2.0, None)
