"""Packet trace container.

:class:`PacketTrace` is the central data structure of the reproduction: the
simulator produces one per call, the dataset builders persist them to pcap,
and every estimator consumes them.  It keeps packets sorted by arrival time
and provides the slicing/windowing/statistics primitives that the feature
extraction (Table 1) and the heuristics need.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.net.packet import MediaType, Packet

__all__ = ["PacketTrace", "TraceStats", "window_grid"]


def window_grid(start: float, window_s: float, end: float):
    """Yield ``(k, t, next_t)`` for consecutive windows covering ``[start, end)``.

    The single source of truth for the drift-free window grid: boundaries are
    computed as ``start + k * window_s`` (index multiplication, no float
    accumulation) and each window's upper bound *is* the next window's start,
    so on fractional grids no timestamp can be double-counted or dropped.
    Every windowing code path (batch slicing, heuristic attribution, the
    streaming engine's ``window_index``) must agree with this arithmetic to
    the last ulp.
    """
    if window_s <= 0:
        raise ValueError("window must be positive")
    k = 0
    t = start
    while t < end:
        next_t = start + (k + 1) * window_s
        yield k, t, next_t
        k += 1
        t = next_t


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics for a trace (or a slice of one)."""

    n_packets: int
    n_bytes: int
    duration: float
    start_time: float
    end_time: float
    mean_packet_size: float
    mean_interarrival: float

    @property
    def throughput_bps(self) -> float:
        """Average throughput in bits per second over the trace duration."""
        if self.duration <= 0:
            return 0.0
        return 8.0 * self.n_bytes / self.duration


class PacketTrace:
    """An ordered sequence of packets belonging to one capture.

    Packets are kept sorted by timestamp; out-of-order insertion is allowed
    and re-sorted lazily, mirroring the fact that a passive monitor records
    packets in arrival order even when the RTP sequence numbers say otherwise.
    """

    def __init__(self, packets: Iterable[Packet] = (), vca: str | None = None) -> None:
        self._packets: list[Packet] = sorted(packets, key=lambda p: p.timestamp)
        self.vca = vca
        #: Cached timestamp array for O(log n) slicing; rebuilt after mutation.
        self._times: np.ndarray | None = None

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return PacketTrace(self._packets[index], vca=self.vca)
        return self._packets[index]

    def __bool__(self) -> bool:
        return bool(self._packets)

    # -- construction ---------------------------------------------------------

    def append(self, packet: Packet) -> None:
        """Add a packet, preserving timestamp order."""
        if self._packets and packet.timestamp < self._packets[-1].timestamp:
            position = bisect_left([p.timestamp for p in self._packets], packet.timestamp)
            self._packets.insert(position, packet)
        else:
            self._packets.append(packet)
        self._times = None

    def extend(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.append(packet)

    @classmethod
    def from_pcap(cls, path: str | Path, vca: str | None = None, parse_rtp: bool = True) -> "PacketTrace":
        """Load a trace from a pcap file (see :mod:`repro.net.pcap`)."""
        from repro.net.pcap import read_pcap

        return cls(read_pcap(path, parse_rtp=parse_rtp), vca=vca)

    def to_pcap(self, path: str | Path) -> int:
        """Persist the trace to a pcap file; returns the number of records."""
        from repro.net.pcap import write_pcap

        return write_pcap(path, self._packets)

    # -- views ----------------------------------------------------------------

    @property
    def packets(self) -> list[Packet]:
        return list(self._packets)

    def _timestamps_cached(self) -> np.ndarray:
        """The timestamp array, cached across calls (invalidated on mutation)."""
        if self._times is None or len(self._times) != len(self._packets):
            self._times = np.fromiter(
                (p.timestamp for p in self._packets), dtype=float, count=len(self._packets)
            )
        return self._times

    @property
    def timestamps(self) -> np.ndarray:
        return self._timestamps_cached().copy()

    @property
    def sizes(self) -> np.ndarray:
        return np.array([p.payload_size for p in self._packets], dtype=float)

    @property
    def start_time(self) -> float:
        if not self._packets:
            return 0.0
        return self._packets[0].timestamp

    @property
    def end_time(self) -> float:
        if not self._packets:
            return 0.0
        return self._packets[-1].timestamp

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def filter(self, predicate) -> "PacketTrace":
        """A new trace containing only packets for which ``predicate`` is true."""
        return PacketTrace((p for p in self._packets if predicate(p)), vca=self.vca)

    def filter_media(self, *media_types: MediaType) -> "PacketTrace":
        """Ground-truth media filter (evaluation only)."""
        wanted = set(media_types)
        return self.filter(lambda p: p.media_type in wanted)

    def without_rtp(self) -> "PacketTrace":
        """The trace as seen by an IP/UDP-only monitor (RTP headers stripped)."""
        return PacketTrace((p.without_rtp() for p in self._packets), vca=self.vca)

    def without_ground_truth(self) -> "PacketTrace":
        """The trace with simulator annotations removed."""
        return PacketTrace((p.without_ground_truth() for p in self._packets), vca=self.vca)

    def time_slice(self, start: float, end: float) -> "PacketTrace":
        """Packets with ``start <= timestamp < end`` (binary search, O(log n)).

        The timestamp array is cached on the trace, so repeated slicing (as in
        windowing) costs O(log n + k) per call rather than O(n).
        """
        times = self._timestamps_cached()
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="left"))
        return PacketTrace(self._packets[lo:hi], vca=self.vca)

    def shifted(self, offset: float) -> "PacketTrace":
        """A copy with every timestamp shifted by ``offset`` seconds."""
        from dataclasses import replace

        return PacketTrace(
            (replace(p, timestamp=p.timestamp + offset) for p in self._packets),
            vca=self.vca,
        )

    def normalized(self) -> "PacketTrace":
        """A copy with timestamps re-based so the first packet arrives at t=0."""
        if not self._packets:
            return PacketTrace([], vca=self.vca)
        return self.shifted(-self.start_time)

    # -- statistics -----------------------------------------------------------

    def interarrival_times(self) -> np.ndarray:
        """Consecutive arrival-time differences (empty for <2 packets)."""
        if len(self._packets) < 2:
            return np.array([], dtype=float)
        return np.diff(self.timestamps)

    def stats(self) -> TraceStats:
        """Aggregate statistics for the whole trace."""
        if not self._packets:
            return TraceStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        sizes = self.sizes
        iats = self.interarrival_times()
        return TraceStats(
            n_packets=len(self._packets),
            n_bytes=int(sizes.sum()),
            duration=self.duration,
            start_time=self.start_time,
            end_time=self.end_time,
            mean_packet_size=float(sizes.mean()),
            mean_interarrival=float(iats.mean()) if len(iats) else 0.0,
        )

    def iter_windows(self, window: float, start: float | None = None, end: float | None = None):
        """Yield ``(window_start, PacketTrace)`` pairs covering [start, end).

        Windows are aligned to ``start`` (default: trace start) and have a
        fixed duration; empty windows are yielded too so that per-second
        estimates line up with the webrtc-internals ground truth rows even
        when no packets arrived in a second.
        """
        if window <= 0:
            raise ValueError("window must be positive")
        if not self._packets:
            return
        if start is None:
            start = self.start_time
        if end is None:
            end = self.end_time
        times = self._timestamps_cached()
        for _, t, next_t in window_grid(start, window, end):
            lo = int(np.searchsorted(times, t, side="left"))
            hi = int(np.searchsorted(times, next_t, side="left"))
            yield t, PacketTrace(self._packets[lo:hi], vca=self.vca)
