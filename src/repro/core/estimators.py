"""ML-based QoE estimators (Section 3.2.2 and 3.3).

:class:`IPUDPMLEstimator` trains one random forest per QoE metric on the 14
IP/UDP features; :class:`RTPMLEstimator` does the same on the RTP feature
set.  Frame rate, bitrate and frame jitter are regression targets; resolution
is a classification target over heights (or the Teams low/medium/high bins).

Both estimators share the same interface so the evaluation and benchmark code
can treat all four methods (two heuristics, two ML models) uniformly.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.features import (
    IPUDP_FEATURE_NAMES,
    RTP_FEATURE_NAMES,
    extract_ipudp_features,
    extract_rtp_features,
)
from repro.core.media import MediaClassifier
from repro.core.resolution import ResolutionBin, ResolutionBinner
from repro.core.windows import WindowedTrace
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.net.media import MediaType
from repro.rtp.payload_types import PayloadTypeMap
from repro.webrtc.profiles import VCAProfile

__all__ = [
    "REGRESSION_METRICS",
    "ALL_METRICS",
    "MLEstimateRow",
    "BaseMLEstimator",
    "IPUDPMLEstimator",
    "RTPMLEstimator",
    "ESTIMATOR_FORMAT",
    "ESTIMATOR_FORMAT_VERSION",
]

#: Identifier and schema version of the on-disk estimator format.
ESTIMATOR_FORMAT = "repro-qoe-estimator"
ESTIMATOR_FORMAT_VERSION = 1

#: The three regression targets.
REGRESSION_METRICS: tuple[str, ...] = ("frame_rate", "bitrate", "frame_jitter")
#: All four QoE metrics (resolution is a classification target).
ALL_METRICS: tuple[str, ...] = REGRESSION_METRICS + ("resolution",)


@dataclass(frozen=True)
class MLEstimateRow:
    """Per-window predictions from an ML estimator."""

    window_start: float
    frame_rate: float
    bitrate_kbps: float
    frame_jitter_ms: float
    resolution: str | None

    def metric(self, name: str):
        if name == "frame_rate":
            return self.frame_rate
        if name == "bitrate":
            return self.bitrate_kbps
        if name == "frame_jitter":
            return self.frame_jitter_ms
        if name == "resolution":
            return self.resolution
        raise ValueError(f"unknown metric: {name!r}")


@dataclass
class _ForestParams:
    """Hyper-parameters shared by all per-metric forests."""

    n_estimators: int = 30
    max_depth: int | None = 12
    min_samples_leaf: int = 2
    random_state: int = 0


class BaseMLEstimator:
    """Shared fit/predict machinery for the two ML estimators."""

    #: Human-readable feature names, set by subclasses.
    feature_names: tuple[str, ...] = ()

    def __init__(
        self,
        resolution_binner: ResolutionBinner | None = None,
        n_estimators: int = 30,
        max_depth: int | None = 12,
        min_samples_leaf: int = 2,
        random_state: int = 0,
    ) -> None:
        self.resolution_binner = resolution_binner if resolution_binner is not None else ResolutionBinner(None)
        self.params = _ForestParams(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            random_state=random_state,
        )
        self.regressors_: dict[str, RandomForestRegressor] = {}
        self.classifier_: RandomForestClassifier | None = None

    # -- feature extraction (subclass hook) ------------------------------------

    def features_for_window(self, window: WindowedTrace) -> np.ndarray:
        raise NotImplementedError

    def feature_matrix(self, windows: list[WindowedTrace]) -> np.ndarray:
        """Stack per-window feature vectors into a design matrix."""
        if not windows:
            raise ValueError("need at least one window")
        return np.vstack([self.features_for_window(w) for w in windows])

    # -- training ---------------------------------------------------------------

    def _make_regressor(self) -> RandomForestRegressor:
        return RandomForestRegressor(
            n_estimators=self.params.n_estimators,
            max_depth=self.params.max_depth,
            min_samples_leaf=self.params.min_samples_leaf,
            max_features="sqrt",
            random_state=self.params.random_state,
        )

    def _make_classifier(self) -> RandomForestClassifier:
        return RandomForestClassifier(
            n_estimators=self.params.n_estimators,
            max_depth=self.params.max_depth,
            min_samples_leaf=self.params.min_samples_leaf,
            max_features="sqrt",
            random_state=self.params.random_state,
        )

    def fit(self, X: np.ndarray, targets: dict[str, np.ndarray]) -> "BaseMLEstimator":
        """Train one model per metric present in ``targets``.

        ``targets`` maps metric names ("frame_rate", "bitrate", "frame_jitter",
        "resolution") to per-window target arrays aligned with the rows of
        ``X``.  Resolution targets are class labels (already binned).
        """
        X = np.asarray(X, dtype=float)
        for metric, y in targets.items():
            if metric == "resolution":
                classifier = self._make_classifier()
                classifier.fit(X, np.asarray(y))
                self.classifier_ = classifier
            elif metric in REGRESSION_METRICS:
                regressor = self._make_regressor()
                regressor.fit(X, np.asarray(y, dtype=float))
                self.regressors_[metric] = regressor
            else:
                raise ValueError(f"unknown metric: {metric!r}")
        return self

    def fit_windows(self, windows: list[WindowedTrace], targets: dict[str, np.ndarray]) -> "BaseMLEstimator":
        return self.fit(self.feature_matrix(windows), targets)

    # -- prediction --------------------------------------------------------------

    def _check_fitted(self, metric: str) -> None:
        if metric == "resolution":
            if self.classifier_ is None:
                raise RuntimeError("resolution model is not fitted")
        elif metric not in self.regressors_:
            raise RuntimeError(f"model for metric {metric!r} is not fitted")

    def predict_metric(self, X: np.ndarray, metric: str) -> np.ndarray:
        """Predict one metric for a design matrix."""
        self._check_fitted(metric)
        X = np.asarray(X, dtype=float)
        if metric == "resolution":
            assert self.classifier_ is not None
            return self.classifier_.predict(X)
        predictions = self.regressors_[metric].predict(X)
        # QoE metrics are non-negative by definition.
        return np.maximum(predictions, 0.0)

    def predict_rows(self, X: np.ndarray, window_starts) -> list[MLEstimateRow]:
        """Per-window estimate rows for a design matrix.

        The single metric-to-field mapping shared by the batch
        (:meth:`predict_windows`) and streaming
        (:meth:`~repro.core.streaming.StreamingQoEPipeline`) paths: unfitted
        regression metrics become NaN, resolution ``None`` without a
        classifier.
        """
        columns: dict[str, np.ndarray] = {}
        for metric in self.regressors_:
            columns[metric] = self.predict_metric(X, metric)
        if self.classifier_ is not None:
            columns["resolution"] = self.predict_metric(X, "resolution")
        rows = []
        for i, window_start in enumerate(window_starts):
            rows.append(
                MLEstimateRow(
                    window_start=window_start,
                    frame_rate=float(columns["frame_rate"][i]) if "frame_rate" in columns else float("nan"),
                    bitrate_kbps=float(columns["bitrate"][i]) if "bitrate" in columns else float("nan"),
                    frame_jitter_ms=float(columns["frame_jitter"][i]) if "frame_jitter" in columns else float("nan"),
                    resolution=str(columns["resolution"][i]) if "resolution" in columns else None,
                )
            )
        return rows

    def predict_windows(self, windows: list[WindowedTrace]) -> list[MLEstimateRow]:
        """Full per-window estimates for every fitted metric."""
        X = self.feature_matrix(windows)
        return self.predict_rows(X, [window.start for window in windows])

    def predict_many(self, feature_rows, window_starts) -> list[MLEstimateRow]:
        """Batched inference over per-window feature vectors.

        ``feature_rows`` is a sequence of 1-D feature vectors (one per
        window, not necessarily from the same flow); each per-metric forest
        runs once over the stacked matrix instead of once per window.  Row
        independence in the trees makes the result bit-identical to calling
        :meth:`predict_rows` per row -- pinned by the cluster tests -- so
        callers may batch freely for throughput without changing estimates.
        """
        if len(feature_rows) == 0:
            return []
        return self.predict_rows(np.vstack(feature_rows), list(window_starts))

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> dict:
        """Versioned, JSON-serializable snapshot of the trained estimator.

        Includes every per-metric forest, the feature schema (ordered feature
        names), forest hyper-parameters, the resolution binner, and
        subclass-specific configuration (:meth:`_extra_state`).  Floats
        round-trip bit-identically through JSON, so
        ``from_dict(to_dict())`` predicts exactly what the original does.
        """
        bins = self.resolution_binner.bins
        return {
            "format": ESTIMATOR_FORMAT,
            "version": ESTIMATOR_FORMAT_VERSION,
            "estimator": type(self).__name__,
            "feature_names": list(self.feature_names),
            "params": asdict(self.params),
            "resolution_bins": (
                None if bins is None else [[b.label, b.lower, b.upper] for b in bins]
            ),
            "regressors": {metric: forest.to_dict() for metric, forest in self.regressors_.items()},
            "classifier": self.classifier_.to_dict() if self.classifier_ is not None else None,
            "extra": self._extra_state(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BaseMLEstimator":
        """Inverse of :meth:`to_dict`.

        Call on :class:`BaseMLEstimator` to dispatch on the serialized
        estimator name, or on a concrete subclass to additionally enforce the
        type.
        """
        if data.get("format") != ESTIMATOR_FORMAT:
            raise ValueError(f"not a serialized QoE estimator (format {data.get('format')!r})")
        if data.get("version") != ESTIMATOR_FORMAT_VERSION:
            raise ValueError(
                f"unsupported estimator format version {data.get('version')!r} "
                f"(this build reads version {ESTIMATOR_FORMAT_VERSION})"
            )
        name = data.get("estimator")
        target = cls._resolve_estimator_class(name)
        if cls is not BaseMLEstimator and target is not cls:
            raise ValueError(f"serialized estimator is a {name}, expected {cls.__name__}")
        if list(data["feature_names"]) != list(target.feature_names):
            raise ValueError(
                f"feature schema mismatch: model was trained on {data['feature_names']}, "
                f"this build extracts {list(target.feature_names)}"
            )
        bins = data["resolution_bins"]
        binner = ResolutionBinner(
            None if bins is None else tuple(ResolutionBin(label, lower, upper) for label, lower, upper in bins)
        )
        estimator = target._construct(data["extra"], resolution_binner=binner, **data["params"])
        estimator.regressors_ = {
            metric: RandomForestRegressor.from_dict(forest)
            for metric, forest in data["regressors"].items()
        }
        if data["classifier"] is not None:
            estimator.classifier_ = RandomForestClassifier.from_dict(data["classifier"])
        return estimator

    def save(self, path: str | Path) -> Path:
        """Persist the trained estimator to ``path`` as versioned JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict()))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "BaseMLEstimator":
        """Reconstruct an estimator saved with :meth:`save` (bit-identical predictions)."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    @staticmethod
    def _resolve_estimator_class(name: str) -> "type[BaseMLEstimator]":
        known = {sub.__name__: sub for sub in BaseMLEstimator.__subclasses__()}
        if name not in known:
            raise ValueError(f"unknown serialized estimator type {name!r} (known: {sorted(known)})")
        return known[name]

    def _extra_state(self) -> dict:
        """Subclass-specific serialized configuration (hook)."""
        return {}

    @classmethod
    def _construct(cls, extra: dict, **kwargs) -> "BaseMLEstimator":
        """Build an unfitted instance from :meth:`_extra_state` output (hook)."""
        return cls(**kwargs)

    # -- interpretation -----------------------------------------------------------

    def feature_importances(self, metric: str) -> dict[str, float]:
        """Impurity-based feature importances for one metric's model."""
        self._check_fitted(metric)
        if metric == "resolution":
            assert self.classifier_ is not None
            importances = self.classifier_.feature_importances_
        else:
            importances = self.regressors_[metric].feature_importances_
        assert importances is not None
        return dict(zip(self.feature_names, importances.tolist()))

    def top_features(self, metric: str, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` most important features for ``metric`` (Figures 5, 7, 9)."""
        importances = self.feature_importances(metric)
        ranked = sorted(importances.items(), key=lambda item: item[1], reverse=True)
        return ranked[:k]


class IPUDPMLEstimator(BaseMLEstimator):
    """Random forests over the 14 IP/UDP features (the paper's IP/UDP ML)."""

    feature_names = IPUDP_FEATURE_NAMES

    def __init__(self, classifier: MediaClassifier | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.media_classifier = classifier if classifier is not None else MediaClassifier()

    @classmethod
    def for_profile(cls, profile: VCAProfile, **kwargs) -> "IPUDPMLEstimator":
        from repro.core.resolution import binner_for_vca

        return cls(
            classifier=MediaClassifier(video_size_threshold=profile.video_size_threshold),
            resolution_binner=binner_for_vca(profile.name),
            **kwargs,
        )

    def features_for_window(self, window: WindowedTrace) -> np.ndarray:
        return extract_ipudp_features(window, classifier=self.media_classifier)

    def _extra_state(self) -> dict:
        return {
            "media_classifier": {
                "video_size_threshold": self.media_classifier.video_size_threshold,
                "keepalive_size": self.media_classifier.keepalive_size,
            }
        }

    @classmethod
    def _construct(cls, extra: dict, **kwargs) -> "IPUDPMLEstimator":
        return cls(classifier=MediaClassifier(**extra["media_classifier"]), **kwargs)


class RTPMLEstimator(BaseMLEstimator):
    """Random forests over RTP-header features plus flow statistics."""

    feature_names = RTP_FEATURE_NAMES

    def __init__(self, payload_types: PayloadTypeMap, **kwargs) -> None:
        super().__init__(**kwargs)
        self.payload_types = payload_types

    @classmethod
    def for_profile(cls, profile: VCAProfile, environment: str = "lab", **kwargs) -> "RTPMLEstimator":
        from repro.core.resolution import binner_for_vca

        return cls(
            payload_types=profile.payload_types_for(environment),
            resolution_binner=binner_for_vca(profile.name),
            **kwargs,
        )

    def features_for_window(self, window: WindowedTrace) -> np.ndarray:
        return extract_rtp_features(window, self.payload_types)

    def _extra_state(self) -> dict:
        pt = self.payload_types
        return {
            "payload_types": {
                "audio": pt.audio,
                "video": pt.video,
                "video_rtx": pt.video_rtx,
                "extra": {str(number): media.name for number, media in pt.extra.items()},
            }
        }

    @classmethod
    def _construct(cls, extra: dict, **kwargs) -> "RTPMLEstimator":
        spec = extra["payload_types"]
        payload_types = PayloadTypeMap(
            audio=spec["audio"],
            video=spec["video"],
            video_rtx=spec["video_rtx"],
            extra={int(number): MediaType[name] for number, name in spec["extra"].items()},
        )
        return cls(payload_types=payload_types, **kwargs)
