"""Throughput benchmark: shared-memory block rings vs the pickling queue.

The PR 4 columnar transport made the sharded monitor's wire format cheap
(array pickling instead of packet objects), but the 1-worker configuration
was still serialization/queue-dominated: every block is pickled into a pipe
and unpickled on the far side.  The PR 5 ``transport="shm"`` flat-encodes
each routed block straight into a per-shard shared-memory ring slot and the
worker decodes zero-copy array views in place -- the payload is written
once and never copied again.

Measured configurations (same synthetic many-flow vantage trace as
``BENCH_sharded``):

* ``ShardedQoEMonitor`` with **1 worker, queue block transport** -- the
  PR 4 baseline this PR attacks;
* ``ShardedQoEMonitor`` with **1 worker, shm transport** -- isolates the
  transport swap; the floor (``MIN_SPEEDUP``, default 1.5x) is enforced on
  multi-core runners, where parent and worker genuinely overlap.  On a
  single core the two processes time-share one CPU, transport savings are
  largely masked, and the numbers are recorded without a floor;
* ``ShardedQoEMonitor`` with **N > 1 workers, shm transport** -- the
  scale-out path over rings.

The result is written to ``benchmarks/results/BENCH_shm.json``.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from conftest import RESULTS_DIR, enforced_floor, save_artifact
from repro import CollectorSink, IteratorSource, QoEPipeline, ShardedQoEMonitor
from repro.cluster.shm import shm_available
from repro.net.packet import IPv4Header, Packet, UDPHeader

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable on this platform"
)

_SMOKE = "BENCH_SMOKE_DURATION_S" in os.environ
TRACE_DURATION_S = float(os.environ.get("BENCH_SMOKE_DURATION_S", 60.0))
N_FLOWS = 8
MULTI_WORKERS = 2
_CPUS = os.cpu_count() or 1
#: 1-worker shm pps must reach this multiple of the 1-worker queue block
#: transport.  Genuine transport overlap needs >1 core; on serial hardware
#: the numbers are recorded but the floor is vacuous.  The JSON artifact
#: records exactly this (enforced) value.
MIN_SPEEDUP = enforced_floor("BENCH_SHM_MIN_SPEEDUP", 1.5)
_ARTIFACT_NAME = "BENCH_shm_smoke" if _SMOKE else "BENCH_shm"

_measured: dict[str, float] = {}
_counts: dict[str, int] = {}


def _synthetic_session(seed: int, client_ip: str, client_port: int) -> list[Packet]:
    """One VCA-like downlink flow: ~25 fps fragmented video bursts."""
    rng = np.random.default_rng(seed)
    ip = IPv4Header(src="192.0.2.10", dst=client_ip)
    udp = UDPHeader(src_port=3478, dst_port=client_port)
    packets: list[Packet] = []
    t = float(rng.uniform(0.0, 0.02))
    while t < TRACE_DURATION_S:
        size = int(rng.integers(700, 1200))
        for i in range(int(rng.integers(2, 5))):
            packets.append(Packet(timestamp=t + i * 0.0008, ip=ip, udp=udp, payload_size=size))
        t += float(rng.normal(0.04, 0.004))
    return packets


@pytest.fixture(scope="module")
def vantage_trace() -> list[Packet]:
    """N_FLOWS interleaved sessions, as one capture point would see them."""
    flows = [
        _synthetic_session(seed, f"10.0.0.{seed + 1}", 50000 + seed) for seed in range(N_FLOWS)
    ]
    return sorted((p for flow in flows for p in flow), key=lambda p: p.timestamp)


def _run_sharded(packets: list[Packet], n_workers: int, transport: str) -> int:
    sink = CollectorSink()
    report = ShardedQoEMonitor(
        QoEPipeline.for_vca("teams"),
        IteratorSource(iter(packets)),
        sinks=sink,
        n_workers=n_workers,
        transport=transport,
    ).run()
    assert report.n_flows == N_FLOWS
    return report.n_estimates


def test_benchmark_queue_block_one_worker(benchmark, vantage_trace):
    n_estimates = benchmark.pedantic(
        _run_sharded, args=(vantage_trace, 1, "block"), rounds=2, iterations=1
    )
    _counts["queue_1w"] = n_estimates
    if benchmark.stats is not None:
        _measured["queue_1w_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_shm_one_worker(benchmark, vantage_trace):
    n_estimates = benchmark.pedantic(
        _run_sharded, args=(vantage_trace, 1, "shm"), rounds=2, iterations=1
    )
    _counts["shm_1w"] = n_estimates
    if benchmark.stats is not None:
        _measured["shm_1w_s"] = float(benchmark.stats.stats.mean)


def test_benchmark_shm_multi_worker(benchmark, vantage_trace):
    n_estimates = benchmark.pedantic(
        _run_sharded, args=(vantage_trace, MULTI_WORKERS, "shm"), rounds=2, iterations=1
    )
    _counts["shm_multi"] = n_estimates
    if benchmark.stats is not None:
        _measured["shm_multi_s"] = float(benchmark.stats.stats.mean)


def test_shm_speedup_and_artifact(vantage_trace):
    needed = {"queue_1w_s", "shm_1w_s", "shm_multi_s"}
    if not needed <= _measured.keys():
        pytest.skip("benchmark timings unavailable (benchmarks disabled?)")
    # Every transport saw the same work and produced every estimate.
    assert _counts["queue_1w"] == _counts["shm_1w"] == _counts["shm_multi"]

    n_packets = len(vantage_trace)
    queue_pps = n_packets / _measured["queue_1w_s"]
    shm_pps = n_packets / _measured["shm_1w_s"]
    multi_pps = n_packets / _measured["shm_multi_s"]
    speedup = shm_pps / queue_pps

    sharded_reference = None
    reference_path = RESULTS_DIR / "BENCH_sharded.json"
    if reference_path.exists():
        sharded_reference = json.loads(reference_path.read_text()).get(
            "sharded_1_worker_packets_per_s"
        )

    payload = {
        "benchmark": "shm_transport",
        "trace": {
            "duration_s": TRACE_DURATION_S,
            "n_packets": n_packets,
            "n_flows": N_FLOWS,
        },
        "cpu_count": _CPUS,
        "multi_workers": MULTI_WORKERS,
        "queue_block_1_worker_packets_per_s": round(queue_pps, 1),
        "shm_1_worker_packets_per_s": round(shm_pps, 1),
        "shm_multi_worker_packets_per_s": round(multi_pps, 1),
        "shm_vs_queue_1_worker_speedup": round(speedup, 2),
        "min_speedup_floor": MIN_SPEEDUP,
        "sharded_reference_1_worker_packets_per_s": sharded_reference,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{_ARTIFACT_NAME}.json").write_text(json.dumps(payload, indent=2) + "\n")
    save_artifact(
        _ARTIFACT_NAME,
        "\n".join(
            [
                f"Shared-memory transport throughput ({TRACE_DURATION_S:.0f}s, {N_FLOWS}-flow synthetic trace, {_CPUS} CPUs)",
                f"  packets:                     {n_packets}",
                f"  1 worker, queue (block):     {queue_pps:12.0f} packets/s",
                f"  1 worker, shm ring:          {shm_pps:12.0f} packets/s",
                f"  {MULTI_WORKERS} workers, shm ring:         {multi_pps:12.0f} packets/s",
                f"  shm-vs-queue speedup (1w):   {speedup:12.2f}x  (floor: {MIN_SPEEDUP}x)",
            ]
        ),
    )
    assert queue_pps > 0 and shm_pps > 0 and multi_pps > 0
    assert speedup >= MIN_SPEEDUP, (
        f"1-worker shm transport only {speedup:.2f}x the queue block transport "
        f"(floor {MIN_SPEEDUP}x on {_CPUS} CPUs)"
    )
