"""Unit tests for the video encoder model and packetiser."""

import numpy as np
import pytest

from repro.net.packet import MediaType
from repro.webrtc.codec import EncodedFrame, VideoEncoder
from repro.webrtc.packetizer import (
    PAYLOAD_OVERHEAD_LEN,
    RTP_HEADER_LEN,
    Packetizer,
    PacketizerConfig,
)
from repro.webrtc.profiles import get_profile


@pytest.fixture
def teams_profile():
    return get_profile("teams")


@pytest.fixture
def packetizer(teams_profile, rng):
    config = PacketizerConfig(
        src_ip="192.0.2.10", dst_ip="10.0.0.1", src_port=3478, dst_port=50000, ssrc=77, payload_type=102
    )
    return Packetizer(teams_profile, config, rng)


class TestVideoEncoder:
    def test_frame_count_matches_target_fps(self, teams_profile, rng):
        encoder = VideoEncoder(teams_profile, rng)
        frames = encoder.encode_second(0.0, bitrate_kbps=2000.0, height=480, max_fps=30.0)
        assert 28 <= len(frames) <= 31

    def test_low_bitrate_reduces_frame_rate(self, teams_profile, rng):
        encoder = VideoEncoder(teams_profile, rng)
        assert encoder.frame_rate_for(100.0, 30.0) < encoder.frame_rate_for(2000.0, 30.0)
        assert encoder.frame_rate_for(2000.0, 30.0) == 30.0

    def test_zero_bitrate_yields_no_frames(self, teams_profile, rng):
        encoder = VideoEncoder(teams_profile, rng)
        assert encoder.frame_rate_for(0.0, 30.0) == 0.0

    def test_frame_sizes_sum_near_bitrate_budget(self, teams_profile, rng):
        encoder = VideoEncoder(teams_profile, rng)
        totals = []
        for second in range(5):
            frames = encoder.encode_second(float(second), bitrate_kbps=1500.0, height=480, max_fps=30.0)
            totals.append(sum(f.size_bytes for f in frames) * 8.0 / 1000.0)
        # Average emitted bitrate within ~35% of the target.
        assert abs(np.mean(totals) - 1500.0) / 1500.0 < 0.35

    def test_capture_times_within_second(self, teams_profile, rng):
        encoder = VideoEncoder(teams_profile, rng)
        frames = encoder.encode_second(3.0, bitrate_kbps=1000.0, height=360, max_fps=30.0)
        assert all(3.0 <= f.capture_time < 4.0 for f in frames)

    def test_frame_ids_strictly_increasing(self, teams_profile, rng):
        encoder = VideoEncoder(teams_profile, rng)
        ids = []
        for second in range(3):
            ids.extend(f.frame_id for f in encoder.encode_second(float(second), 1000.0, 360, 30.0))
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_keyframes_are_larger(self, teams_profile, rng):
        encoder = VideoEncoder(teams_profile, rng)
        all_frames = []
        for second in range(25):
            all_frames.extend(encoder.encode_second(float(second), 1500.0, 480, 30.0))
        keyframes = [f for f in all_frames if f.is_keyframe]
        deltas = [f for f in all_frames if not f.is_keyframe]
        assert keyframes, "expected at least one keyframe in 25 seconds"
        assert np.mean([f.size_bytes for f in keyframes]) > 1.5 * np.mean([f.size_bytes for f in deltas])

    def test_invalid_frame_rejected(self):
        with pytest.raises(ValueError):
            EncodedFrame(frame_id=1, capture_time=0.0, size_bytes=0, height=360)


class TestPacketizer:
    def _frame(self, size=6000, frame_id=5, t=1.0):
        return EncodedFrame(frame_id=frame_id, capture_time=t, size_bytes=size, height=480)

    def test_all_packets_share_frame_id_and_rtp_timestamp(self, packetizer):
        packets = packetizer.packetize(self._frame())
        assert len({p.frame_id for p in packets}) == 1
        assert len({p.rtp.timestamp for p in packets}) == 1

    def test_only_last_packet_has_marker(self, packetizer):
        packets = packetizer.packetize(self._frame())
        markers = [p.rtp.marker for p in packets]
        assert markers[-1] is True
        assert sum(markers) == 1

    def test_sequence_numbers_consecutive(self, packetizer):
        packets = packetizer.packetize(self._frame())
        seqs = [p.rtp.sequence_number for p in packets]
        assert all((b - a) % 65536 == 1 for a, b in zip(seqs, seqs[1:]))

    def test_payload_sizes_respect_mtu(self, packetizer, teams_profile):
        packets = packetizer.packetize(self._frame(size=20_000))
        assert all(p.payload_size <= teams_profile.mtu_payload for p in packets)

    def test_total_bytes_account_for_frame_and_overheads(self, packetizer):
        frame = self._frame(size=5000)
        packets = packetizer.packetize(frame)
        media_total = sum(p.payload_size - RTP_HEADER_LEN - PAYLOAD_OVERHEAD_LEN for p in packets)
        assert media_total == frame.size_bytes

    def test_app_bytes_metadata_matches_fragments(self, packetizer):
        frame = self._frame(size=4321)
        packets = packetizer.packetize(frame)
        assert sum(p.metadata["app_bytes"] for p in packets) == 4321

    def test_equal_fragmentation_within_one_byte(self, teams_profile, rng):
        config = PacketizerConfig(
            src_ip="a.b.c.d", dst_ip="10.0.0.1", src_port=1, dst_port=2, ssrc=1, payload_type=102
        )
        # Force the equal-split path by zeroing the unequal probability.
        from dataclasses import replace

        profile = replace(teams_profile, unequal_fragmentation_prob=0.0)
        packetizer = Packetizer(profile, config, np.random.default_rng(0))
        for size in (3000, 5000, 9999):
            packets = packetizer.packetize(self._frame(size=size))
            sizes = [p.payload_size for p in packets]
            assert max(sizes) - min(sizes) <= 1

    def test_unequal_fragmentation_exceeds_threshold(self, teams_profile):
        from dataclasses import replace

        profile = replace(teams_profile, unequal_fragmentation_prob=1.0)
        config = PacketizerConfig(
            src_ip="a.b.c.d", dst_ip="10.0.0.1", src_port=1, dst_port=2, ssrc=1, payload_type=102
        )
        packetizer = Packetizer(profile, config, np.random.default_rng(0))
        packets = packetizer.packetize(self._frame(size=6000))
        sizes = [p.payload_size for p in packets]
        assert max(sizes) - min(sizes) > 2

    def test_single_packet_frame(self, packetizer):
        packets = packetizer.packetize(self._frame(size=300))
        assert len(packets) == 1
        assert packets[0].rtp.marker is True

    def test_packets_marked_as_video(self, packetizer):
        assert all(p.media_type is MediaType.VIDEO for p in packetizer.packetize(self._frame()))

    def test_intra_frame_departure_spacing_is_microburst(self, packetizer):
        packets = packetizer.packetize(self._frame(size=10_000))
        gaps = np.diff([p.timestamp for p in packets])
        assert np.all(gaps < 0.003)
