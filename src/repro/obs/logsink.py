"""Periodic metrics emission for long-running monitors.

:class:`MetricsLogSink` is an ordinary estimate sink that rides the
monitor's output stream as its clock: every ``interval_s`` seconds of
*stream time* (estimate ``window_start``, not wall time -- so a replayed
capture produces the same log lines as the live run did) it appends one
JSON line with a full registry snapshot.  Attach it like any other sink;
the owning monitor binds its registry automatically at ``run()`` via
:meth:`bind_registry` (or pass ``registry=`` explicitly to scrape a
registry you manage yourself).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sinks.base import EstimateSink

__all__ = ["MetricsLogSink"]


class MetricsLogSink(EstimateSink):
    """Append one JSON metrics snapshot per ``interval_s`` of stream time.

    Each line is ``{"stream_time_s": <window_start>, "metrics":
    <registry snapshot>}``; ``close()`` writes a final line (with
    ``stream_time_s`` of the last estimate seen) so the terminal counter
    state is always on disk.  O(1) state per estimate -- the snapshot cost
    is paid once per interval, not per window.
    """

    def __init__(self, path, interval_s: float = 10.0, registry=None) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        self.path = Path(path)
        self.interval_s = float(interval_s)
        self.registry = registry
        self.lines_written = 0
        self.closed = False
        self._file = open(self.path, "w", encoding="utf-8")  # noqa: SIM115 -- owned until close()
        self._next_due: float | None = None
        self._last_seen: float | None = None

    def bind_registry(self, registry) -> None:
        """Adopt a monitor's registry (no-op if one was passed explicitly)."""
        if self.registry is None:
            self.registry = registry

    def emit(self, item) -> None:
        if self.closed:
            raise RuntimeError(f"MetricsLogSink({self.path}) is closed")
        window_start = item.estimate.window_start
        if self._last_seen is None or window_start > self._last_seen:
            self._last_seen = window_start
        if self._next_due is None:
            # The first estimate starts the clock; the first line lands one
            # interval later, so short runs log once (at close), not twice.
            self._next_due = window_start + self.interval_s
            return
        if window_start >= self._next_due:
            self._write_line(window_start)
            while self._next_due <= window_start:
                self._next_due += self.interval_s

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            if self.registry is not None:
                self._write_line(self._last_seen)
        finally:
            self._file.close()

    def _write_line(self, stream_time_s: float | None) -> None:
        if self.registry is None:
            return
        record = {"stream_time_s": stream_time_s, "metrics": self.registry.snapshot()}
        self._file.write(json.dumps(record) + "\n")
        self.lines_written += 1
