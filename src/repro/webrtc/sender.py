"""Sender model: encoder + packetiser + audio + RTX + rate control.

A :class:`VCASender` generates one second of departing packets at a time.
The resolution and frame rate for the second are chosen from the VCA's ladder
based on the rate controller's current target bitrate, mirroring how the real
applications adapt (and producing the per-VCA ground-truth distributions of
Figure A.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.packet import Packet
from repro.webrtc.audio import AudioStream
from repro.webrtc.codec import VideoEncoder
from repro.webrtc.packetizer import Packetizer, PacketizerConfig
from repro.webrtc.profiles import VCAProfile
from repro.webrtc.rate_control import FeedbackReport, RateController
from repro.webrtc.retransmission import RetransmissionStream, generate_control_handshake

__all__ = ["VCASender", "SenderSecond"]


@dataclass(frozen=True)
class SenderSecond:
    """What the sender emitted during one second."""

    second: int
    packets: list[Packet]
    target_bitrate_kbps: float
    frame_rate: float
    height: int
    n_frames: int


class VCASender:
    """Generates the full uplink packet stream of one VCA participant."""

    def __init__(
        self,
        profile: VCAProfile,
        rng: np.random.Generator,
        environment: str = "lab",
        src_ip: str = "10.0.0.2",
        dst_ip: str = "10.0.0.1",
        src_port: int = 3478,
        dst_port: int = 50000,
    ) -> None:
        self.profile = profile
        self.rng = rng
        self.environment = environment
        payload_types = profile.payload_types_for(environment)

        self.video_config = PacketizerConfig(
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            ssrc=int(rng.integers(1, 2**32 - 1)),
            payload_type=payload_types.video,
        )
        self.audio_config = PacketizerConfig(
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            ssrc=int(rng.integers(1, 2**32 - 1)),
            payload_type=payload_types.audio,
        )
        self.encoder = VideoEncoder(profile, rng, environment=environment)
        self.packetizer = Packetizer(profile, self.video_config, rng, environment=environment)
        self.audio = AudioStream(profile, self.audio_config, rng)
        self.rate_controller = RateController(profile, rng)

        self.rtx: RetransmissionStream | None = None
        rtx_payload_type = payload_types.video_rtx
        if profile.uses_rtx and rtx_payload_type is not None:
            rtx_config = PacketizerConfig(
                src_ip=src_ip,
                dst_ip=dst_ip,
                src_port=src_port,
                dst_port=dst_port,
                ssrc=int(rng.integers(1, 2**32 - 1)),
                payload_type=rtx_payload_type,
            )
            self.rtx = RetransmissionStream(profile, rtx_config, rng)

    def control_handshake(self, start_time: float = 0.0) -> list[Packet]:
        """DTLS/STUN packets opening the call (non-RTP control traffic)."""
        return generate_control_handshake(self.video_config, self.rng, start_time=start_time)

    def generate_second(
        self, second: int, lost_video_packets: list[Packet] | None = None
    ) -> SenderSecond:
        """Generate all packets departing in ``[second, second + 1)``."""
        start_time = float(second)
        target = self.rate_controller.target_kbps
        rung = self.profile.rung_for_bitrate(target, environment=self.environment)
        fps_limit = min(rung.max_fps, self.profile.max_fps)

        frames = self.encoder.encode_second(
            start_time=start_time,
            bitrate_kbps=target,
            height=rung.height,
            max_fps=fps_limit,
        )
        packets: list[Packet] = []
        for frame in frames:
            packets.extend(self.packetizer.packetize(frame))
        packets.extend(self.audio.generate_second(start_time))
        if self.rtx is not None:
            packets.extend(self.rtx.generate_second(start_time, lost_video_packets))
        packets.sort(key=lambda p: p.timestamp)

        return SenderSecond(
            second=second,
            packets=packets,
            target_bitrate_kbps=target,
            frame_rate=self.encoder.frame_rate_for(target, fps_limit),
            height=rung.height,
            n_frames=len(frames),
        )

    def apply_feedback(self, feedback: FeedbackReport) -> float:
        """Forward receiver feedback to the rate controller."""
        return self.rate_controller.update(feedback)
