"""Tables 2, A.1 and A.2: media classification confusion matrices.

Paper shape: virtually 100% of video packets are classified as video; a small
percentage (~1.5-2%) of non-video packets (DTLS handshake / key exchange) are
misclassified as video.
"""


from benchmarks.conftest import save_artifact
from repro.analysis.reporting import format_confusion_matrix
from repro.core.media import MediaClassifier
from repro.net.trace import PacketTrace


def _evaluate(calls):
    classifier = MediaClassifier()
    merged = PacketTrace([p for call in calls for p in call.trace])
    return classifier.evaluate(merged)


def test_tab2_media_classification_all_vcas(benchmark, lab_calls):
    reports = benchmark.pedantic(
        lambda: {vca: _evaluate(calls) for vca, calls in lab_calls.items()}, rounds=1, iterations=1
    )

    sections = []
    for vca, report in reports.items():
        matrix = report.as_matrix()
        table = format_confusion_matrix(
            matrix,
            ["Non-video", "Video"],
            title=(
                f"Table 2/A.1/A.2 - media classification ({vca}, in-lab)  "
                f"totals: non-video={report.total_nonvideo}, video={report.total_video}"
            ),
        )
        sections.append(table)
    save_artifact("tab2_media_classification", "\n\n".join(sections))

    for vca, report in reports.items():
        assert report.video_recall > 0.99, vca
        assert report.nonvideo_recall > 0.9, vca
        # The DTLS/STUN false positives exist but are a small fraction.
        assert 0.0 < 1.0 - report.nonvideo_recall < 0.1, vca
