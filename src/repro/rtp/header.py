"""RTP fixed-header model and binary codec (RFC 3550).

Only the 12-byte fixed header without CSRC entries or header extensions is
modelled; that is all the RTP baselines in the paper need (payload type,
marker bit, sequence number, timestamp, SSRC).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["RTPHeader", "VIDEO_CLOCK_RATE", "AUDIO_CLOCK_RATE", "RTP_VERSION"]

#: RTP timestamp clock rate for video codecs (RFC 6184 and friends): 90 kHz.
VIDEO_CLOCK_RATE = 90_000
#: RTP timestamp clock rate for OPUS audio: 48 kHz.
AUDIO_CLOCK_RATE = 48_000
#: The only RTP version in use.
RTP_VERSION = 2

_STRUCT = struct.Struct("!BBHII")


@dataclass(frozen=True)
class RTPHeader:
    """The RTP fixed header fields used by the paper's RTP baselines."""

    payload_type: int
    sequence_number: int
    timestamp: int
    ssrc: int
    marker: bool = False
    version: int = RTP_VERSION
    padding: bool = False
    extension: bool = False
    csrc_count: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.payload_type <= 127:
            raise ValueError(f"payload_type out of range: {self.payload_type}")
        if not 0 <= self.sequence_number <= 0xFFFF:
            raise ValueError(f"sequence_number out of range: {self.sequence_number}")
        if not 0 <= self.timestamp <= 0xFFFFFFFF:
            raise ValueError(f"timestamp out of range: {self.timestamp}")
        if not 0 <= self.ssrc <= 0xFFFFFFFF:
            raise ValueError(f"ssrc out of range: {self.ssrc}")
        if not 0 <= self.csrc_count <= 15:
            raise ValueError(f"csrc_count out of range: {self.csrc_count}")
        if self.version != RTP_VERSION:
            raise ValueError(f"unsupported RTP version: {self.version}")

    def encode(self) -> bytes:
        """Serialise to the 12-byte wire format."""
        byte0 = (
            (self.version << 6)
            | (int(self.padding) << 5)
            | (int(self.extension) << 4)
            | self.csrc_count
        )
        byte1 = (int(self.marker) << 7) | self.payload_type
        return _STRUCT.pack(byte0, byte1, self.sequence_number, self.timestamp, self.ssrc)

    @classmethod
    def decode(cls, data: bytes) -> "RTPHeader":
        """Parse the 12-byte fixed header from ``data`` (extra bytes ignored)."""
        if len(data) < _STRUCT.size:
            raise ValueError(
                f"need at least {_STRUCT.size} bytes for an RTP header, got {len(data)}"
            )
        byte0, byte1, seq, timestamp, ssrc = _STRUCT.unpack_from(data)
        version = byte0 >> 6
        if version != RTP_VERSION:
            raise ValueError(f"unsupported RTP version: {version}")
        return cls(
            version=version,
            padding=bool(byte0 & 0x20),
            extension=bool(byte0 & 0x10),
            csrc_count=byte0 & 0x0F,
            marker=bool(byte1 & 0x80),
            payload_type=byte1 & 0x7F,
            sequence_number=seq,
            timestamp=timestamp,
            ssrc=ssrc,
        )

    def timestamp_seconds(self, clock_rate: int = VIDEO_CLOCK_RATE) -> float:
        """Timestamp converted to seconds at ``clock_rate``."""
        if clock_rate <= 0:
            raise ValueError("clock_rate must be positive")
        return self.timestamp / clock_rate


def sequence_distance(a: int, b: int) -> int:
    """Signed distance from sequence number ``a`` to ``b`` with 16-bit wraparound.

    Positive when ``b`` is ahead of ``a``.  Used to detect reordering and loss.
    """
    diff = (b - a) & 0xFFFF
    if diff >= 0x8000:
        diff -= 0x10000
    return diff


def timestamp_distance(a: int, b: int) -> int:
    """Signed distance from RTP timestamp ``a`` to ``b`` with 32-bit wraparound."""
    diff = (b - a) & 0xFFFFFFFF
    if diff >= 0x80000000:
        diff -= 0x100000000
    return diff
