"""Frame-boundary estimation from IP/UDP headers (Algorithm 1).

The key insight (Section 3.2.1): VCAs fragment each frame into (nearly)
equal-sized packets, and consecutive frames have different sizes.  So a new
packet whose size is within ``delta_size`` bytes of one of the previous
``lookback`` packets most likely belongs to that packet's frame; otherwise it
starts a new frame.  The lookback absorbs bounded packet reordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.packet import Packet
from repro.net.trace import PacketTrace

__all__ = ["AssembledFrame", "FrameAssembler", "assemble_frames"]


@dataclass
class AssembledFrame:
    """A frame recovered by the heuristic: its packets and derived attributes."""

    frame_index: int
    packets: list[Packet] = field(default_factory=list)

    def add(self, packet: Packet) -> None:
        self.packets.append(packet)

    @property
    def n_packets(self) -> int:
        return len(self.packets)

    @property
    def size_bytes(self) -> int:
        """Total media payload bytes (UDP payload minus the fixed RTP header)."""
        return sum(p.media_payload_size for p in self.packets)

    @property
    def raw_size_bytes(self) -> int:
        """Total UDP payload bytes including RTP headers."""
        return sum(p.payload_size for p in self.packets)

    @property
    def start_time(self) -> float:
        return min(p.timestamp for p in self.packets)

    @property
    def end_time(self) -> float:
        """Frame completion time: arrival of the last packet (the paper's ET_i)."""
        return max(p.timestamp for p in self.packets)

    @property
    def true_frame_ids(self) -> set[int]:
        """Ground-truth frame ids covered by this assembled frame (evaluation only)."""
        return {p.frame_id for p in self.packets if p.frame_id is not None}

    @property
    def true_rtp_timestamps(self) -> set[int]:
        """Distinct RTP timestamps covered (evaluation only)."""
        return {p.rtp.timestamp for p in self.packets if p.rtp is not None}


class FrameAssembler:
    """Implementation of Algorithm 1 (Appendix B).

    Parameters
    ----------
    delta_size:
        Maximum packet-size difference (bytes) for two packets to be treated
        as part of the same frame (the paper uses 2 bytes for all VCAs).
    lookback:
        How many previously seen packets to compare against (``N_max``); the
        paper uses 3 for Meet, 2 for Teams and 1 for Webex.
    """

    def __init__(self, delta_size: float = 2.0, lookback: int = 2) -> None:
        if delta_size < 0:
            raise ValueError("delta_size must be non-negative")
        if lookback < 1:
            raise ValueError("lookback must be >= 1")
        self.delta_size = delta_size
        self.lookback = lookback

    def assemble(self, packets) -> list[AssembledFrame]:
        """Group ``packets`` (in arrival order) into frames.

        Every packet is assigned to exactly one frame.  A packet joins the
        frame of the most recently seen packet (among the last ``lookback``)
        whose size is within ``delta_size`` bytes; otherwise it opens a new
        frame.
        """
        ordered = sorted(packets, key=lambda p: p.timestamp)
        frames: list[AssembledFrame] = []
        # The frame each recent packet was assigned to, most recent last.
        recent: list[tuple[Packet, AssembledFrame]] = []

        for packet in ordered:
            assigned_frame: AssembledFrame | None = None
            for previous, frame in reversed(recent[-self.lookback :]):
                if abs(previous.payload_size - packet.payload_size) <= self.delta_size:
                    assigned_frame = frame
                    break
            if assigned_frame is None:
                assigned_frame = AssembledFrame(frame_index=len(frames))
                frames.append(assigned_frame)
            assigned_frame.add(packet)
            recent.append((packet, assigned_frame))
            if len(recent) > self.lookback:
                recent = recent[-self.lookback :]
        return frames

    def assemble_trace(self, trace: PacketTrace) -> list[AssembledFrame]:
        return self.assemble(trace.packets)


def assemble_frames(
    packets, delta_size: float = 2.0, lookback: int = 2
) -> list[AssembledFrame]:
    """Convenience wrapper around :class:`FrameAssembler`."""
    return FrameAssembler(delta_size=delta_size, lookback=lookback).assemble(packets)


def intra_frame_size_differences(trace: PacketTrace) -> np.ndarray:
    """Maximum intra-frame packet size difference per ground-truth frame.

    Used to regenerate Figure 2 (intra-frame CDF).  Frames are identified by
    the ground-truth frame annotations; frames with fewer than two packets are
    skipped, as in the paper.
    """
    sizes_by_frame: dict[int, list[int]] = {}
    for packet in trace:
        if packet.frame_id is None:
            continue
        sizes_by_frame.setdefault(packet.frame_id, []).append(packet.payload_size)
    diffs = [
        max(sizes) - min(sizes)
        for sizes in sizes_by_frame.values()
        if len(sizes) >= 2
    ]
    return np.array(diffs, dtype=float)


def inter_frame_size_differences(trace: PacketTrace) -> np.ndarray:
    """Absolute size difference between the last packet of one ground-truth
    frame and the first packet of the next (Figure 2, inter-frame CDF)."""
    frames: dict[int, list[Packet]] = {}
    for packet in trace:
        if packet.frame_id is None:
            continue
        frames.setdefault(packet.frame_id, []).append(packet)
    ordered_frames = [
        sorted(packets, key=lambda p: p.timestamp)
        for _, packets in sorted(frames.items(), key=lambda item: min(p.timestamp for p in item[1]))
    ]
    diffs = []
    for previous, current in zip(ordered_frames, ordered_frames[1:]):
        diffs.append(abs(current[0].payload_size - previous[-1].payload_size))
    return np.array(diffs, dtype=float)
