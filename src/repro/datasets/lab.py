"""In-lab dataset builder (Section 4.2).

The paper's in-lab data consists of calls between two lab machines while the
bottleneck link replays conditions from M-Lab NDT speed tests with average
speeds below 10 Mbps (to create challenging conditions).  The reproduction
generates a synthetic NDT corpus (:mod:`repro.netem.ndt`) and drives the same
per-second emulation from it.

Paper volumes (seconds of data): roughly 11k for Meet, 15k for Teams and 13k
for Webex.  The builder's default scale is far smaller (for test/bench run
time); use :class:`LabDatasetConfig` to scale up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.collection import CollectionConfig, collect_calls
from repro.netem.ndt import generate_ndt_corpus, schedule_from_ndt
from repro.webrtc.profiles import VCA_NAMES
from repro.webrtc.session import CallResult

__all__ = ["LabDatasetConfig", "build_lab_dataset", "PAPER_LAB_SECONDS"]

#: Approximate seconds of in-lab data per VCA in the paper (Section 4.2).
PAPER_LAB_SECONDS: dict[str, int] = {"meet": 11_000, "teams": 15_000, "webex": 13_000}


@dataclass(frozen=True)
class LabDatasetConfig:
    """Scale and randomisation of the generated in-lab dataset."""

    calls_per_vca: int = 6
    call_duration_s: int = 30
    vcas: tuple[str, ...] = VCA_NAMES
    seed: int = 7
    ndt_corpus_size: int = 50
    max_speed_kbps: float = 10_000.0

    def __post_init__(self) -> None:
        if self.calls_per_vca < 1:
            raise ValueError("calls_per_vca must be >= 1")
        if self.call_duration_s < 5:
            raise ValueError("call_duration_s must be >= 5")
        unknown = set(v.lower() for v in self.vcas) - set(VCA_NAMES)
        if unknown:
            raise ValueError(f"unknown VCAs: {sorted(unknown)}")


def build_lab_dataset(config: LabDatasetConfig | None = None) -> dict[str, list[CallResult]]:
    """Simulate the in-lab dataset; returns ``{vca: [CallResult, ...]}``.

    Each call replays the conditions of one NDT test from the synthetic
    corpus: RTT/loss sequences directly, throughput sampled from the test's
    mean/variance, exactly as described in Section 4.2.
    """
    config = config if config is not None else LabDatasetConfig()
    master_rng = np.random.default_rng(config.seed)
    corpus = generate_ndt_corpus(
        config.ndt_corpus_size,
        rng=master_rng,
        duration_s=10,
        max_speed_kbps=config.max_speed_kbps,
    )

    dataset: dict[str, list[CallResult]] = {}
    for vca in config.vcas:
        vca = vca.lower()
        vca_seed = int(master_rng.integers(0, 2**31 - 1))

        def schedule_factory(call_index: int, rng: np.random.Generator):
            trace = corpus[int(rng.integers(0, len(corpus)))]
            return schedule_from_ndt(trace, duration_s=config.call_duration_s, rng=rng)

        collection = CollectionConfig(
            vca=vca,
            n_calls=config.calls_per_vca,
            duration_s=config.call_duration_s,
            environment="lab",
            seed=vca_seed,
        )
        dataset[vca] = collect_calls(collection, schedule_factory)
    return dataset
