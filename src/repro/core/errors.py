"""Heuristic error taxonomy (Section 5.1.2, Figure 4).

The IP/UDP Heuristic's frame-boundary assumption fails in three ways:

* **splits** -- packets of one true frame differ by more than the size
  threshold, so the frame is split into several estimated frames
  (over-estimates FPS; dominant for Meet);
* **coalesces** -- two consecutive true frames are so similar in size that
  their packets are merged into one estimated frame (under-estimates FPS;
  dominant for Webex);
* **interleaves** -- reordered packets cause the packets of different true
  frames to alternate inside the lookback window, creating false boundaries.

The paper measures each per prediction window by comparing the heuristic's
frame assignments with the true frame boundaries (RTP timestamps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.frame_assembly import AssembledFrame
from repro.core.heuristic import IPUDPHeuristic
from repro.net.trace import PacketTrace

__all__ = ["WindowErrorCounts", "ErrorBreakdown", "analyze_heuristic_errors"]


@dataclass(frozen=True)
class WindowErrorCounts:
    """Counts of each error type within one prediction window."""

    splits: int
    coalesces: int
    interleaves: int
    n_true_frames: int
    n_estimated_frames: int


@dataclass(frozen=True)
class ErrorBreakdown:
    """Average per-window counts of each error type (the Figure 4 bars)."""

    avg_splits: float
    avg_coalesces: float
    avg_interleaves: float
    n_windows: int

    def as_dict(self) -> dict[str, float]:
        return {
            "splits": self.avg_splits,
            "coalesces": self.avg_coalesces,
            "interleaves": self.avg_interleaves,
        }


def _window_error_counts(
    frames: list[AssembledFrame],
    window_start: float,
    window_s: float,
    delta_size: float,
) -> WindowErrorCounts:
    in_window = [f for f in frames if window_start <= f.end_time < window_start + window_s]

    true_frame_ids: set[int] = set()
    splits = 0
    coalesces = 0
    interleaves = 0

    # Splits: a true frame whose packets exhibit an intra-frame size
    # difference above the threshold ends up spread over several estimated
    # frames.  Count true frames (within the window) whose packets' size
    # spread exceeds the threshold.
    sizes_by_true_frame: dict[int, list[int]] = {}
    for frame in in_window:
        for packet in frame.packets:
            if packet.frame_id is None:
                continue
            true_frame_ids.add(packet.frame_id)
            sizes_by_true_frame.setdefault(packet.frame_id, []).append(packet.payload_size)
    for sizes in sizes_by_true_frame.values():
        if len(sizes) >= 2 and (max(sizes) - min(sizes)) > delta_size:
            splits += 1

    for frame in in_window:
        ids = [p.frame_id for p in frame.packets if p.frame_id is not None]
        if not ids:
            continue
        distinct = set(ids)
        # Coalesces: one estimated frame covering more than one true frame.
        if len(distinct) > 1:
            coalesces += len(distinct) - 1
            # Interleaves: the true frame ids alternate (non-contiguous runs)
            # within the estimated frame's packet order.
            runs = 1
            for previous, current in zip(ids, ids[1:]):
                if current != previous:
                    runs += 1
            if runs > len(distinct):
                interleaves += runs - len(distinct)

    return WindowErrorCounts(
        splits=splits,
        coalesces=coalesces,
        interleaves=interleaves,
        n_true_frames=len(true_frame_ids),
        n_estimated_frames=len(in_window),
    )


def analyze_heuristic_errors(
    trace: PacketTrace,
    heuristic: IPUDPHeuristic,
    duration_s: int,
    window_s: float = 1.0,
    skip_leading_s: int = 2,
) -> ErrorBreakdown:
    """Average per-window split/coalesce/interleave counts for one call.

    The heuristic runs blind (no RTP headers); the comparison against true
    frame boundaries uses the ground-truth frame annotations carried by the
    simulated trace, mirroring the paper's use of RTP timestamps as truth.
    """
    frames = heuristic.assemble(trace)
    delta = heuristic.assembler.delta_size
    counts: list[WindowErrorCounts] = []
    for second in range(skip_leading_s, duration_s):
        counts.append(_window_error_counts(frames, float(second), window_s, delta))
    if not counts:
        return ErrorBreakdown(0.0, 0.0, 0.0, 0)
    return ErrorBreakdown(
        avg_splits=float(np.mean([c.splits for c in counts])),
        avg_coalesces=float(np.mean([c.coalesces for c in counts])),
        avg_interleaves=float(np.mean([c.interleaves for c in counts])),
        n_windows=len(counts),
    )
