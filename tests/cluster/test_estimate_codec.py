"""Property-style fuzz tests for the estimate flat-buffer codec.

The return-path analogue of ``TestFlatBufferCodec``: random
:class:`~repro.net.estwire.EstimateBatch` contents -- NaN / +/-inf / random
bit-pattern metric values, empty ticks, single- and many-flow side tables --
must round-trip **bit-identically** (compared as raw float64 bits, since
``NaN != NaN``), decode as zero-copy views, split across undersized ring
slots without loss, and reject truncated or corrupt buffers loudly.
"""

from __future__ import annotations

import math
import multiprocessing
import random
import struct

import pytest

from repro.cluster.shm import BlockRing, shm_available
from repro.core.pipeline import PipelineEstimate
from repro.core.streaming import StreamEstimate
from repro.net.estwire import EstimateBatch
from repro.net.flows import FlowKey


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


#: Edge-case metric values: specials, signed zeros, the subnormal floor and
#: the finite ceiling of binary64.
_SPECIALS = (math.nan, math.inf, -math.inf, 0.0, -0.0, 5e-324, 1.7976931348623157e308)


def random_metric(rng: random.Random) -> float:
    roll = rng.random()
    if roll < 0.3:
        return rng.choice(_SPECIALS)
    if roll < 0.5:
        # A uniformly random bit pattern: covers payload-carrying NaNs and
        # denormals no float-space distribution would ever produce.
        return struct.unpack("<d", rng.getrandbits(64).to_bytes(8, "little"))[0]
    return rng.uniform(-1e6, 1e6)


def flow_pool(n: int) -> list[FlowKey]:
    return [
        FlowKey(
            src=f"192.0.2.{i % 250}",
            src_port=3478,
            dst="10.0.0.1",
            dst_port=50000 + i,
            protocol=17,
        )
        for i in range(n)
    ]


def random_items(rng: random.Random, n: int, pool: list[FlowKey]) -> list[StreamEstimate]:
    items = []
    for _ in range(n):
        estimate = PipelineEstimate(
            window_start=random_metric(rng),
            frame_rate=random_metric(rng),
            bitrate_kbps=random_metric(rng),
            frame_jitter_ms=random_metric(rng),
            resolution=rng.choice((None, "360p", "720p", "1080p")),
            source=rng.choice(("ml", "heuristic")),
        )
        flow = None if rng.random() < 0.1 else rng.choice(pool)
        items.append(StreamEstimate(flow=flow, estimate=estimate))
    return items


def encoded(batch: EstimateBatch) -> bytearray:
    buf = bytearray(batch.byte_size())
    written = batch.write_into(memoryview(buf))
    assert written == len(buf)
    return buf


def assert_rows_bit_identical(decoded_items, items) -> None:
    assert len(decoded_items) == len(items)
    for got, want in zip(decoded_items, items):
        assert got.flow == want.flow
        g, w = got.estimate, want.estimate
        for name in ("window_start", "frame_rate", "bitrate_kbps", "frame_jitter_ms"):
            assert bits(getattr(g, name)) == bits(getattr(w, name)), name
        assert g.resolution == w.resolution
        assert g.source == w.source


class TestEstimateCodecFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_round_trip_bit_identical(self, seed):
        rng = random.Random(seed)
        pool = flow_pool(rng.randint(1, 40))
        items = random_items(rng, rng.randint(0, 200), pool)
        watermark = rng.choice((None, rng.uniform(-1e3, 1e9), -math.inf))
        batch = EstimateBatch.from_estimates(items, watermark)
        assert len(batch) == len(items)
        decoded = EstimateBatch.read_from(memoryview(encoded(batch)))
        if watermark is None:
            assert decoded.low_watermark is None
        else:
            assert bits(decoded.low_watermark) == bits(watermark)
        assert_rows_bit_identical(decoded.to_estimates(), items)

    def test_empty_batch_round_trips(self):
        for watermark in (None, 7.5):
            decoded = EstimateBatch.read_from(
                memoryview(encoded(EstimateBatch.from_estimates([], watermark)))
            )
            assert len(decoded) == 0
            assert decoded.to_estimates() == []
            assert decoded.low_watermark == watermark

    def test_side_table_extremes(self):
        rng = random.Random(42)
        # One interned flow shared by every row...
        shared = random_items(rng, 50, flow_pool(1))
        batch = EstimateBatch.from_estimates(shared, 1.0)
        assert len(batch.flows) <= 1
        decoded = EstimateBatch.read_from(memoryview(encoded(batch)))
        assert_rows_bit_identical(decoded.to_estimates(), shared)
        # ...and a unique flow per row.
        pool = flow_pool(50)
        unique = [
            StreamEstimate(flow=pool[i], estimate=item.estimate)
            for i, item in enumerate(shared)
        ]
        batch = EstimateBatch.from_estimates(unique, 1.0)
        assert len(batch.flows) == 50
        decoded = EstimateBatch.read_from(memoryview(encoded(batch)))
        assert_rows_bit_identical(decoded.to_estimates(), unique)

    def test_decode_is_zero_copy_views(self):
        items = random_items(random.Random(3), 9, flow_pool(2))
        buf = encoded(EstimateBatch.from_estimates(items, 1.0))
        first = EstimateBatch.read_from(memoryview(buf))
        second = EstimateBatch.read_from(memoryview(buf))
        assert first.window_starts.base is not None
        # Two decodes of one buffer alias the same memory: proof of zero-copy.
        first.window_starts[0] = 42.0
        assert second.window_starts[0] == 42.0

    @pytest.mark.parametrize("seed", range(4))
    def test_truncated_buffers_raise(self, seed):
        rng = random.Random(seed)
        items = random_items(rng, rng.randint(1, 40), flow_pool(4))
        buf = encoded(EstimateBatch.from_estimates(items, 4.0))
        cuts = {0, 8, 23, len(buf) // 2, len(buf) - 1, rng.randrange(len(buf))}
        for cut in cuts:
            with pytest.raises(ValueError, match="truncated"):
                EstimateBatch.read_from(memoryview(buf[:cut]))

    def test_corrupt_headers_raise(self):
        buf = encoded(EstimateBatch.from_estimates([], None))
        bad_magic = bytearray(buf)
        bad_magic[:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            EstimateBatch.read_from(memoryview(bad_magic))
        bad_version = bytearray(buf)
        struct.pack_into("<H", bad_version, 4, 9)
        with pytest.raises(ValueError, match="version"):
            EstimateBatch.read_from(memoryview(bad_version))
        bad_rows = bytearray(buf)
        struct.pack_into("<q", bad_rows, 8, -1)
        with pytest.raises(ValueError, match="negative"):
            EstimateBatch.read_from(memoryview(bad_rows))

    def test_write_into_checks_capacity(self):
        batch = EstimateBatch.from_estimates(random_items(random.Random(1), 5, flow_pool(2)), 1.0)
        with pytest.raises(ValueError, match="too small"):
            batch.write_into(memoryview(bytearray(batch.byte_size() - 8)))

    def test_non_encodable_rows_raise_value_error(self):
        def estimate(**overrides):
            fields = dict(
                window_start=0.0,
                frame_rate=1.0,
                bitrate_kbps=2.0,
                frame_jitter_ms=3.0,
                resolution="720p",
                source="ml",
            )
            fields.update(overrides)
            return PipelineEstimate(**fields)

        with pytest.raises(ValueError, match="FlowKey"):
            EstimateBatch.from_estimates(
                [StreamEstimate(flow="1.2.3.4:5", estimate=estimate())], None
            )
        with pytest.raises(ValueError, match="resolution"):
            EstimateBatch.from_estimates(
                [StreamEstimate(flow=None, estimate=estimate(resolution=720))], None
            )
        with pytest.raises(ValueError, match="source"):
            EstimateBatch.from_estimates(
                [StreamEstimate(flow=None, estimate=estimate(source=b"ml"))], None
            )
        with pytest.raises(ValueError):
            EstimateBatch.from_estimates(
                [StreamEstimate(flow=None, estimate=estimate(frame_rate="fast"))], None
            )


class _FakeChannel:
    """Records the worker channel traffic the return batcher generates."""

    def __init__(self) -> None:
        self.messages: list = []
        self.done_sent = False

    def progress(self, items, low_watermark, load=None) -> None:
        self.messages.append(("progress", items, low_watermark, load))

    def estimates_ready(self, load=None) -> None:
        self.messages.append(("est", load))


@pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable on this platform"
)
class TestOversizedBatchesSplitAcrossSlots:
    def test_oversized_tick_splits_across_slots_losslessly(self):
        from repro.cluster.worker import _EstimateReturn

        ctx = multiprocessing.get_context("spawn")
        ring = BlockRing.create(ctx, slot_count=64, slot_bytes=1024)
        consumer = ring.handle().attach()
        try:
            rng = random.Random(99)
            items = random_items(rng, 300, flow_pool(5))  # far beyond one slot
            channel = _FakeChannel()
            returns = _EstimateReturn(channel, ring, batch_slots=True)
            returns.emit(items, 123.0)
            returns.flush()
            tokens = [m for m in channel.messages if m[0] == "est"]
            assert len(tokens) >= 2  # the tick genuinely spilled across slots
            assert not [m for m in channel.messages if m[0] == "progress"]
            decoded: list = []
            for _ in tokens:
                segments = consumer.pop_segments(timeout=1.0)
                assert segments is not None
                for segment in segments:
                    batch = EstimateBatch.read_from(segment)
                    assert batch.low_watermark == 123.0
                    decoded.extend(batch.to_estimates())
                    batch = None
                segments = None
                consumer.release()
            assert_rows_bit_identical(decoded, items)
        finally:
            consumer.close()
            ring.close()
            ring.unlink()

    def test_single_oversized_estimate_falls_back_to_queue(self):
        from repro.cluster.worker import _EstimateReturn

        ctx = multiprocessing.get_context("spawn")
        ring = BlockRing.create(ctx, slot_count=2, slot_bytes=1024)
        consumer = ring.handle().attach()
        try:
            monster = StreamEstimate(
                flow=None,
                estimate=PipelineEstimate(
                    window_start=0.0,
                    frame_rate=1.0,
                    bitrate_kbps=2.0,
                    frame_jitter_ms=3.0,
                    resolution="r" * 4096,  # side table alone outsizes a slot
                    source="ml",
                ),
            )
            channel = _FakeChannel()
            returns = _EstimateReturn(channel, ring, batch_slots=True)
            returns.emit([monster], 1.0)
            assert channel.messages == [("progress", [monster], 1.0, None)]
            assert returns.stats()["queue_fallbacks"] == 1
        finally:
            consumer.close()
            ring.close()
            ring.unlink()
