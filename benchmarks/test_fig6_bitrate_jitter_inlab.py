"""Figure 6a/6b: bitrate relative error (MRAE) and frame-jitter error (MAE)
for the four methods on the in-lab data.

Paper shape: IP/UDP ML and RTP ML have similar bitrate MRAE; the heuristics'
median relative bitrate error is positive (systematic over-estimation, since
they cannot discount application-layer overheads).  Frame-jitter MAE is large
relative to the ground-truth jitter for every method (jitter-buffer smoothing).
"""

from benchmarks.conftest import N_ESTIMATORS, save_artifact
from repro.analysis.reporting import format_method_comparison
from repro.core.evaluation import compare_methods


def test_fig6a_bitrate_errors_inlab(benchmark, lab_datasets):
    def run():
        return {
            vca: compare_methods(dataset, "bitrate", n_estimators=N_ESTIMATORS)
            for vca, dataset in lab_datasets.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = [
        format_method_comparison(per_vca, "bitrate", title=f"Figure 6a - bitrate relative errors ({vca}, in-lab)")
        for vca, per_vca in results.items()
    ]
    save_artifact("fig6a_bitrate_inlab", "\n\n".join(sections))

    for vca, per_vca in results.items():
        # The two ML methods are close to each other (MRAE gap < 0.15).
        assert abs(per_vca["ipudp_ml"].summary.mrae - per_vca["rtp_ml"].summary.mrae) < 0.15, vca
        # The heuristics systematically over-estimate (positive median relative error).
        assert per_vca["ipudp_heuristic"].summary.median > 0.0, vca
        assert per_vca["rtp_heuristic"].summary.median > 0.0, vca


def test_fig6b_frame_jitter_errors_inlab(benchmark, lab_datasets):
    def run():
        return {
            vca: compare_methods(dataset, "frame_jitter", n_estimators=N_ESTIMATORS)
            for vca, dataset in lab_datasets.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sections = [
        format_method_comparison(per_vca, "frame_jitter", title=f"Figure 6b - frame jitter errors ({vca}, in-lab)")
        for vca, per_vca in results.items()
    ]
    save_artifact("fig6b_jitter_inlab", "\n\n".join(sections))

    for vca, per_vca in results.items():
        for method, errors in per_vca.items():
            assert errors.summary.mae >= 0.0, (vca, method)
        # ML jitter error is not wildly worse than the heuristics'.
        assert per_vca["ipudp_ml"].summary.mae <= 3.0 * per_vca["rtp_heuristic"].summary.mae + 10.0, vca
