"""Unit tests for the analysis/reporting helpers."""

import numpy as np
import pytest

from repro.analysis.cdf import cdf_table, empirical_cdf, fraction_at_or_below
from repro.analysis.reporting import (
    format_confusion_matrix,
    format_feature_importances,
    format_method_comparison,
    format_series,
    format_table,
)
from repro.analysis.transferability import TransferabilityResult, transferability_table
from repro.core.evaluation import EvaluationDataset, compare_methods


class TestCDF:
    def test_empirical_cdf_monotone(self):
        values, fractions = empirical_cdf([5.0, 1.0, 3.0])
        assert list(values) == [1.0, 3.0, 5.0]
        assert list(fractions) == [pytest.approx(1 / 3), pytest.approx(2 / 3), 1.0]

    def test_fraction_at_or_below(self):
        assert fraction_at_or_below([1, 2, 3, 4], 2.5) == 0.5

    def test_cdf_table_at_points(self):
        table = cdf_table([1.0, 2.0, 3.0, 4.0], points=[0.0, 2.0, 10.0])
        assert table[0] == (0.0, 0.0)
        assert table[1] == (2.0, 0.5)
        assert table[2] == (10.0, 1.0)

    def test_cdf_table_quantiles(self):
        table = cdf_table(np.arange(100), n_points=5)
        assert len(table) == 5
        assert table[0][1] == 0.0 and table[-1][1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
        with pytest.raises(ValueError):
            fraction_at_or_below([], 1.0)


class TestReporting:
    def test_format_table_contains_all_cells(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text and "a" in text and "2.50" in text and "y" in text

    def test_format_series(self):
        text = format_series("fig", [1, 2], [0.1, 0.2], x_label="loss", y_label="mae")
        assert "loss" in text and "mae" in text and "0.20" in text

    def test_format_confusion_matrix_percentages(self):
        matrix = np.array([[0.9, 0.1], [0.25, 0.75]])
        text = format_confusion_matrix(matrix, ["low", "high"])
        assert "90.00%" in text and "75.00%" in text

    def test_format_feature_importances(self):
        text = format_feature_importances([("# bytes", 0.5), ("# packets", 0.25)])
        assert "# bytes" in text and "50.0%" in text

    def test_format_method_comparison(self, teams_calls_small):
        dataset = EvaluationDataset.from_calls(teams_calls_small)
        results = compare_methods(dataset, "frame_rate", methods=("ipudp_heuristic", "rtp_heuristic"))
        text = format_method_comparison(results, "frame_rate")
        assert "IP/UDP Heuristic" in text and "RTP Heuristic" in text and "MAE" in text


class TestTransferability:
    def test_table_covers_common_vcas(self, teams_calls_small):
        dataset = EvaluationDataset.from_calls(teams_calls_small)
        results = transferability_table(
            {"teams": dataset}, {"teams": dataset, "webex": dataset}, metric="frame_rate", n_estimators=8
        )
        assert all(isinstance(r, TransferabilityResult) for r in results)
        assert {r.vca for r in results} == {"teams"}
        assert {r.method for r in results} == {"ipudp_ml", "rtp_ml"}
        assert all(r.mae >= 0.0 for r in results)
