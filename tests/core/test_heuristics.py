"""Unit tests for the IP/UDP and RTP heuristic estimators."""

import numpy as np
import pytest

from repro.core.heuristic import IPUDPHeuristic, estimates_from_frames
from repro.core.frame_assembly import AssembledFrame
from repro.core.rtp_heuristic import RTPHeuristic
from repro.core.windows import WindowedTrace
from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader
from repro.net.trace import PacketTrace
from repro.webrtc.profiles import get_profile


def make_video_packet(timestamp, size, frame_id, rtp_ts, seq, marker=False, pt=102):
    from repro.rtp.header import RTPHeader

    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="1.1.1.1", dst="2.2.2.2"),
        udp=UDPHeader(src_port=1, dst_port=2),
        payload_size=size,
        rtp=RTPHeader(payload_type=pt, sequence_number=seq, timestamp=rtp_ts, ssrc=3, marker=marker),
        media_type=MediaType.VIDEO,
        frame_id=frame_id,
    )


def build_synthetic_trace(n_frames=30, packets_per_frame=4, frame_size=1000, fps=30.0):
    """A perfectly clean one-second video trace with known frame structure."""
    packets = []
    seq = 0
    for frame in range(n_frames):
        base_time = frame / fps
        size = frame_size + (frame % 7) * 10  # consecutive frames differ in size
        for index in range(packets_per_frame):
            packets.append(
                make_video_packet(
                    timestamp=base_time + index * 0.0005,
                    size=size,
                    frame_id=frame,
                    rtp_ts=frame * 3000,
                    seq=seq,
                    marker=(index == packets_per_frame - 1),
                )
            )
            seq += 1
    return PacketTrace(packets, vca="teams")


class TestEstimatesFromFrames:
    def test_empty_window(self):
        estimate = estimates_from_frames([], window_start=0.0, window_s=1.0)
        assert estimate.frame_rate == 0.0
        assert estimate.bitrate_kbps == 0.0
        assert estimate.frame_jitter_ms == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            estimates_from_frames([], window_start=0.0, window_s=0.0)

    def test_metric_accessor(self):
        estimate = estimates_from_frames([], 0.0, 1.0)
        assert estimate.metric("frame_rate") == 0.0
        with pytest.raises(ValueError):
            estimate.metric("resolution")

    def test_frames_attributed_by_end_time(self):
        frame_a = AssembledFrame(frame_index=0)
        frame_a.add(make_video_packet(0.95, 1000, 0, 0, 0))
        frame_a.add(make_video_packet(1.05, 1000, 0, 0, 1))  # ends at 1.05 -> window 1
        frame_b = AssembledFrame(frame_index=1)
        frame_b.add(make_video_packet(0.5, 900, 1, 3000, 2))
        window0 = estimates_from_frames([frame_a, frame_b], 0.0, 1.0)
        window1 = estimates_from_frames([frame_a, frame_b], 1.0, 1.0)
        assert window0.n_frames == 1
        assert window1.n_frames == 1


class TestIPUDPHeuristic:
    def test_recovers_exact_frame_rate_on_clean_trace(self):
        trace = build_synthetic_trace(n_frames=30)
        heuristic = IPUDPHeuristic(delta_size=2, lookback=2)
        estimates = heuristic.estimate_trace(trace, window_s=1.0, start=0.0, end=1.0)
        assert len(estimates) == 1
        assert estimates[0].frame_rate == pytest.approx(30.0)

    def test_bitrate_matches_payload_bytes(self):
        trace = build_synthetic_trace(n_frames=10, packets_per_frame=2, frame_size=1000)
        heuristic = IPUDPHeuristic()
        estimate = heuristic.estimate_trace(trace, window_s=1.0, start=0.0, end=1.0)[0]
        expected_bytes = sum(p.media_payload_size for p in trace)
        assert estimate.bitrate_kbps == pytest.approx(expected_bytes * 8.0 / 1000.0)

    def test_blind_to_rtp_headers(self):
        trace = build_synthetic_trace()
        stripped = trace.without_rtp().without_ground_truth()
        heuristic = IPUDPHeuristic()
        with_rtp = heuristic.estimate_trace(trace, 1.0, 0.0, 1.0)[0]
        without_rtp = heuristic.estimate_trace(stripped, 1.0, 0.0, 1.0)[0]
        assert with_rtp.frame_rate == without_rtp.frame_rate

    def test_for_profile_uses_paper_parameters(self):
        heuristic = IPUDPHeuristic.for_profile(get_profile("meet"))
        assert heuristic.assembler.lookback == 3
        assert heuristic.assembler.delta_size == 2.0

    def test_estimate_window_interface(self):
        trace = build_synthetic_trace()
        window = WindowedTrace(start=0.0, duration=1.0, packets=trace)
        estimate = IPUDPHeuristic().estimate_window(window)
        assert estimate.frame_rate > 0

    def test_jitter_nonnegative(self, lossy_teams_call):
        heuristic = IPUDPHeuristic.for_profile(get_profile("teams"))
        estimates = heuristic.estimate_trace(lossy_teams_call.trace, window_s=1.0, start=2.0)
        assert all(e.frame_jitter_ms >= 0 for e in estimates)

    def test_audio_packets_do_not_create_frames(self):
        trace = build_synthetic_trace(n_frames=5)
        audio = [
            Packet(
                timestamp=0.02 * i,
                ip=IPv4Header(src="1.1.1.1", dst="2.2.2.2"),
                udp=UDPHeader(src_port=1, dst_port=2),
                payload_size=150,
                media_type=MediaType.AUDIO,
            )
            for i in range(50)
        ]
        combined = PacketTrace(list(trace) + audio)
        estimate = IPUDPHeuristic().estimate_trace(combined, 1.0, 0.0, 1.0)[0]
        assert estimate.frame_rate == pytest.approx(5.0)


class TestRTPHeuristic:
    def test_exact_frame_count_from_timestamps(self):
        trace = build_synthetic_trace(n_frames=25)
        heuristic = RTPHeuristic(video_payload_type=102)
        estimate = heuristic.estimate_trace(trace, 1.0, 0.0, 1.0)[0]
        assert estimate.frame_rate == pytest.approx(25.0)

    def test_ignores_other_payload_types(self):
        trace = build_synthetic_trace(n_frames=10)
        heuristic = RTPHeuristic(video_payload_type=96)  # wrong payload type
        estimate = heuristic.estimate_trace(trace, 1.0, 0.0, 1.0)[0]
        assert estimate.frame_rate == 0.0

    def test_for_profile_environment_remap(self):
        lab = RTPHeuristic.for_profile(get_profile("teams"), environment="lab")
        real = RTPHeuristic.for_profile(get_profile("teams"), environment="real_world")
        assert lab.video_payload_type == 102
        assert real.video_payload_type == 100

    def test_rtp_heuristic_close_to_ground_truth_on_clean_call(self, teams_call):
        heuristic = RTPHeuristic.for_profile(get_profile("teams"))
        estimates = heuristic.estimate_trace(teams_call.trace, window_s=1.0, start=0.0, end=float(teams_call.duration_s))
        estimated = np.array([e.frame_rate for e in estimates[2:-1]])
        truth = teams_call.ground_truth.frame_rates[2 : len(estimates) - 1]
        mae = np.mean(np.abs(estimated - truth))
        assert mae < 4.0

    def test_more_accurate_than_ipudp_heuristic_under_loss(self, lossy_teams_call):
        profile = get_profile("teams")
        duration = float(lossy_teams_call.duration_s)
        rtp = RTPHeuristic.for_profile(profile).estimate_trace(lossy_teams_call.trace, 1.0, 2.0, duration - 1)
        ipudp = IPUDPHeuristic.for_profile(profile).estimate_trace(lossy_teams_call.trace, 1.0, 2.0, duration - 1)
        truth = lossy_teams_call.ground_truth.frame_rates[2 : 2 + len(rtp)]
        rtp_mae = np.mean(np.abs(np.array([e.frame_rate for e in rtp]) - truth))
        ipudp_mae = np.mean(np.abs(np.array([e.frame_rate for e in ipudp]) - truth))
        assert rtp_mae <= ipudp_mae
