"""Live-capture workflow: estimate QoE packet-by-packet, per flow, as calls run.

Where ``operator_monitoring.py`` trains a model and scores a finished pcap,
this example shows the deployment mode the paper actually targets: a passive
monitor in the middle of the network seeing the *interleaved* packets of
several concurrent VCA sessions, one at a time, with no ability to buffer the
capture.  :class:`repro.StreamingQoEPipeline` demultiplexes the packets by
5-tuple and emits a per-second estimate for each flow the moment the second
can no longer change -- memory stays bounded by the window size no matter how
long the calls last.

Run with:  python examples/streaming_monitor.py
"""

from __future__ import annotations

import heapq

from repro import (
    ConditionSchedule,
    NetworkCondition,
    SessionConfig,
    StreamingQoEPipeline,
    simulate_call,
)

FPS_ALERT_THRESHOLD = 18.0


def live_packet_feed():
    """Two concurrent Teams sessions, merged into one arrival-ordered feed.

    Session A runs over a healthy link; session B hits congestion mid-call.
    (A real deployment would read packets from a capture interface instead.)
    """
    healthy = ConditionSchedule.constant(
        NetworkCondition(throughput_kbps=2500.0, delay_ms=35.0, jitter_ms=4.0), 20
    )
    congested = ConditionSchedule(
        [NetworkCondition(throughput_kbps=2000.0, delay_ms=40.0, jitter_ms=5.0)] * 7
        + [NetworkCondition(throughput_kbps=150.0, delay_ms=140.0, jitter_ms=25.0, loss_rate=0.06)] * 7
        + [NetworkCondition(throughput_kbps=1800.0, delay_ms=40.0, jitter_ms=5.0)] * 6
    )
    session_a = simulate_call(
        SessionConfig(vca="teams", duration_s=20, seed=11, call_id="flat-a"), healthy
    )
    session_b = simulate_call(
        SessionConfig(
            vca="teams",
            duration_s=20,
            seed=12,
            call_id="congested-b",
            client_ip="10.0.0.2",  # a second household: distinct 5-tuple
            client_port=50002,
        ),
        congested,
    )
    packets_a = (p.without_rtp().without_ground_truth() for p in session_a.trace)
    packets_b = (p.without_rtp().without_ground_truth() for p in session_b.trace)
    # Merge the two captures into one interleaved arrival stream.
    return heapq.merge(packets_a, packets_b, key=lambda p: p.timestamp)


def main() -> None:
    # Heuristic mode, no training.  max_frame_age_s bounds estimate latency:
    # if a session's video stalls entirely, its windows still close (flagging
    # the outage live) instead of waiting for the next video packet.
    monitor = StreamingQoEPipeline.for_vca("teams", max_frame_age_s=2.0)
    flow_names: dict = {}

    print("Monitoring live feed (two interleaved sessions, one pass, O(window) memory)\n")
    for packet in live_packet_feed():
        # One packet in; zero or more closed per-flow windows out.
        for emitted in monitor.push(packet):
            name = flow_names.setdefault(emitted.flow, f"flow-{len(flow_names) + 1}")
            estimate = emitted.estimate
            flag = "  <-- degraded" if estimate.frame_rate < FPS_ALERT_THRESHOLD else ""
            print(
                f"[{name}] t={int(estimate.window_start):>3}s  "
                f"fps={estimate.frame_rate:5.1f}  "
                f"bitrate={estimate.bitrate_kbps:7.0f} kbps  "
                f"jitter={estimate.frame_jitter_ms:5.1f} ms{flag}"
            )

    print("\nEnd of capture; flushing the final open windows ...")
    for emitted in monitor.flush():
        name = flow_names.setdefault(emitted.flow, f"flow-{len(flow_names) + 1}")
        estimate = emitted.estimate
        print(f"[{name}] t={int(estimate.window_start):>3}s  fps={estimate.frame_rate:5.1f}  (flush)")

    print(f"\nTracked {len(monitor.flows)} flows; reorder buffers now hold "
          f"{monitor.buffered_packets} packets, {monitor.open_windows} windows open.")
    print("The congested session's alerts should cluster inside t=7s..14s; "
          "the healthy session should stay clean throughout.")


if __name__ == "__main__":
    main()
