"""The lint framework itself: suppressions, reporters, CLI exit codes.

The contracts here are what CI and the editor integration lean on: the
JSON schema is versioned, suppression comments are real comments only,
naming a nonexistent rule in a suppression is an error, and the CLI exits
0 (clean) / 1 (findings) / 2 (usage error).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.devtools import lint_source, render_json, render_text
from repro.devtools.framework import (
    PARSE_ERROR,
    UNKNOWN_SUPPRESSION,
    lint_paths,
    parse_suppressions,
)
from repro.devtools.lint import main
from repro.devtools.report import JSON_SCHEMA_VERSION, render_rule_table

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = "x = 1\n"
DIRTY = textwrap.dedent(
    """
    def route(key, n):
        return hash(key) % n
    """
)


# -- suppression parsing -------------------------------------------------------


def test_parse_suppressions_basic_and_multi():
    source = "a = 1  # detlint: disable=DET001\nb = 2  # detlint: disable=DET001, CODEC002 -- reason\n"
    assert parse_suppressions(source) == {1: {"DET001"}, 2: {"DET001", "CODEC002"}}


def test_parse_suppressions_ignores_strings_and_docstrings():
    source = textwrap.dedent(
        '''
        def f():
            """Docs may show  # detlint: disable=DET001  without suppressing."""
            return "# detlint: disable=DET001"
        '''
    )
    assert parse_suppressions(source) == {}


def test_suppression_of_other_rule_does_not_silence():
    source = DIRTY.replace("return hash(key) % n", "return hash(key) % n  # detlint: disable=EXC001")
    result = lint_source(source, select=("DET001",))
    assert [finding.rule for finding in result.findings] == ["DET001"]
    assert result.suppressed == 0


def test_unknown_rule_suppression_is_an_error():
    result = lint_source("x = 1  # detlint: disable=NOPE999\n")
    assert [finding.rule for finding in result.findings] == [UNKNOWN_SUPPRESSION]
    assert "NOPE999" in result.findings[0].message


def test_unknown_rule_error_fires_even_next_to_a_valid_one():
    source = DIRTY.replace(
        "return hash(key) % n", "return hash(key) % n  # detlint: disable=DET001,NOPE999"
    )
    result = lint_source(source, select=("DET001",))
    # The DET001 finding is suppressed; the typo'd name still errors.
    assert [finding.rule for finding in result.findings] == [UNKNOWN_SUPPRESSION]
    assert result.suppressed == 1


def test_framework_codes_are_not_suppressible():
    result = lint_source("x = 1  # detlint: disable=LINT002\n")
    assert [finding.rule for finding in result.findings] == [UNKNOWN_SUPPRESSION]


def test_parse_error_is_a_finding():
    result = lint_source("def broken(:\n", path="oops.py")
    assert [finding.rule for finding in result.findings] == [PARSE_ERROR]
    assert result.findings[0].path == "oops.py"


# -- reporters -----------------------------------------------------------------


def test_text_report_format():
    result = lint_source(DIRTY, path="pkg/mod.py", select=("DET001",))
    text = render_text(result)
    lines = text.splitlines()
    assert lines[0].startswith("pkg/mod.py:3:")
    assert "DET001" in lines[0]
    assert lines[-1] == "1 finding in 1 files (0 suppressed)"


def test_json_report_schema():
    result = lint_source(DIRTY, path="pkg/mod.py", select=("DET001",))
    payload = json.loads(render_json(result))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 1
    assert payload["suppressed"] == 0
    assert payload["counts"] == {"DET001": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"path", "line", "col", "rule", "message"}
    assert finding["path"] == "pkg/mod.py"
    assert finding["rule"] == "DET001"
    assert isinstance(finding["line"], int) and isinstance(finding["col"], int)


def test_json_report_clean_run():
    payload = json.loads(render_json(lint_source(CLEAN)))
    assert payload["findings"] == []
    assert payload["counts"] == {}


def test_rule_table_lists_every_rule_with_rationale():
    table = render_rule_table()
    for rule_id in ("DET001", "DET002", "DET003", "DET004", "CODEC001",
                    "CODEC002", "SPAWN001", "OBS001", "EXC001", "API001"):  # fmt: skip
        assert rule_id in table


# -- directory walking ---------------------------------------------------------


def test_lint_paths_walks_directories_and_skips_pycache(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "good.py").write_text(CLEAN)
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("def broken(:\n")
    result = lint_paths([tmp_path])
    assert result.files_checked == 1
    assert result.findings == []


# -- CLI exit codes ------------------------------------------------------------


def test_cli_exit_0_on_clean_tree(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    assert main([str(target)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_exit_1_on_findings(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    assert main([str(target), "--select", "DET001"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_cli_exit_2_on_unknown_select_rule(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    assert main([str(target), "--select", "NOPE999"]) == 2
    assert "NOPE999" in capsys.readouterr().err


def test_cli_exit_2_on_missing_path(capsys):
    assert main(["definitely/not/a/path.py"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_exit_2_on_bad_flag(capsys):
    assert main(["--format", "yaml"]) == 2


def test_cli_json_output_file(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    report = tmp_path / "report.json"
    code = main([str(target), "--select", "DET001", "--format", "json", "--output", str(report)])
    assert code == 1
    payload = json.loads(report.read_text())
    assert payload["counts"] == {"DET001": 1}
    assert capsys.readouterr().out == ""


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    assert "DET001" in capsys.readouterr().out


def test_cli_module_invocation_matches_contract(tmp_path):
    """``python -m repro.devtools.lint`` is the documented entry point."""
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    env_src = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", str(target), "--select", "DET001"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "DET001" in proc.stdout
