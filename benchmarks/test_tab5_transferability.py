"""Tables 5, A.4 and A.5: lab-trained models evaluated on real-world data.

Paper shape: lab-to-real-world transfer costs little accuracy for Teams and
Webex but degrades sharply for Meet, whose real-world calls reach bitrate and
resolution regimes the lab data never contained.
"""

from benchmarks.conftest import N_ESTIMATORS, save_artifact
from repro.analysis.reporting import format_table
from repro.analysis.transferability import transferability_table
from repro.core.evaluation import cross_validated_predictions
from repro.ml.metrics import mean_absolute_error


def test_tab5_a4_a5_transferability(benchmark, lab_datasets, real_world_datasets):
    metrics = ("frame_rate", "bitrate", "frame_jitter")

    def run():
        tables = {}
        for metric in metrics:
            tables[metric] = transferability_table(
                lab_datasets, real_world_datasets, metric=metric, n_estimators=N_ESTIMATORS
            )
        # In-domain (real-world-trained) reference MAE for comparison.
        reference = {}
        for vca, dataset in real_world_datasets.items():
            predictions = cross_validated_predictions(dataset, "ipudp_ml", "frame_rate", n_estimators=N_ESTIMATORS)
            reference[vca] = mean_absolute_error(dataset.ground_truth["frame_rate"], predictions)
        return tables, reference

    tables, reference = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = []
    for metric, results in tables.items():
        vcas = sorted({r.vca for r in results})
        rows = []
        for method in ("ipudp_ml", "rtp_ml"):
            row = [method]
            for vca in vcas:
                entry = next(r for r in results if r.vca == vca and r.method == method)
                row.append(round(entry.mae, 2))
            rows.append(row)
        sections.append(
            format_table(
                ["Method", *vcas],
                rows,
                title=f"Tables 5/A.4/A.5 - lab-trained model MAE on real-world data ({metric})",
            )
        )
    sections.append(
        format_table(
            ["VCA", "real-world-trained IP/UDP ML frame-rate MAE"],
            [[vca, round(mae, 2)] for vca, mae in sorted(reference.items())],
            title="Reference: in-domain real-world cross-validated MAE",
        )
    )
    save_artifact("tab5_transferability", "\n\n".join(sections))

    frame_rate_results = tables["frame_rate"]
    for result in frame_rate_results:
        assert result.mae >= 0.0
    # Transfer degrades (or at best matches) the in-domain accuracy.
    for vca, in_domain in reference.items():
        transferred = next(
            r.mae for r in frame_rate_results if r.vca == vca and r.method == "ipudp_ml"
        )
        assert transferred >= in_domain * 0.5
