"""Unit tests for the dataset builders (collection, lab, real-world, sweeps)."""

import numpy as np
import pytest

from repro.datasets.collection import (
    CollectionConfig,
    collect_call,
    collect_calls,
    export_call,
    load_ground_truth_json,
)
from repro.datasets.lab import LabDatasetConfig, PAPER_LAB_SECONDS, build_lab_dataset
from repro.datasets.realworld import (
    PAPER_CALL_COUNTS,
    Household,
    RealWorldConfig,
    build_real_world_dataset,
    default_households,
)
from repro.datasets.synthetic import SweepConfig, build_impairment_sweep
from repro.net.trace import PacketTrace
from repro.netem.conditions import ConditionSchedule, NetworkCondition


class TestCollection:
    def test_collect_call_produces_trace_and_log(self):
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=2000.0), 10)
        result = collect_call("teams", schedule, duration_s=10, seed=1, call_id="c1")
        assert result.config.call_id == "c1"
        assert len(result.trace) > 0
        assert len(result.ground_truth) == 10

    def test_collect_calls_batch(self):
        config = CollectionConfig(vca="webex", n_calls=3, duration_s=8, seed=2)
        schedule = ConditionSchedule.constant(NetworkCondition(throughput_kbps=1000.0), 8)
        calls = collect_calls(config, lambda index, rng: schedule)
        assert len(calls) == 3
        assert len({c.config.call_id for c in calls}) == 3

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CollectionConfig(vca="teams", n_calls=0)

    def test_export_and_reload(self, tmp_path, teams_call):
        pcap_path, json_path = export_call(teams_call, tmp_path)
        assert pcap_path.exists() and json_path.exists()
        restored_trace = PacketTrace.from_pcap(pcap_path)
        assert len(restored_trace) == len(teams_call.trace)
        # Endpoint addresses are anonymised in the exported pcap.
        assert restored_trace[0].ip.src != teams_call.trace[0].ip.src
        log = load_ground_truth_json(json_path)
        assert len(log) == len(teams_call.ground_truth)
        assert np.allclose(log.frame_rates, teams_call.ground_truth.frame_rates)


class TestLabDataset:
    def test_builds_requested_scale(self):
        config = LabDatasetConfig(calls_per_vca=2, call_duration_s=10, vcas=("teams",), seed=3)
        dataset = build_lab_dataset(config)
        assert set(dataset) == {"teams"}
        assert len(dataset["teams"]) == 2
        assert all(call.config.environment == "lab" for call in dataset["teams"])

    def test_paper_volumes_recorded(self):
        assert PAPER_LAB_SECONDS["teams"] == 15_000

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LabDatasetConfig(calls_per_vca=0)
        with pytest.raises(ValueError):
            LabDatasetConfig(vcas=("zoom",))

    def test_challenging_conditions_produce_varied_qoe(self):
        config = LabDatasetConfig(calls_per_vca=3, call_duration_s=15, vcas=("teams",), seed=5)
        dataset = build_lab_dataset(config)
        bitrates = np.concatenate([c.ground_truth.bitrates_kbps for c in dataset["teams"]])
        assert bitrates.std() > 100.0  # NDT-driven conditions vary the quality


class TestRealWorldDataset:
    def test_household_mix(self):
        households = default_households(15)
        assert len(households) == 15
        assert len({h.household_id for h in households}) == 15
        assert all(h.speed_tier_kbps >= 5000.0 for h in households)

    def test_household_validation(self):
        with pytest.raises(ValueError):
            Household(household_id="x", isp="a", speed_tier_kbps=0.0, base_rtt_ms=10.0, wifi_quality=0.5)
        with pytest.raises(ValueError):
            Household(household_id="x", isp="a", speed_tier_kbps=100.0, base_rtt_ms=10.0, wifi_quality=2.0)

    def test_builds_real_world_calls(self):
        config = RealWorldConfig(calls_per_vca=2, vcas=("webex",), seed=7)
        dataset = build_real_world_dataset(config)
        calls = dataset["webex"]
        assert len(calls) == 2
        assert all(call.config.environment == "real_world" for call in calls)
        assert all(15 <= call.duration_s <= 25 for call in calls)
        assert all("household" in call.ground_truth.metadata for call in calls)

    def test_paper_call_counts_recorded(self):
        assert PAPER_CALL_COUNTS == {"meet": 320, "teams": 178, "webex": 417}

    def test_real_world_quality_better_than_constrained_lab(self):
        """Figure A.1 vs A.2: real-world bitrates are higher than the <10 Mbps lab."""
        lab = build_lab_dataset(LabDatasetConfig(calls_per_vca=3, call_duration_s=12, vcas=("teams",), seed=9))
        real = build_real_world_dataset(RealWorldConfig(calls_per_vca=3, vcas=("teams",), seed=9))
        lab_bitrate = np.mean([c.ground_truth.bitrates_kbps[4:].mean() for c in lab["teams"]])
        real_bitrate = np.mean([c.ground_truth.bitrates_kbps[4:].mean() for c in real["teams"]])
        assert real_bitrate >= lab_bitrate * 0.9


class TestImpairmentSweep:
    def test_sweep_structure(self):
        config = SweepConfig(profile_name="packet_loss", calls_per_value=1, call_duration_s=8, vcas=("webex",), values=(1.0, 10.0))
        sweep = build_impairment_sweep(config)
        assert set(sweep) == {"webex"}
        assert set(sweep["webex"]) == {1.0, 10.0}
        assert len(sweep["webex"][1.0]) == 1

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            SweepConfig(profile_name="solar_flares")

    def test_high_loss_degrades_frame_rate(self):
        config = SweepConfig(
            profile_name="packet_loss", calls_per_value=1, call_duration_s=12, vcas=("teams",), values=(1.0, 20.0), seed=13
        )
        sweep = build_impairment_sweep(config)
        low_loss = sweep["teams"][1.0][0].ground_truth.frame_rates[4:].mean()
        high_loss = sweep["teams"][20.0][0].ground_truth.frame_rates[4:].mean()
        assert high_loss <= low_loss + 2.0
