"""Unit tests for the random forests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor


class TestRandomForestRegressor:
    def test_fits_and_predicts_reasonably(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=15, max_depth=8, random_state=0).fit(X, y)
        predictions = forest.predict(X)
        mae = np.mean(np.abs(predictions - y))
        assert mae < 0.5

    def test_number_of_estimators(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=7, max_depth=3, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_predictions_within_target_range(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=10, max_depth=6, random_state=0).fit(X, y)
        predictions = forest.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    def test_reproducible_with_same_seed(self, regression_data):
        X, y = regression_data
        a = RandomForestRegressor(n_estimators=5, max_depth=4, random_state=42).fit(X, y)
        b = RandomForestRegressor(n_estimators=5, max_depth=4, random_state=42).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))

    def test_different_seeds_differ(self, regression_data):
        X, y = regression_data
        a = RandomForestRegressor(n_estimators=5, max_depth=4, random_state=1).fit(X, y)
        b = RandomForestRegressor(n_estimators=5, max_depth=4, random_state=2).fit(X, y)
        assert not np.allclose(a.predict(X), b.predict(X))

    def test_feature_importances_normalised(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=10, max_depth=6, random_state=0).fit(X, y)
        assert forest.feature_importances_ is not None
        assert np.isclose(forest.feature_importances_.sum(), 1.0)
        assert np.all(forest.feature_importances_ >= 0)

    def test_forest_beats_single_shallow_tree_generalisation(self, regression_data):
        X, y = regression_data
        train, test = slice(0, 300), slice(300, None)
        from repro.ml.tree import DecisionTreeRegressor

        tree = DecisionTreeRegressor(max_depth=None).fit(X[train], y[train])
        forest = RandomForestRegressor(n_estimators=20, random_state=0).fit(X[train], y[train])
        tree_error = np.mean(np.abs(tree.predict(X[test]) - y[test]))
        forest_error = np.mean(np.abs(forest.predict(X[test]) - y[test]))
        assert forest_error <= tree_error * 1.2  # bagging should not be much worse

    def test_invalid_n_estimators_raises(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0).fit(X, y)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((2, 3)))

    def test_predict_many_bit_identical_to_row_at_a_time(self, regression_data):
        """Batched inference must not perturb predictions even in the last ulp
        (the sharded monitor's tick batching relies on exact equality)."""
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=10, random_state=3).fit(X, y)
        batched = forest.predict_many(list(X[:32]))
        singles = np.array([forest.predict(row)[0] for row in X[:32]])
        assert batched.tolist() == singles.tolist()  # exact, not approx
        assert forest.predict_many([]).size == 0

    def test_without_bootstrap(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=5, bootstrap=False, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 5
        assert np.isfinite(forest.predict(X[:10])).all()


class TestRandomForestClassifier:
    def test_high_training_accuracy_on_separable_data(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=15, max_depth=8, random_state=0).fit(X, y)
        assert np.mean(forest.predict(X) == y) > 0.9

    def test_probabilities_are_valid(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=10, max_depth=6, random_state=0).fit(X, y)
        proba = forest.predict_proba(X[:40])
        assert proba.shape == (40, len(np.unique(y)))
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0.0) and np.all(proba <= 1.0)

    def test_classes_attribute_sorted_unique(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert list(forest.classes_) == sorted(set(y))

    def test_predictions_are_known_labels(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert set(forest.predict(X)) <= set(y)

    def test_single_class_training(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        y = np.array(["only"] * 30)
        forest = RandomForestClassifier(n_estimators=3, random_state=0).fit(X, y)
        assert np.all(forest.predict(X) == "only")

    def test_feature_importance_identifies_informative_feature(self):
        generator = np.random.default_rng(5)
        X = generator.normal(size=(400, 6))
        y = np.where(X[:, 3] > 0, "pos", "neg")
        forest = RandomForestClassifier(n_estimators=15, max_depth=5, random_state=0).fit(X, y)
        assert int(np.argmax(forest.feature_importances_)) == 3
