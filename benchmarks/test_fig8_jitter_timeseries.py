"""Figure 8: frame-jitter time series for a single Meet call -- IP/UDP ML
predictions against the webrtc-internals ground truth.

Paper shape: the prediction and the ground truth track the same large events;
small network-level spikes are smoothed out of the application-reported jitter
by the jitter buffer.
"""

import numpy as np

from benchmarks.conftest import N_ESTIMATORS, save_artifact
from repro.analysis.reporting import format_table
from repro.core.pipeline import QoEPipeline


def test_fig8_frame_jitter_time_series(benchmark, lab_calls):
    meet_calls = lab_calls["meet"]
    train, held_out = meet_calls[:-1], meet_calls[-1]

    def run():
        pipeline = QoEPipeline.for_vca("meet")
        pipeline.ml.params.n_estimators = N_ESTIMATORS
        pipeline.train(train)
        return pipeline.estimate(held_out.trace)

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)

    by_second = {int(e.window_start): e for e in estimates}
    rows = []
    predicted_series, truth_series = [], []
    for row in held_out.ground_truth.rows:
        estimate = by_second.get(row.second)
        if estimate is None:
            continue
        rows.append([row.second, round(estimate.frame_jitter_ms, 1), round(row.frame_jitter_ms, 1)])
        predicted_series.append(estimate.frame_jitter_ms)
        truth_series.append(row.frame_jitter_ms)
    text = format_table(
        ["second", "IP/UDP ML jitter [ms]", "webrtc-internals jitter [ms]"],
        rows,
        title="Figure 8 - frame jitter time series (single Meet call)",
    )
    save_artifact("fig8_jitter_timeseries", text)

    predicted = np.array(predicted_series)
    truth = np.array(truth_series)
    assert len(predicted) >= held_out.duration_s - 2
    assert np.all(np.isfinite(predicted))
    # The prediction stays in a sane range around the observed jitter scale.
    assert predicted.mean() < truth.mean() + 60.0
