"""Real-world dataset builder (Section 4.2).

The paper's real-world data comes from Raspberry Pis in 15 households across
different ISPs and speed tiers, each initiating a 15-25 second call every 30
minutes over two weeks (320 Meet, 178 Teams and 417 Webex calls).  Compared
with the stressed in-lab conditions, real-world access networks are faster
and more stable, with a small tail of bad calls -- which is why the paper's
ground-truth QoE is higher (Figure A.2) and the errors smaller (Figure 10),
and why lab-trained Meet models transfer poorly (unseen high-bitrate regime,
Section 5.3).

The builder models each household as an access link with a speed tier, a
baseline RTT, diurnal cross-traffic load and occasional WiFi degradation, and
draws calls from the household mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.collection import collect_call
from repro.netem.conditions import ConditionSchedule, NetworkCondition
from repro.webrtc.profiles import VCA_NAMES
from repro.webrtc.session import CallResult

__all__ = ["Household", "RealWorldConfig", "default_households", "build_real_world_dataset", "PAPER_CALL_COUNTS"]

#: Number of calls per VCA in the paper's real-world dataset.
PAPER_CALL_COUNTS: dict[str, int] = {"meet": 320, "teams": 178, "webex": 417}

#: ISP speed tiers (download kbps) sampled for the 15 households.
SPEED_TIERS_KBPS: tuple[float, ...] = (5_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0)


@dataclass(frozen=True)
class Household:
    """One deployment household: its access link characteristics."""

    household_id: str
    isp: str
    speed_tier_kbps: float
    base_rtt_ms: float
    wifi_quality: float  # 0 (poor) .. 1 (excellent)

    def __post_init__(self) -> None:
        if self.speed_tier_kbps <= 0:
            raise ValueError("speed_tier_kbps must be positive")
        if not 0.0 <= self.wifi_quality <= 1.0:
            raise ValueError("wifi_quality must be in [0, 1]")

    def call_schedule(self, duration_s: int, rng: np.random.Generator) -> ConditionSchedule:
        """Network conditions for one call from this household.

        The effective throughput is the speed tier scaled down by concurrent
        cross-traffic (diurnal) and WiFi quality; jitter and loss grow as WiFi
        quality drops; a small fraction of calls hit a congested period.
        """
        cross_traffic = rng.uniform(0.05, 0.45)
        congested = rng.random() < 0.08
        effective = self.speed_tier_kbps * (1.0 - cross_traffic)
        if congested:
            effective *= rng.uniform(0.05, 0.3)
        effective = max(300.0, effective)

        wifi_penalty = 1.0 - self.wifi_quality
        base_jitter = 1.0 + 12.0 * wifi_penalty
        base_loss = 0.002 * wifi_penalty + (0.01 if congested else 0.0)

        conditions = []
        for _ in range(max(1, duration_s)):
            throughput = float(np.clip(rng.normal(effective, 0.08 * effective), 200.0, 200_000.0))
            conditions.append(
                NetworkCondition(
                    throughput_kbps=throughput,
                    delay_ms=self.base_rtt_ms / 2.0 + abs(rng.normal(0.0, 2.0)),
                    jitter_ms=float(np.clip(rng.normal(base_jitter, 1.0), 0.0, 60.0)),
                    loss_rate=float(np.clip(rng.normal(base_loss, base_loss / 2 + 1e-4), 0.0, 0.2)),
                )
            )
        return ConditionSchedule(conditions, interval=1.0)


def default_households(n_households: int = 15, seed: int = 11) -> list[Household]:
    """The 15-household deployment mix (different ISPs and speed tiers)."""
    if n_households < 1:
        raise ValueError("n_households must be >= 1")
    rng = np.random.default_rng(seed)
    isps = ("isp-a", "isp-b", "isp-c", "isp-d")
    households = []
    for index in range(n_households):
        households.append(
            Household(
                household_id=f"home-{index:02d}",
                isp=isps[index % len(isps)],
                speed_tier_kbps=float(rng.choice(SPEED_TIERS_KBPS)),
                base_rtt_ms=float(rng.uniform(10.0, 45.0)),
                wifi_quality=float(rng.uniform(0.55, 1.0)),
            )
        )
    return households


@dataclass(frozen=True)
class RealWorldConfig:
    """Scale of the generated real-world dataset."""

    calls_per_vca: int = 8
    min_call_duration_s: int = 15
    max_call_duration_s: int = 25
    vcas: tuple[str, ...] = VCA_NAMES
    n_households: int = 15
    seed: int = 23

    def __post_init__(self) -> None:
        if self.calls_per_vca < 1:
            raise ValueError("calls_per_vca must be >= 1")
        if not 5 <= self.min_call_duration_s <= self.max_call_duration_s:
            raise ValueError("invalid call duration bounds")


def build_real_world_dataset(
    config: RealWorldConfig | None = None,
    households: list[Household] | None = None,
) -> dict[str, list[CallResult]]:
    """Simulate the real-world dataset; returns ``{vca: [CallResult, ...]}``.

    Every call picks a household uniformly at random (as the RPis' 30-minute
    schedule effectively does over two weeks) and a duration in the paper's
    15-25 second range.
    """
    config = config if config is not None else RealWorldConfig()
    if households is None:
        households = default_households(config.n_households, seed=config.seed)
    rng = np.random.default_rng(config.seed)

    dataset: dict[str, list[CallResult]] = {}
    for vca in config.vcas:
        vca = vca.lower()
        calls: list[CallResult] = []
        for index in range(config.calls_per_vca):
            household = households[int(rng.integers(0, len(households)))]
            duration = int(rng.integers(config.min_call_duration_s, config.max_call_duration_s + 1))
            schedule = household.call_schedule(duration, rng)
            call = collect_call(
                vca=vca,
                schedule=schedule,
                duration_s=duration,
                environment="real_world",
                seed=int(rng.integers(0, 2**31 - 1)),
                call_id=f"{vca}-rw-{household.household_id}-{index:04d}",
            )
            call.ground_truth.metadata["household"] = household.household_id
            call.ground_truth.metadata["isp"] = household.isp
            calls.append(call)
        dataset[vca] = calls
    return dataset
