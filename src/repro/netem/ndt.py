"""Synthetic NDT (Network Diagnostic Test) speed-test traces.

The paper drives its in-lab emulation with the per-test ``tcp-info`` samples
from M-Lab's public NDT dataset: the sequence of instantaneous RTT and loss
values from a single test is replayed directly, while the throughput for each
second is drawn from a normal distribution matching the test's mean and
variance (to avoid replaying slow-start).  Only tests with average speed
below 10 Mbps are used, to create challenging conditions (Section 4.2).

That dataset is not available offline, so this module generates synthetic NDT
tests with the same structure: a per-test average speed drawn from a
heavy-tailed access-speed distribution, per-second throughput/RTT/loss samples
with realistic correlations (loss and RTT inflation when the test saturates
the link), and the same "<10 Mbps only" selection rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netem.conditions import ConditionSchedule, NetworkCondition

__all__ = ["NDTSample", "NDTTrace", "generate_ndt_trace", "generate_ndt_corpus", "schedule_from_ndt"]


@dataclass(frozen=True)
class NDTSample:
    """One tcp-info snapshot from an NDT test (roughly one per second)."""

    elapsed_s: float
    throughput_kbps: float
    rtt_ms: float
    loss_rate: float


@dataclass(frozen=True)
class NDTTrace:
    """A single synthetic NDT test: a sequence of tcp-info snapshots."""

    test_id: str
    samples: tuple[NDTSample, ...]

    @property
    def mean_throughput_kbps(self) -> float:
        return float(np.mean([s.throughput_kbps for s in self.samples]))

    @property
    def std_throughput_kbps(self) -> float:
        return float(np.std([s.throughput_kbps for s in self.samples]))

    @property
    def duration(self) -> float:
        return self.samples[-1].elapsed_s if self.samples else 0.0


def generate_ndt_trace(
    rng: np.random.Generator,
    test_id: str = "ndt-0",
    duration_s: int = 10,
    max_speed_kbps: float = 10_000.0,
) -> NDTTrace:
    """Generate one synthetic NDT test below ``max_speed_kbps``.

    The per-test average speed is drawn log-normally (most access links in the
    challenged regime sit between a few hundred kbps and a few Mbps); the
    per-second samples fluctuate around it, RTT inflates when the sampled
    throughput dips (bufferbloat under saturation), and loss spikes appear on
    a small fraction of seconds.
    """
    if duration_s < 1:
        raise ValueError("duration_s must be >= 1")

    # Average speed: log-normal, clipped to (100, max_speed) kbps.
    mean_speed = float(np.clip(np.exp(rng.normal(7.6, 0.9)), 150.0, max_speed_kbps))
    speed_cv = rng.uniform(0.1, 0.45)  # coefficient of variation within the test
    base_rtt = float(np.clip(np.exp(rng.normal(3.4, 0.6)), 10.0, 250.0))
    lossy_test = rng.random() < 0.35
    base_loss = rng.uniform(0.0, 0.02) if lossy_test else 0.0

    samples = []
    for second in range(duration_s):
        throughput = float(
            np.clip(rng.normal(mean_speed, speed_cv * mean_speed), 100.0, max_speed_kbps)
        )
        # RTT inflation grows when instantaneous throughput falls below the mean
        # (queue building at the bottleneck).
        saturation = max(0.0, (mean_speed - throughput) / mean_speed)
        rtt = base_rtt * (1.0 + 2.0 * saturation) + abs(rng.normal(0.0, 5.0))
        loss = base_loss
        if rng.random() < 0.05:
            loss = min(0.2, loss + rng.uniform(0.01, 0.06))
        samples.append(
            NDTSample(
                elapsed_s=float(second),
                throughput_kbps=throughput,
                rtt_ms=float(rtt),
                loss_rate=float(loss),
            )
        )
    return NDTTrace(test_id=test_id, samples=tuple(samples))


def generate_ndt_corpus(
    n_tests: int,
    rng: np.random.Generator | None = None,
    duration_s: int = 10,
    max_speed_kbps: float = 10_000.0,
) -> list[NDTTrace]:
    """Generate a corpus of synthetic NDT tests (the emulation input pool)."""
    if n_tests < 1:
        raise ValueError("n_tests must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()
    return [
        generate_ndt_trace(rng, test_id=f"ndt-{i}", duration_s=duration_s, max_speed_kbps=max_speed_kbps)
        for i in range(n_tests)
    ]


def schedule_from_ndt(
    trace: NDTTrace,
    duration_s: float,
    rng: np.random.Generator | None = None,
) -> ConditionSchedule:
    """Build an emulation schedule from an NDT test, as the paper does.

    The RTT and loss sequences are replayed as-is (cycled to cover the call
    duration); the per-second throughput is drawn from a normal distribution
    with the test's mean and standard deviation rather than replayed directly,
    to avoid reproducing TCP slow-start artefacts (Section 4.2).  One-way delay
    is taken as half the sampled RTT.
    """
    rng = rng if rng is not None else np.random.default_rng()
    mean = trace.mean_throughput_kbps
    std = trace.std_throughput_kbps
    n_steps = max(1, int(np.ceil(duration_s)))
    conditions = []
    n_samples = len(trace.samples)
    for step in range(n_steps):
        sample = trace.samples[step % n_samples]
        throughput = float(np.clip(rng.normal(mean, std), 100.0, 20_000.0))
        conditions.append(
            NetworkCondition(
                throughput_kbps=throughput,
                delay_ms=sample.rtt_ms / 2.0,
                jitter_ms=min(30.0, sample.rtt_ms * 0.1),
                loss_rate=min(0.5, sample.loss_rate),
            )
        )
    return ConditionSchedule(conditions, interval=1.0)
