"""Frame-boundary estimation from IP/UDP headers (Algorithm 1).

The key insight (Section 3.2.1): VCAs fragment each frame into (nearly)
equal-sized packets, and consecutive frames have different sizes.  So a new
packet whose size is within ``delta_size`` bytes of one of the previous
``lookback`` packets most likely belongs to that packet's frame; otherwise it
starts a new frame.  The lookback absorbs bounded packet reordering.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.net.packet import Packet
from repro.net.trace import PacketTrace

__all__ = ["AssembledFrame", "FrameAssembler", "assemble_frames"]


@dataclass
class AssembledFrame:
    """A frame recovered by the heuristic: its packets and derived attributes."""

    frame_index: int
    packets: list[Packet] = field(default_factory=list)

    def add(self, packet: Packet) -> None:
        self.packets.append(packet)

    @property
    def n_packets(self) -> int:
        return len(self.packets)

    @property
    def size_bytes(self) -> int:
        """Total media payload bytes (UDP payload minus the fixed RTP header)."""
        return sum(p.media_payload_size for p in self.packets)

    @property
    def raw_size_bytes(self) -> int:
        """Total UDP payload bytes including RTP headers."""
        return sum(p.payload_size for p in self.packets)

    @property
    def start_time(self) -> float:
        return min(p.timestamp for p in self.packets)

    @property
    def end_time(self) -> float:
        """Frame completion time: arrival of the last packet (the paper's ET_i)."""
        return max(p.timestamp for p in self.packets)

    @property
    def true_frame_ids(self) -> set[int]:
        """Ground-truth frame ids covered by this assembled frame (evaluation only)."""
        return {p.frame_id for p in self.packets if p.frame_id is not None}

    @property
    def true_rtp_timestamps(self) -> set[int]:
        """Distinct RTP timestamps covered (evaluation only)."""
        return {p.rtp.timestamp for p in self.packets if p.rtp is not None}


class FrameAssembler:
    """Implementation of Algorithm 1 (Appendix B), as an online operator.

    The assembler is a push-based stream processor: feed packets in arrival
    order with :meth:`push` and collect frames as soon as they can no longer
    change.  The retained state is bounded by ``lookback`` -- the last
    ``lookback`` (packet, frame) assignments plus the (at most ``lookback``)
    frames those packets belong to -- so the assembler can run forever over a
    live capture without growing.  :meth:`assemble` is a thin batch adapter
    over the same code path.

    Parameters
    ----------
    delta_size:
        Maximum packet-size difference (bytes) for two packets to be treated
        as part of the same frame (the paper uses 2 bytes for all VCAs).
    lookback:
        How many previously seen packets to compare against (``N_max``); the
        paper uses 3 for Meet, 2 for Teams and 1 for Webex.
    """

    def __init__(self, delta_size: float = 2.0, lookback: int = 2) -> None:
        if delta_size < 0:
            raise ValueError("delta_size must be non-negative")
        if lookback < 1:
            raise ValueError("lookback must be >= 1")
        self.delta_size = delta_size
        self.lookback = lookback
        self.reset()

    # -- streaming interface ---------------------------------------------------

    def reset(self) -> None:
        """Discard all streaming state (recent assignments and open frames)."""
        # The frame each recent packet was assigned to, most recent last.
        self._recent: deque[tuple[Packet, AssembledFrame]] = deque()
        # frame_index -> number of its packets still inside the lookback.
        self._live: dict[int, int] = {}
        self._open: dict[int, AssembledFrame] = {}
        self._next_index = 0

    @property
    def open_frames(self) -> list[AssembledFrame]:
        """Frames that may still gain packets (at most ``lookback`` of them)."""
        return [self._open[index] for index in sorted(self._open)]

    def push(self, packet: Packet) -> list[AssembledFrame]:
        """Feed one packet (non-decreasing arrival order).

        Returns the frames that became *final* as a result: a frame is final
        once none of its packets remain within the lookback, because no future
        packet can then join it.  Callers that need the paper's frame order
        should sort finalized frames by ``frame_index`` (creation order).
        """
        assigned_frame: AssembledFrame | None = None
        for previous, frame in reversed(self._recent):
            if abs(previous.payload_size - packet.payload_size) <= self.delta_size:
                assigned_frame = frame
                break
        if assigned_frame is None:
            assigned_frame = AssembledFrame(frame_index=self._next_index)
            self._next_index += 1
            self._open[assigned_frame.frame_index] = assigned_frame
            self._live[assigned_frame.frame_index] = 0
        assigned_frame.add(packet)
        self._recent.append((packet, assigned_frame))
        self._live[assigned_frame.frame_index] += 1

        finalized: list[AssembledFrame] = []
        if len(self._recent) > self.lookback:
            _, old_frame = self._recent.popleft()
            index = old_frame.frame_index
            self._live[index] -= 1
            if self._live[index] == 0:
                del self._live[index]
                del self._open[index]
                finalized.append(old_frame)
        return finalized

    def flush(self) -> list[AssembledFrame]:
        """Finalize and return the remaining open frames; resets the stream."""
        remaining = [self._open[index] for index in sorted(self._open)]
        self.reset()
        return remaining

    def finalize_stale(self, older_than: float) -> list[AssembledFrame]:
        """Force-finalize open frames whose last packet predates ``older_than``.

        Algorithm 1's lookback is packet-count based, so when a stream's video
        stalls (camera off, total loss) the last frame stays open indefinitely
        and a live monitor would stop emitting windows.  This evicts such
        frames -- and their entries in the lookback -- so estimate latency
        stays bounded in wall-clock terms.  Batch assembly never needs it.
        """
        stale = [frame for frame in self._open.values() if frame.end_time < older_than]
        if not stale:
            return []
        stale_ids = {frame.frame_index for frame in stale}
        self._recent = deque(
            (packet, frame) for packet, frame in self._recent
            if frame.frame_index not in stale_ids
        )
        for frame in stale:
            del self._open[frame.frame_index]
            del self._live[frame.frame_index]
        return sorted(stale, key=lambda f: f.frame_index)

    # -- batch adapters --------------------------------------------------------

    def assemble(self, packets) -> list[AssembledFrame]:
        """Group ``packets`` (in arrival order) into frames.

        Every packet is assigned to exactly one frame.  A packet joins the
        frame of the most recently seen packet (among the last ``lookback``)
        whose size is within ``delta_size`` bytes; otherwise it opens a new
        frame.  This is the batch adapter over :meth:`push`/:meth:`flush`.

        .. warning:: This **resets the instance's streaming state** first --
           do not call it on an assembler that is concurrently being driven
           via :meth:`push`; give each live stream its own instance (as the
           streaming engine does).
        """
        self.reset()
        frames: list[AssembledFrame] = []
        for packet in sorted(packets, key=lambda p: p.timestamp):
            frames.extend(self.push(packet))
        frames.extend(self.flush())
        frames.sort(key=lambda f: f.frame_index)
        return frames

    def assemble_trace(self, trace: PacketTrace) -> list[AssembledFrame]:
        return self.assemble(trace.packets)


def assemble_frames(
    packets, delta_size: float = 2.0, lookback: int = 2
) -> list[AssembledFrame]:
    """Convenience wrapper around :class:`FrameAssembler`."""
    return FrameAssembler(delta_size=delta_size, lookback=lookback).assemble(packets)


def intra_frame_size_differences(trace: PacketTrace) -> np.ndarray:
    """Maximum intra-frame packet size difference per ground-truth frame.

    Used to regenerate Figure 2 (intra-frame CDF).  Frames are identified by
    the ground-truth frame annotations; frames with fewer than two packets are
    skipped, as in the paper.
    """
    sizes_by_frame: dict[int, list[int]] = {}
    for packet in trace:
        if packet.frame_id is None:
            continue
        sizes_by_frame.setdefault(packet.frame_id, []).append(packet.payload_size)
    diffs = [
        max(sizes) - min(sizes)
        for sizes in sizes_by_frame.values()
        if len(sizes) >= 2
    ]
    return np.array(diffs, dtype=float)


def inter_frame_size_differences(trace: PacketTrace) -> np.ndarray:
    """Absolute size difference between the last packet of one ground-truth
    frame and the first packet of the next (Figure 2, inter-frame CDF)."""
    frames: dict[int, list[Packet]] = {}
    for packet in trace:
        if packet.frame_id is None:
            continue
        frames.setdefault(packet.frame_id, []).append(packet)
    ordered_frames = [
        sorted(packets, key=lambda p: p.timestamp)
        for _, packets in sorted(frames.items(), key=lambda item: min(p.timestamp for p in item[1]))
    ]
    diffs = []
    for previous, current in zip(ordered_frames, ordered_frames[1:]):
        diffs.append(abs(current[0].payload_size - previous[-1].payload_size))
    return np.array(diffs, dtype=float)
