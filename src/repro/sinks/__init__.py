"""Pluggable estimate consumers for the Source -> Engine -> Sink monitor API.

One base class (:class:`~repro.sinks.base.EstimateSink`: ``emit`` one
estimate, ``close`` at end of stream, ``with``-block support for free;
duck-typed ``emit``/``close`` objects keep working) and five
implementations:

* :class:`~repro.sinks.base.CollectorSink` -- retain everything in memory
  (tests, small offline runs);
* :class:`~repro.sinks.files.JSONLinesSink` / :class:`~repro.sinks.files.CSVSink`
  -- stream flat records to disk, one line per window per flow;
* :class:`~repro.sinks.summary.SummarySink` -- rolling per-flow QoE
  aggregates (running means, degraded-seconds counters);
* :class:`~repro.sinks.summary.MetricsSnapshotSink` -- monotonic counters
  exposed via :meth:`~repro.sinks.summary.MetricsSnapshotSink.snapshot` for
  scraping.

All sinks other than the collector are O(1) per estimate, preserving the
engine's O(window)-per-flow memory bound end to end.
"""

from repro.sinks.base import CollectorSink, EstimateSink, estimate_as_dict, flow_as_dict
from repro.sinks.files import CSVSink, JSONLinesSink
from repro.sinks.summary import FlowSummary, MetricsSnapshotSink, SummarySink

__all__ = [
    "EstimateSink",
    "CollectorSink",
    "JSONLinesSink",
    "CSVSink",
    "SummarySink",
    "FlowSummary",
    "MetricsSnapshotSink",
    "estimate_as_dict",
    "flow_as_dict",
]
