"""Cross-validation utilities.

The paper reports all ML accuracy numbers over 5-fold cross validation
(Section 4.3); :func:`cross_val_predict` produces out-of-fold predictions for
every sample, which is what the error box plots and confusion matrices are
computed from.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["KFold", "StratifiedKFold", "train_test_split", "cross_val_predict", "GroupKFold"]


class KFold:
    """Split indices into ``n_splits`` contiguous (optionally shuffled) folds."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(X)
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_idx = indices[start : start + size]
            train_idx = np.concatenate([indices[:start], indices[start + size :]])
            yield train_idx, test_idx
            start += size


class StratifiedKFold:
    """K-fold splitting that preserves the class distribution in each fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: int | None = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        y = np.asarray(y)
        n = len(y)
        if len(X) != n:
            raise ValueError("X and y have inconsistent lengths")
        rng = np.random.default_rng(self.random_state)
        # Assign a fold to every sample, class by class, round-robin.
        fold_of = np.empty(n, dtype=int)
        for cls in np.unique(y):
            cls_idx = np.nonzero(y == cls)[0]
            if self.shuffle:
                rng.shuffle(cls_idx)
            fold_of[cls_idx] = np.arange(len(cls_idx)) % self.n_splits
        all_idx = np.arange(n)
        for fold in range(self.n_splits):
            test_idx = all_idx[fold_of == fold]
            train_idx = all_idx[fold_of != fold]
            if len(test_idx) == 0:
                raise ValueError(
                    f"fold {fold} is empty; too few samples for {self.n_splits} folds"
                )
            yield train_idx, test_idx


class GroupKFold:
    """K-fold splitting where all samples of a group land in the same fold.

    Used to split by call/session so per-second windows from the same call do
    not leak between training and test folds.
    """

    def __init__(self, n_splits: int = 5) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits

    def split(self, X, y=None, groups=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if groups is None:
            raise ValueError("GroupKFold requires a groups array")
        groups = np.asarray(groups)
        if len(groups) != len(X):
            raise ValueError("groups and X have inconsistent lengths")
        unique_groups, group_counts = np.unique(groups, return_counts=True)
        if len(unique_groups) < self.n_splits:
            raise ValueError(
                f"cannot split {len(unique_groups)} groups into {self.n_splits} folds"
            )
        # Greedy balancing: assign the largest groups first to the emptiest fold.
        order = np.argsort(-group_counts)
        fold_sizes = np.zeros(self.n_splits, dtype=int)
        fold_of_group: dict = {}
        for group_idx in order:
            fold = int(np.argmin(fold_sizes))
            fold_of_group[unique_groups[group_idx]] = fold
            fold_sizes[fold] += group_counts[group_idx]
        sample_fold = np.array([fold_of_group[g] for g in groups])
        all_idx = np.arange(len(groups))
        for fold in range(self.n_splits):
            test_idx = all_idx[sample_fold == fold]
            train_idx = all_idx[sample_fold != fold]
            yield train_idx, test_idx


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    random_state: int | None = None,
    shuffle: bool = True,
):
    """Split each array into a train part and a test part.

    Returns ``train_a, test_a, train_b, test_b, ...`` in the same order the
    arrays were passed, mirroring the scikit-learn helper.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = len(arrays[0])
    for array in arrays:
        if len(array) != n:
            raise ValueError("all arrays must have the same length")
    indices = np.arange(n)
    if shuffle:
        rng = np.random.default_rng(random_state)
        rng.shuffle(indices)
    n_test = max(1, int(round(test_size * n)))
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    result = []
    for array in arrays:
        array = np.asarray(array)
        result.append(array[train_idx])
        result.append(array[test_idx])
    return result


def cross_val_predict(
    estimator_factory,
    X: np.ndarray,
    y: np.ndarray,
    cv: KFold | StratifiedKFold | None = None,
    groups: np.ndarray | None = None,
) -> np.ndarray:
    """Out-of-fold predictions for every sample.

    ``estimator_factory`` is a zero-argument callable returning a fresh,
    unfitted estimator; a new instance is created per fold so no state leaks
    across folds.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if cv is None:
        cv = KFold(n_splits=5, shuffle=True, random_state=0)
    predictions = np.empty(len(y), dtype=object)
    seen = np.zeros(len(y), dtype=bool)
    split_args = (X, y, groups) if isinstance(cv, GroupKFold) else (X, y)
    for train_idx, test_idx in cv.split(*split_args):
        estimator = estimator_factory()
        estimator.fit(X[train_idx], y[train_idx])
        fold_pred = estimator.predict(X[test_idx])
        for i, pred in zip(test_idx, fold_pred):
            predictions[i] = pred
        seen[test_idx] = True
    if not seen.all():
        raise RuntimeError("cross validation did not cover every sample")
    # Convert to a homogeneous array (float when possible, keeping labels otherwise).
    try:
        return np.array([float(p) for p in predictions])
    except (TypeError, ValueError):
        return np.array(list(predictions))
