"""K-way timestamp merge of several packet sources.

A deployment often taps more than one capture point -- several interface
mirrors, one pcap per link, per-direction captures -- and the engine wants a
single arrival-ordered packet stream.  :class:`MergedSource` performs a
streaming k-way merge by timestamp: memory is O(k) (one look-ahead packet per
source), never O(capture), regardless of how far the sources' clocks are
offset from each other.

Inter-source timestamp skew of any magnitude is handled exactly (source B
starting hours before source A is fine: B simply drains first).  *Intra*-
source disorder is passed through as-is -- each source is expected to be
internally arrival-ordered, which every capture is by construction -- and
anything small that slips through is absorbed by the engine's per-flow
reorder buffer downstream.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.net.packet import Packet
from repro.sources.base import PacketSource, as_source

__all__ = ["MergedSource"]


class MergedSource:
    """Merge ``sources`` into one globally timestamp-ordered packet stream.

    Ties on timestamp are broken by source position (earlier-listed sources
    win), making the merge deterministic and stable.  Accepts anything
    :func:`~repro.sources.base.as_source` understands: sources, traces, pcap
    paths, bare iterables.
    """

    def __init__(self, *sources) -> None:
        if not sources:
            raise ValueError("MergedSource needs at least one source")
        self.sources: tuple[PacketSource, ...] = tuple(as_source(s) for s in sources)

    def __iter__(self) -> Iterator[Packet]:
        iterators = [iter(source) for source in self.sources]
        # Heap entries are (timestamp, source_index, packet); each source has
        # at most one packet in flight, so (timestamp, source_index) is unique
        # and the packet itself is never compared.
        heap: list[tuple[float, int, Packet]] = []
        for index, iterator in enumerate(iterators):
            packet = next(iterator, None)
            if packet is not None:
                heap.append((packet.timestamp, index, packet))
        heapq.heapify(heap)
        while heap:
            _, index, packet = heapq.heappop(heap)
            yield packet
            refill = next(iterators[index], None)
            if refill is not None:
                heapq.heappush(heap, (refill.timestamp, index, refill))
