"""PipelineConfig: validation at construction, wiring into both pipelines."""

import dataclasses

import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import QoEPipeline
from repro.core.streaming import StreamingQoEPipeline


class TestValidation:
    @pytest.mark.parametrize("window_s", [0, -1, -0.5, float("nan"), float("inf")])
    def test_window_must_be_positive_finite(self, window_s):
        with pytest.raises(ValueError, match="window_s"):
            PipelineConfig(window_s=window_s)

    @pytest.mark.parametrize("lookback", [0, -1, -5])
    def test_lookback_must_be_positive(self, lookback):
        with pytest.raises(ValueError, match="lookback"):
            PipelineConfig(lookback=lookback)

    @pytest.mark.parametrize("reorder_depth", [-1, -10])
    def test_reorder_depth_must_be_non_negative(self, reorder_depth):
        with pytest.raises(ValueError, match="reorder_depth"):
            PipelineConfig(reorder_depth=reorder_depth)

    def test_reorder_depth_zero_is_allowed(self):
        assert PipelineConfig(reorder_depth=0).reorder_depth == 0

    def test_backfill_limit_negative_rejected(self):
        with pytest.raises(ValueError, match="backfill_limit"):
            PipelineConfig(backfill_limit=-1)

    @pytest.mark.parametrize("field,value", [
        ("max_frame_age_s", 0.0),
        ("max_frame_age_s", -1.0),
        ("idle_timeout_s", 0.0),
        ("idle_timeout_s", -2.0),
        ("delta_size", -1.0),
        ("start", float("inf")),
    ])
    def test_other_field_validation(self, field, value):
        with pytest.raises(ValueError, match=field):
            PipelineConfig(**{field: value})

    def test_idle_timeout_shorter_than_window_rejected(self):
        # Evicting faster than windows close would double-emit a window.
        with pytest.raises(ValueError, match="idle_timeout_s.*window_s"):
            PipelineConfig(window_s=1.0, idle_timeout_s=0.5)
        assert PipelineConfig(window_s=1.0, idle_timeout_s=1.0).idle_timeout_s == 1.0

    def test_none_disables_optional_bounds(self):
        config = PipelineConfig(
            lookback=None, reorder_depth=None, max_frame_age_s=None,
            backfill_limit=None, idle_timeout_s=None,
        )
        assert config.backfill_limit is None

    def test_frozen(self):
        config = PipelineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.window_s = 2.0

    def test_replace_revalidates(self):
        config = PipelineConfig()
        assert config.replace(window_s=0.5).window_s == 0.5
        with pytest.raises(ValueError):
            config.replace(window_s=0)

    def test_round_trips_through_dict(self):
        config = PipelineConfig(window_s=0.5, lookback=3, max_frame_age_s=2.0)
        assert PipelineConfig.from_dict(config.to_dict()) == config


class TestWiring:
    def test_pipeline_window_from_config(self):
        pipeline = QoEPipeline.for_vca("teams", config=PipelineConfig(window_s=2.0))
        assert pipeline.window_s == 2.0
        assert pipeline.config.window_s == 2.0

    def test_window_kwarg_overrides_config(self):
        pipeline = QoEPipeline.for_vca("teams", window_s=3, config=PipelineConfig(window_s=2.0))
        assert pipeline.window_s == 3.0

    def test_invalid_window_rejected_via_kwarg(self):
        with pytest.raises(ValueError):
            QoEPipeline.for_vca("teams", window_s=0)

    def test_assembly_params_default_to_profile(self):
        pipeline = QoEPipeline.for_vca("teams")
        assert pipeline.heuristic.assembler.lookback == pipeline.profile.heuristic_lookback
        assert pipeline.heuristic.assembler.delta_size == pipeline.profile.heuristic_size_threshold

    def test_assembly_params_overridable(self):
        pipeline = QoEPipeline.for_vca("teams", config=PipelineConfig(lookback=5, delta_size=4.0))
        assert pipeline.heuristic.assembler.lookback == 5
        assert pipeline.heuristic.assembler.delta_size == 4.0

    def test_engine_inherits_pipeline_config(self):
        config = PipelineConfig(reorder_depth=7, max_frame_age_s=3.0, backfill_limit=2)
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams", config=config))
        assert engine.reorder_depth == 7
        assert engine.max_frame_age_s == 3.0
        assert engine.backfill_limit == 2

    def test_engine_kwargs_override_config(self):
        pipeline = QoEPipeline.for_vca("teams", config=PipelineConfig(reorder_depth=7))
        engine = StreamingQoEPipeline(pipeline, reorder_depth=2, demux_flows=False)
        assert engine.reorder_depth == 2
        assert not engine.demux_flows
        # The pipeline's own config is untouched (frozen).
        assert pipeline.config.reorder_depth == 7

    def test_engine_resolves_default_reorder_depth_to_lookback(self):
        pipeline = QoEPipeline.for_vca("teams")
        engine = StreamingQoEPipeline(pipeline)
        assert engine.reorder_depth == pipeline.heuristic.assembler.lookback

    def test_engine_rejects_invalid_override(self):
        with pytest.raises(ValueError):
            StreamingQoEPipeline(QoEPipeline.for_vca("teams"), reorder_depth=-1)

    def test_engine_config_override_reaches_the_assembler(self):
        """A per-engine lookback/delta override must actually take effect,
        not be silently shadowed by the pipeline's pre-built heuristic."""
        from repro.net.packet import IPv4Header, Packet, UDPHeader

        pipeline = QoEPipeline.for_vca("teams")  # profile lookback=2, delta=2.0
        engine = StreamingQoEPipeline(
            pipeline, config=pipeline.config.replace(lookback=9, delta_size=500.0)
        )
        # The default reorder depth follows the *effective* lookback.
        assert engine.reorder_depth == 9
        engine.push(Packet(
            timestamp=0.1,
            ip=IPv4Header(src="192.0.2.10", dst="10.0.0.1"),
            udp=UDPHeader(src_port=3478, dst_port=51000),
            payload_size=1000,
        ))
        stream = next(iter(engine._streams.values()))
        assert stream.assembler.lookback == 9
        assert stream.assembler.delta_size == 500.0

    def test_training_with_multi_second_window(self, teams_calls_small):
        """window_s=2 trained fine before the config refactor and must still."""
        pipeline = QoEPipeline.for_vca("teams", window_s=2).train(teams_calls_small)
        estimates = pipeline.estimate(teams_calls_small[0].trace)
        assert estimates and all(e.source == "ml" for e in estimates)
        assert estimates[1].window_start == 2.0

    def test_training_with_fractional_window_fails_clearly(self, teams_calls_small):
        pipeline = QoEPipeline.for_vca("teams", config=PipelineConfig(window_s=0.5))
        with pytest.raises(ValueError, match="integer window_s"):
            pipeline.train(teams_calls_small)
