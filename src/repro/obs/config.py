"""Frozen observability configuration: the on/off switch and the buckets.

:class:`ObsConfig` mirrors the shape of
:class:`~repro.core.config.PipelineConfig` -- a frozen, validated dataclass
that round-trips through ``to_dict``/``from_dict`` so it can cross the
worker process boundary as plain JSON-able data.  The default is
**disabled**: every instrumentation site in the hot path guards on a plain
``obs is not None`` check (the router-overlay idiom), so a monitor that
never asked for telemetry pays one falsy branch per tick and allocates
nothing.

The histogram buckets are part of the config on purpose: fixing the bucket
bounds once, before any process is spawned, is what makes per-worker
histogram snapshots *mergeable* -- the parent can add bucket counts
elementwise because every registry in the fleet quantized with the same
bounds.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace

__all__ = ["ObsConfig", "DEFAULT_LATENCY_BUCKETS"]

#: Default stage-latency histogram bounds (seconds), spanning sub-100us
#: ring pushes up to multi-second migration cuts.  Prometheus ``le``
#: semantics: bucket *i* counts observations ``<= bounds[i]``; anything
#: larger lands in the implicit ``+Inf`` bucket.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class ObsConfig:
    """Immutable configuration of the telemetry plane.

    Parameters
    ----------
    enabled:
        Master switch.  ``False`` (default) means no registry is created
        and every instrumentation site compiles down to one falsy branch.
    stage_timing:
        When enabled, record per-stage latency spans into the
        ``qoe_stage_seconds`` histogram.  Turning this off keeps the
        counters/gauges but skips the clock reads' histogram inserts --
        useful when only throughput counters are wanted.
    buckets:
        Strictly increasing, positive, finite histogram bucket upper
        bounds (seconds).  Chosen once per deployment; every process in a
        sharded run quantizes with the same bounds so snapshots merge
        exactly.
    """

    enabled: bool = False
    stage_timing: bool = True
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS

    def __post_init__(self) -> None:
        buckets = tuple(float(b) for b in self.buckets)
        object.__setattr__(self, "buckets", buckets)
        if not buckets:
            raise ValueError("buckets must contain at least one bound")
        previous = 0.0
        for bound in buckets:
            if not math.isfinite(bound) or bound <= 0:
                raise ValueError(f"bucket bounds must be positive and finite, got {bound!r}")
            if bound <= previous and previous != 0.0:
                raise ValueError(f"buckets must be strictly increasing, got {buckets!r}")
            previous = bound

    def replace(self, **changes) -> "ObsConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    # -- persistence / wire format --------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (crosses the spawn boundary to workers)."""
        data = asdict(self)
        data["buckets"] = list(self.buckets)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ObsConfig":
        """Inverse of :meth:`to_dict` (unknown keys rejected by construction)."""
        data = dict(data)
        if "buckets" in data:
            data["buckets"] = tuple(data["buckets"])
        return cls(**data)
