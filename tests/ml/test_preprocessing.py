"""Unit tests for preprocessing helpers."""

import numpy as np
import pytest

from repro.ml.preprocessing import LabelEncoder, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        generator = np.random.default_rng(0)
        X = generator.normal(loc=5.0, scale=3.0, size=(200, 4))
        transformed = StandardScaler().fit_transform(X)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_does_not_produce_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        transformed = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(transformed))
        assert np.allclose(transformed[:, 0], 0.0)

    def test_inverse_transform_round_trip(self):
        generator = np.random.default_rng(1)
        X = generator.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 3)))


class TestLabelEncoder:
    def test_round_trip(self):
        labels = np.array(["meet", "teams", "webex", "teams"])
        encoder = LabelEncoder().fit(labels)
        encoded = encoder.transform(labels)
        assert encoded.dtype == int
        assert np.array_equal(encoder.inverse_transform(encoded), labels)

    def test_classes_sorted(self):
        encoder = LabelEncoder().fit(["webex", "meet", "teams"])
        assert list(encoder.classes_) == ["meet", "teams", "webex"]

    def test_unseen_label_raises(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.transform(["c"])

    def test_out_of_range_inverse_raises(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.inverse_transform([5])

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])
