"""Learning substrate: a small, self-contained replacement for the parts of
scikit-learn the paper relies on.

The paper trains classical supervised models (random forests, decision trees,
SVMs) with 5-fold cross validation and inspects impurity-based feature
importances.  This package provides those pieces with a familiar
fit/predict API:

* :mod:`repro.ml.tree` -- CART decision trees for regression and classification.
* :mod:`repro.ml.forest` -- random forests built on the CART trees.
* :mod:`repro.ml.linear` -- ordinary least squares and ridge regression.
* :mod:`repro.ml.neighbors` -- k-nearest-neighbour baselines.
* :mod:`repro.ml.model_selection` -- K-fold splitting, train/test split and
  cross-validated prediction.
* :mod:`repro.ml.metrics` -- the error metrics used throughout the paper
  (MAE, MRAE, accuracy, confusion matrices).
* :mod:`repro.ml.preprocessing` -- feature scaling and label encoding.

All estimators accept and return :class:`numpy.ndarray` objects and follow
the convention that ``X`` has shape ``(n_samples, n_features)``.
"""

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    mean_absolute_error,
    mean_relative_absolute_error,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_predict,
    train_test_split,
)
from repro.ml.neighbors import KNeighborsClassifier, KNeighborsRegressor
from repro.ml.preprocessing import LabelEncoder, StandardScaler
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "RandomForestRegressor",
    "RandomForestClassifier",
    "LinearRegression",
    "RidgeRegression",
    "KNeighborsRegressor",
    "KNeighborsClassifier",
    "KFold",
    "StratifiedKFold",
    "train_test_split",
    "cross_val_predict",
    "StandardScaler",
    "LabelEncoder",
    "mean_absolute_error",
    "mean_relative_absolute_error",
    "root_mean_squared_error",
    "r2_score",
    "accuracy_score",
    "confusion_matrix",
]
