"""Aggregating sinks: rolling per-flow QoE summaries and scrape-able counters.

These are the sinks a long-running monitor actually keeps attached: instead
of retaining estimates they fold each one into O(1)-per-flow aggregates --
what an operator dashboard or a Prometheus scrape endpoint wants.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

from repro.core.streaming import StreamEstimate
from repro.net.flows import FlowKey

# The registry submodule is imported directly (not the repro.obs package):
# repro.obs.__init__ pulls in the log sink, which imports repro.sinks --
# going through the package here would be a circular import.
from repro.obs.registry import MetricsRegistry
from repro.sinks.base import EstimateSink

__all__ = ["FlowSummary", "SummarySink", "MetricsSnapshotSink"]


@dataclass
class FlowSummary:
    """Rolling QoE aggregates for one flow (running means, no history)."""

    windows: int = 0
    degraded_windows: int = 0
    mean_frame_rate: float = 0.0
    mean_bitrate_kbps: float = 0.0
    mean_frame_jitter_ms: float = 0.0
    min_frame_rate: float = math.inf
    max_frame_jitter_ms: float = 0.0
    first_window_start: float | None = None
    last_window_start: float | None = None
    #: Windows per predicted resolution label (trained pipelines only).
    resolution_counts: dict[str, int] = field(default_factory=dict)

    def update(self, item: StreamEstimate, degraded: bool) -> None:
        estimate = item.estimate
        self.windows += 1
        self.degraded_windows += int(degraded)
        # Running means: numerically stable, no per-window history retained.
        inv = 1.0 / self.windows
        self.mean_frame_rate += (estimate.frame_rate - self.mean_frame_rate) * inv
        self.mean_bitrate_kbps += (estimate.bitrate_kbps - self.mean_bitrate_kbps) * inv
        self.mean_frame_jitter_ms += (estimate.frame_jitter_ms - self.mean_frame_jitter_ms) * inv
        self.min_frame_rate = min(self.min_frame_rate, estimate.frame_rate)
        self.max_frame_jitter_ms = max(self.max_frame_jitter_ms, estimate.frame_jitter_ms)
        if self.first_window_start is None:
            self.first_window_start = estimate.window_start
        self.last_window_start = estimate.window_start
        if estimate.resolution is not None:
            self.resolution_counts[estimate.resolution] = (
                self.resolution_counts.get(estimate.resolution, 0) + 1
            )

    @property
    def degraded_fraction(self) -> float:
        return self.degraded_windows / self.windows if self.windows else 0.0


class _DegradationRule(EstimateSink):
    """Shared degraded-window predicate for the aggregating sinks.

    ``degraded_fps_threshold`` tags windows whose estimated frame rate falls
    below it -- the paper's motivating operator signal; ``degraded_when``
    replaces that rule with an arbitrary per-estimate predicate (e.g. fps
    *or* bitrate floors).
    """

    def __init__(
        self,
        degraded_fps_threshold: float | None = None,
        degraded_when=None,
    ) -> None:
        self.degraded_fps_threshold = degraded_fps_threshold
        self.degraded_when = degraded_when

    def _is_degraded(self, item: StreamEstimate) -> bool:
        if self.degraded_when is not None:
            return bool(self.degraded_when(item.estimate))
        return (
            self.degraded_fps_threshold is not None
            and item.estimate.frame_rate < self.degraded_fps_threshold
        )


class SummarySink(_DegradationRule):
    """Per-flow rolling QoE aggregates (the dashboard view).

    Degraded windows are tagged per :class:`_DegradationRule`, giving each
    flow a degraded-seconds counter.  State is O(live flows), not O(windows).
    """

    def __init__(
        self,
        degraded_fps_threshold: float | None = None,
        degraded_when=None,
    ) -> None:
        super().__init__(degraded_fps_threshold, degraded_when)
        self.flows: dict[FlowKey | None, FlowSummary] = {}
        self.closed = False

    def emit(self, item: StreamEstimate) -> None:
        self.flows.setdefault(item.flow, FlowSummary()).update(item, self._is_degraded(item))

    def close(self) -> None:
        self.closed = True

    def summary(self) -> dict[FlowKey | None, FlowSummary]:
        """The whole ``{flow: FlowSummary}`` map (key ``None`` in single-flow mode)."""
        return dict(self.flows)

    def for_flow(self, flow: FlowKey | None) -> FlowSummary:
        """One flow's aggregates (``flow=None`` for single-flow mode)."""
        if flow not in self.flows:
            raise KeyError(f"no estimates seen for flow {flow}")
        return self.flows[flow]


class MetricsSnapshotSink(_DegradationRule):
    """Monotonic counters and gauges for scraping (Prometheus-style).

    Since PR 8 the sink is a thin recorder over its own
    :class:`~repro.obs.registry.MetricsRegistry` (exposed as
    :attr:`registry`): :meth:`metrics` returns the structured registry
    snapshot and :meth:`render_prometheus` the text exposition -- the same
    formats the monitors' telemetry plane produces, so one scrape handler
    serves both.  Counters never reset, so deltas between scrapes are
    meaningful.  Degraded windows are counted per :class:`_DegradationRule`.
    State is O(live flows) (the flow-key set) plus a handful of series.

    The pre-PR-8 :meth:`snapshot` flat mapping is kept as a deprecated
    alias with its public metric names unchanged.
    """

    def __init__(
        self,
        degraded_fps_threshold: float | None = None,
        degraded_when=None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(degraded_fps_threshold, degraded_when)
        #: The backing registry; pass one in to share it (e.g. the owning
        #: monitor's), otherwise the sink owns a private one.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._flows: set = set()
        self._sources: set[str] = set()
        self.closed = False

    def emit(self, item: StreamEstimate) -> None:
        registry = self.registry
        if item.flow not in self._flows:
            self._flows.add(item.flow)
            registry.set_gauge("qoe_flows_seen", len(self._flows))
        registry.inc("qoe_estimates_total")
        source = item.estimate.source
        self._sources.add(source)
        registry.inc("qoe_estimates_by_source_total", labels=(("source", source),))
        if self._is_degraded(item):
            registry.inc("qoe_degraded_windows_total")
        last = registry.gauge_value("qoe_last_window_start_seconds")
        if last is None or item.estimate.window_start > last:
            registry.set_gauge("qoe_last_window_start_seconds", item.estimate.window_start)

    def close(self) -> None:
        self.closed = True

    def metrics(self) -> dict:
        """The structured registry snapshot (see ``MetricsRegistry.snapshot``)."""
        return self.registry.snapshot()

    def render_prometheus(self) -> str:
        """The sink's series in the Prometheus text exposition format."""
        return self.registry.render_prometheus()

    def snapshot(self) -> dict[str, float]:
        """Deprecated: the pre-PR-8 flat ``{metric_name: number}`` mapping.

        Metric names (including the unquoted ``{source=...}`` label form)
        are unchanged from earlier releases and pinned by test; new code
        should read :meth:`metrics` or :meth:`render_prometheus`, which use
        the registry's quoted-label Prometheus series names.
        """
        warnings.warn(
            "MetricsSnapshotSink.snapshot() is deprecated; use metrics() for the "
            "structured registry snapshot or render_prometheus() for scrape text",
            DeprecationWarning,
            stacklevel=2,
        )
        registry = self.registry
        counters: dict[str, float] = {
            "qoe_estimates_total": registry.counter_value("qoe_estimates_total"),
            "qoe_degraded_windows_total": registry.counter_value("qoe_degraded_windows_total"),
            "qoe_flows_seen": len(self._flows),
        }
        for source in sorted(self._sources):
            counters[f"qoe_estimates_by_source_total{{source={source}}}"] = (
                registry.counter_value(
                    "qoe_estimates_by_source_total", (("source", source),)
                )
            )
        last = registry.gauge_value("qoe_last_window_start_seconds")
        if last is not None:
            counters["qoe_last_window_start_seconds"] = last
        return counters
