"""Receiver-side adaptive jitter buffer.

WebRTC receivers delay decoded frames by an adaptive amount so playback stays
smooth despite network jitter.  The paper points out (Section 5.1.4) that the
frame jitter reported by ``webrtc-internals`` is measured *after* this buffer,
so it differs from the network-level frame jitter the estimators can see:
small arrival-time spikes are smoothed away, while a large spike empties the
buffer and shows up later and larger.  This module reproduces that behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["JitterBuffer", "PlayoutEvent"]


@dataclass(frozen=True)
class PlayoutEvent:
    """A frame emitted from the jitter buffer towards the decoder/renderer."""

    frame_id: int
    playout_time: float
    completion_time: float
    size_bytes: int
    height: int

    @property
    def buffering_delay(self) -> float:
        return self.playout_time - self.completion_time


class JitterBuffer:
    """Adaptive playout delay with a minimum render spacing.

    The target delay tracks an exponentially weighted estimate of the
    completion-time jitter (like WebRTC's inter-arrival jitter estimate); the
    playout time of each frame is its completion time plus the target delay,
    but never earlier than the previous playout plus the minimum render
    interval, which is what smooths bursts of late frames into evenly spaced
    playouts.
    """

    def __init__(
        self,
        min_delay_ms: float = 10.0,
        max_delay_ms: float = 200.0,
        min_render_interval_ms: float = 1000.0 / 60.0,
        jitter_multiplier: float = 2.0,
    ) -> None:
        if min_delay_ms < 0 or max_delay_ms < min_delay_ms:
            raise ValueError("invalid jitter buffer delay bounds")
        self.min_delay_ms = min_delay_ms
        self.max_delay_ms = max_delay_ms
        self.min_render_interval = min_render_interval_ms / 1000.0
        self.jitter_multiplier = jitter_multiplier
        self._jitter_estimate_ms = 0.0
        self._last_completion: float | None = None
        self._last_interval: float | None = None
        self._last_playout: float | None = None

    @property
    def target_delay_ms(self) -> float:
        """Current adaptive playout delay."""
        return float(
            np.clip(
                self.jitter_multiplier * self._jitter_estimate_ms,
                self.min_delay_ms,
                self.max_delay_ms,
            )
        )

    def _update_jitter_estimate(self, completion_time: float) -> None:
        if self._last_completion is not None:
            interval = completion_time - self._last_completion
            if self._last_interval is not None:
                deviation_ms = abs(interval - self._last_interval) * 1000.0
                # Same 1/16 EWMA gain WebRTC uses for its jitter estimate.
                self._jitter_estimate_ms += (deviation_ms - self._jitter_estimate_ms) / 16.0
            self._last_interval = interval
        self._last_completion = completion_time

    def submit(self, frame_id: int, completion_time: float, size_bytes: int, height: int) -> PlayoutEvent:
        """Submit a completed frame; returns its playout event."""
        self._update_jitter_estimate(completion_time)
        playout = completion_time + self.target_delay_ms / 1000.0
        if self._last_playout is not None:
            playout = max(playout, self._last_playout + self.min_render_interval)
        self._last_playout = playout
        return PlayoutEvent(
            frame_id=frame_id,
            playout_time=playout,
            completion_time=completion_time,
            size_bytes=size_bytes,
            height=height,
        )

    def reset(self) -> None:
        self._jitter_estimate_ms = 0.0
        self._last_completion = None
        self._last_interval = None
        self._last_playout = None
