"""Streaming engine tests: batch equivalence, demux, reordering, memory bound.

The acceptance contract of the streaming refactor is that
:class:`~repro.core.streaming.StreamingQoEPipeline` emits exactly the same
:class:`~repro.core.pipeline.PipelineEstimate` rows as the batch
:meth:`QoEPipeline.estimate` -- per flow, in one pass, with per-flow state
only -- including on interleaved multi-session traffic and packets reordered
within the assembler lookback.
"""

import heapq
from dataclasses import replace

import numpy as np
import pytest

from repro.core.pipeline import QoEPipeline
from repro.core.streaming import StreamingQoEPipeline, window_index
from repro.net.flows import five_tuple
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.net.trace import PacketTrace


def assert_estimates_equal(batch, streamed, check_resolution=True):
    """Row-by-row comparison of PipelineEstimate sequences (float tolerance)."""
    assert len(streamed) >= len(batch)
    # The stream also closes the window that starts exactly at end_time; the
    # batch contract stops one earlier.  Anything beyond that is a bug.
    assert len(streamed) <= len(batch) + 1
    for expected, actual in zip(batch, streamed):
        assert actual.window_start == pytest.approx(expected.window_start, abs=1e-12)
        assert actual.frame_rate == pytest.approx(expected.frame_rate, abs=1e-9)
        assert actual.bitrate_kbps == pytest.approx(expected.bitrate_kbps, abs=1e-9)
        assert actual.frame_jitter_ms == pytest.approx(expected.frame_jitter_ms, abs=1e-9)
        assert actual.source == expected.source
        if check_resolution:
            assert actual.resolution == expected.resolution


def remap_flow(trace: PacketTrace, src="172.16.5.5", src_port=3478, dst="10.0.0.99", dst_port=51000):
    """A copy of ``trace`` on a distinct 5-tuple (a second concurrent session)."""
    return PacketTrace(
        [
            replace(
                p,
                ip=IPv4Header(src=src, dst=dst, ttl=p.ip.ttl, protocol=p.ip.protocol),
                udp=UDPHeader(src_port=src_port, dst_port=dst_port),
            )
            for p in trace
        ],
        vca=trace.vca,
    )


class TestSingleFlowEquivalence:
    def test_untrained_heuristic_parity(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        batch = pipeline.estimate(teams_call.trace)
        stream = StreamingQoEPipeline(pipeline, demux_flows=False)
        streamed = [e.estimate for e in stream.collect(teams_call.trace)]
        assert batch
        assert_estimates_equal(batch, streamed)

    def test_untrained_parity_under_loss_and_jitter(self, lossy_teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        batch = pipeline.estimate(lossy_teams_call.trace)
        stream = StreamingQoEPipeline(pipeline, demux_flows=False)
        streamed = [e.estimate for e in stream.collect(lossy_teams_call.trace)]
        assert_estimates_equal(batch, streamed)

    def test_trained_ml_parity(self, teams_calls_small):
        pipeline = QoEPipeline.for_vca("teams").train(teams_calls_small)
        call = teams_calls_small[0]
        batch = pipeline.estimate(call.trace)
        assert all(e.source == "ml" for e in batch)
        stream = StreamingQoEPipeline(pipeline, demux_flows=False)
        streamed = [e.estimate for e in stream.collect(call.trace)]
        assert_estimates_equal(batch, streamed)

    def test_batch_adapter_is_the_streaming_engine(self, teams_call):
        """estimate() must go through the stream: same count, ordered windows."""
        pipeline = QoEPipeline.for_vca("teams")
        estimates = pipeline.estimate(teams_call.trace)
        starts = [e.window_start for e in estimates]
        assert starts == sorted(starts)
        assert starts == [float(k) for k in range(len(starts))]


class TestMultiFlowEquivalence:
    def test_interleaved_two_session_trace(self, teams_call, lossy_teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        flow_a_trace = teams_call.trace.without_ground_truth().without_rtp()
        flow_b_trace = remap_flow(lossy_teams_call.trace.without_ground_truth().without_rtp())
        merged = heapq.merge(flow_a_trace, flow_b_trace, key=lambda p: p.timestamp)

        stream = StreamingQoEPipeline(pipeline)
        emitted = stream.collect(merged)
        assert len(stream.flows) == 2

        by_flow: dict = {}
        for item in emitted:
            by_flow.setdefault(item.flow, []).append(item.estimate)

        key_a = five_tuple(flow_a_trace[0])
        key_b = five_tuple(flow_b_trace[0])
        assert set(by_flow) == {key_a, key_b}
        assert_estimates_equal(pipeline.estimate(flow_a_trace), by_flow[key_a])
        assert_estimates_equal(pipeline.estimate(flow_b_trace), by_flow[key_b])

    def test_interleaved_trained_sessions(self, teams_calls_small):
        pipeline = QoEPipeline.for_vca("teams").train(teams_calls_small)
        flow_a_trace = teams_calls_small[0].trace.without_ground_truth().without_rtp()
        flow_b_trace = remap_flow(teams_calls_small[1].trace.without_ground_truth().without_rtp())
        merged = heapq.merge(flow_a_trace, flow_b_trace, key=lambda p: p.timestamp)

        stream = StreamingQoEPipeline(pipeline)
        by_flow: dict = {}
        for item in stream.process(merged):
            by_flow.setdefault(item.flow, []).append(item.estimate)
        for item in stream.flush():
            by_flow.setdefault(item.flow, []).append(item.estimate)

        assert_estimates_equal(pipeline.estimate(flow_a_trace), by_flow[five_tuple(flow_a_trace[0])])
        assert_estimates_equal(pipeline.estimate(flow_b_trace), by_flow[five_tuple(flow_b_trace[0])])


class TestOutOfOrderPackets:
    @pytest.mark.parametrize("seed", range(4))
    def test_adjacent_swaps_within_lookback(self, teams_call, seed):
        """Packets displaced by one position are absorbed by the reorder buffer."""
        pipeline = QoEPipeline.for_vca("teams")
        ordered = teams_call.trace.packets
        rng = np.random.default_rng(seed)
        shuffled = list(ordered)
        i = 0
        while i + 1 < len(shuffled):
            if rng.random() < 0.3:
                shuffled[i], shuffled[i + 1] = shuffled[i + 1], shuffled[i]
                i += 2
            else:
                i += 1
        batch = pipeline.estimate(teams_call.trace)
        stream = StreamingQoEPipeline(pipeline, demux_flows=False)
        streamed = [e.estimate for e in stream.collect(iter(shuffled))]
        assert_estimates_equal(batch, streamed)

    def test_deeper_reorder_buffer(self, teams_call):
        """With an explicit reorder_depth, larger displacements are absorbed."""
        pipeline = QoEPipeline.for_vca("teams")
        ordered = teams_call.trace.packets
        rng = np.random.default_rng(7)
        shuffled = list(ordered)
        for i in range(0, len(shuffled) - 4, 4):
            block = shuffled[i : i + 4]
            rng.shuffle(block)
            shuffled[i : i + 4] = block
        batch = pipeline.estimate(teams_call.trace)
        stream = StreamingQoEPipeline(pipeline, demux_flows=False, reorder_depth=4)
        streamed = [e.estimate for e in stream.collect(iter(shuffled))]
        assert_estimates_equal(batch, streamed)


class TestBoundedMemory:
    def test_single_pass_over_a_pure_iterator(self, teams_call):
        """The engine must work on a generator: no rewind, no full-trace view."""
        pipeline = QoEPipeline.for_vca("teams")
        feed = (p for p in teams_call.trace)  # exhaustible, one pass only
        stream = StreamingQoEPipeline(pipeline, demux_flows=False)
        streamed = [e.estimate for e in stream.collect(feed)]
        assert_estimates_equal(pipeline.estimate(teams_call.trace), streamed)

    def test_per_flow_state_stays_bounded_during_processing(self, teams_call, lossy_teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        flow_a = teams_call.trace.without_ground_truth().without_rtp()
        flow_b = remap_flow(lossy_teams_call.trace.without_ground_truth().without_rtp())
        merged = list(heapq.merge(flow_a, flow_b, key=lambda p: p.timestamp))

        stream = StreamingQoEPipeline(pipeline)
        max_buffered = 0
        max_open = 0
        for i, packet in enumerate(merged):
            stream.push(packet)
            if i % 100 == 0:
                max_buffered = max(max_buffered, stream.buffered_packets)
                max_open = max(max_open, stream.open_windows)
        stream.flush()

        n_flows = len(stream.flows)
        assert n_flows == 2
        # Reorder buffers hold at most reorder_depth packets per flow; the
        # open-window count never scales with trace length.
        assert max_buffered <= stream.reorder_depth * n_flows
        assert max_open <= 3 * n_flows
        assert stream.buffered_packets == 0 and stream.open_windows == 0

    def test_flow_table_does_not_retain_packets(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        stream = StreamingQoEPipeline(pipeline)
        stream.collect(teams_call.trace)
        assert not stream.flow_table.store_packets
        with pytest.raises(RuntimeError):
            stream.flow_table.packets(stream.flows[0])
        # Aggregate statistics are still tracked per flow.
        stats = stream.flow_table.stats(stream.flows[0])
        assert stats.packets == len(teams_call.trace)


class TestWindowIndex:
    def test_consistent_with_boundary_arithmetic(self):
        for window_s in (0.1, 0.2, 0.3, 1.0, 2.5):
            for k in range(0, 2000, 37):
                boundary = 0.0 + k * window_s
                assert window_index(boundary, 0.0, window_s) == k
                inside = boundary + window_s * 0.5
                assert window_index(inside, 0.0, window_s) == k

    def test_nonzero_start(self):
        assert window_index(2.0, 2.0, 1.0) == 0
        assert window_index(4.999, 2.0, 1.0) == 2
        assert window_index(5.0, 2.0, 1.0) == 3


def make_packet(timestamp, size, dst_port=51000):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="192.0.2.10", dst="10.0.0.1"),
        udp=UDPHeader(src_port=3478, dst_port=dst_port),
        payload_size=size,
    )


class TestLiveness:
    def test_video_outage_windows_emitted_with_frame_age_bound(self):
        """Audio-only stretches must not stall estimate emission.

        Algorithm 1's lookback counts packets, so after a total video stall
        the last frame stays open forever; with max_frame_age_s the monitor
        keeps closing (degraded) windows while only audio flows.
        """
        packets = [make_packet(0.01 * i, 1000) for i in range(300)]      # 3 s video
        packets += [make_packet(3.0 + 0.02 * i, 120) for i in range(1500)]  # 30 s audio only
        pipeline = QoEPipeline.for_vca("teams")

        bounded = StreamingQoEPipeline(pipeline, demux_flows=False, max_frame_age_s=2.0)
        live_starts = [e.estimate.window_start for p in packets for e in bounded.push(p)]
        # Windows deep inside the outage are emitted live, without a flush.
        assert live_starts and max(live_starts) >= 25.0
        outage = [s for s in live_starts if s >= 5.0]
        assert len(outage) >= 20

        # Default (strict batch parity) holds those windows until flush.
        strict = StreamingQoEPipeline(pipeline, demux_flows=False)
        strict_live = [e for p in packets for e in strict.push(p)]
        assert max(e.estimate.window_start for e in strict_live) < 4.0
        flushed = strict.flush()
        assert len(strict_live) + len(flushed) >= 32

    def test_frame_age_bound_preserves_healthy_stream_estimates(self, teams_call):
        """On a healthy call the bound never fires: estimates match batch."""
        pipeline = QoEPipeline.for_vca("teams")
        batch = pipeline.estimate(teams_call.trace)
        stream = StreamingQoEPipeline(pipeline, demux_flows=False, max_frame_age_s=2.0)
        streamed = [e.estimate for e in stream.collect(teams_call.trace)]
        assert_estimates_equal(batch, streamed)


class TestExcessiveReordering:
    def test_late_packet_beyond_depth_is_dropped_not_corrupting(self):
        """A packet for an already-emitted window must not wipe open state."""
        packets = [make_packet(t, 1000) for t in (0.1, 0.2, 0.3, 1.1, 1.2, 1.3, 1.4)]
        late = make_packet(0.05, 1000)
        stream = StreamingQoEPipeline(QoEPipeline.for_vca("teams"), demux_flows=False, reorder_depth=0)
        emitted = []
        for p in packets:
            emitted.extend(stream.push(p))
        emitted.extend(stream.push(late))  # window 0 already closed
        emitted.extend(stream.flush())
        starts = [e.estimate.window_start for e in emitted]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts), "no window emitted twice"

    def test_trained_mode_late_packet_does_not_wipe_current_window(self, teams_calls_small):
        pipeline = QoEPipeline.for_vca("teams").train(teams_calls_small)
        call = teams_calls_small[0]
        ordered = call.trace.packets
        # Inject one pathologically late duplicate of an early packet.
        from dataclasses import replace as _replace
        late = _replace(ordered[5])
        feed = ordered[:1000] + [late] + ordered[1000:]
        batch = pipeline.estimate(call.trace)
        stream = StreamingQoEPipeline(pipeline, demux_flows=False)
        streamed = [e.estimate for e in stream.collect(iter(feed))]
        # The late packet is dropped; estimates still match the clean batch.
        assert_estimates_equal(batch, streamed)

    def test_out_of_order_within_window_beyond_depth_is_dropped(self):
        """A packet released behind the stream must be dropped, not fed to the
        order-sensitive accumulators (negative IATs) or the assembler."""
        packets = [make_packet(t, 1000) for t in (0.5, 0.51, 0.4, 1.5, 1.51)]
        stream = StreamingQoEPipeline(QoEPipeline.for_vca("teams"), demux_flows=False, reorder_depth=0)
        emitted = []
        for p in packets:
            emitted.extend(stream.push(p))
        emitted.extend(stream.flush())
        # Equivalent batch input without the undeliverable packet.
        clean = PacketTrace([p for p in packets if p.timestamp != 0.4])
        batch = QoEPipeline.for_vca("teams").estimate(clean)
        assert_estimates_equal(batch, [e.estimate for e in emitted])


class TestLongRunningMonitor:
    def test_late_starting_flow_does_not_backfill_the_grid(self):
        """A flow first seen late on the grid (mid-capture join, epoch-like
        timestamps) must not emit one empty window per elapsed second."""
        base = 1_000_000.0
        packets = [make_packet(base + 0.01 * i, 1000) for i in range(200)]
        stream = StreamingQoEPipeline(QoEPipeline.for_vca("teams"), demux_flows=False)
        emitted = [e for p in packets for e in stream.push(p)]
        emitted.extend(stream.flush())
        assert 1 <= len(emitted) <= 4, "only the windows the flow actually spans"
        assert emitted[0].estimate.window_start == base

    def test_batch_adapter_still_backfills_from_zero(self, teams_call):
        """QoEPipeline.estimate keeps the seed contract: windows from t=0."""
        shifted = teams_call.trace.shifted(5.0)
        estimates = QoEPipeline.for_vca("teams").estimate(shifted)
        assert estimates[0].window_start == 0.0
        assert estimates[0].frame_rate == 0.0  # leading empty windows included

    def test_flushed_engine_refuses_new_packets(self):
        stream = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        stream.push(make_packet(0.1, 1000))
        assert stream.flush() is not None
        assert stream.flush() == []  # idempotent
        with pytest.raises(RuntimeError):
            stream.push(make_packet(5.0, 1000))

    def test_evict_idle_flows_bounds_flow_state(self, teams_call):
        pipeline = QoEPipeline.for_vca("teams")
        flow_a = teams_call.trace.without_ground_truth().without_rtp()
        short_b = remap_flow(PacketTrace(list(flow_a)[:50]))  # dies early
        merged = sorted(list(flow_a) + list(short_b), key=lambda p: p.timestamp)

        stream = StreamingQoEPipeline(pipeline)
        emitted = []
        for packet in merged:
            emitted.extend(stream.push(packet))
        assert len(stream._streams) == 2
        evicted = stream.evict_idle(idle_s=5.0)
        assert len(stream._streams) == 1, "the long-dead flow is gone"
        assert all(e.flow == five_tuple(short_b[0]) for e in evicted)
        emitted.extend(stream.flush())
        # The surviving flow still matches batch.
        survivors = [e.estimate for e in emitted + evicted if e.flow == five_tuple(flow_a[0])]
        assert_estimates_equal(pipeline.estimate(flow_a), survivors)

    def test_evict_idle_covers_flows_still_in_reorder_buffer(self):
        """A 1-packet flow (everything buffered, watermark unset) must still be
        evictable, or flows-ever-seen leak on a perpetual monitor."""
        stream = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        stream.push(make_packet(0.1, 1000, dst_port=40000))  # tiny, dies instantly
        for i in range(500):
            stream.push(make_packet(0.05 * i, 1000))         # long-lived flow
        assert len(stream._streams) == 2
        evicted = stream.evict_idle(idle_s=5.0)
        assert len(stream._streams) == 1
        assert len(stream.flow_table) == 1
        assert all(e.flow.dst_port == 40000 for e in evicted)

    def test_mass_eviction_sweep_is_one_pass(self):
        """A single sweep evicting many flows must not be O(evicted x flows).

        Regression for the per-eviction ``_flow_order.remove`` -- quadratic
        in the flow count, which stalled the hot path when a large monitor
        mass-evicted (20k single-packet flows made the sweep take tens of
        seconds; one pass takes well under a second even on slow CI).
        """
        from time import perf_counter

        stream = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        n_flows = 20_000
        for i in range(n_flows):
            stream.push(
                Packet(
                    timestamp=0.0,
                    ip=IPv4Header(src="192.0.2.10", dst=f"10.{i >> 16}.{(i >> 8) & 255}.{i & 255}"),
                    udp=UDPHeader(src_port=3478, dst_port=40000),
                    payload_size=1000,
                )
            )
        stream.push(make_packet(1000.0, 1000))  # the lone live flow drives time
        assert len(stream._streams) == n_flows + 1
        started = perf_counter()
        evicted = stream.evict_idle(idle_s=10.0)
        elapsed = perf_counter() - started
        assert len(stream._streams) == 1 and len(stream.flow_table) == 1
        assert len({e.flow for e in evicted}) == n_flows
        assert stream.flows == [five_tuple(make_packet(1000.0, 1000))]
        assert elapsed < 3.0, f"mass-eviction sweep took {elapsed:.2f}s (quadratic regression?)"


def _tiny_trained_pipeline(seed: int = 0) -> QoEPipeline:
    """Deterministically-trained small forests (cheap; predictions arbitrary)."""
    from repro.core.estimators import IPUDPMLEstimator

    pipeline = QoEPipeline.for_vca("teams")
    pipeline.ml = IPUDPMLEstimator.for_profile(pipeline.profile, n_estimators=6, max_depth=5)
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1500.0, size=(60, len(pipeline.ml.feature_names)))
    pipeline.ml.fit(
        X,
        {
            "frame_rate": rng.uniform(5.0, 30.0, 60),
            "bitrate": rng.uniform(100.0, 2000.0, 60),
            "frame_jitter": rng.uniform(0.0, 50.0, 60),
            "resolution": rng.choice(["low", "medium", "high"], 60),
        },
    )
    pipeline._trained = True
    return pipeline


class TestTickBatching:
    """push_chunk: cross-flow batched inference, bit-identical to push."""

    def _two_flow_feed(self):
        flow_a = [make_packet(0.011 * i, 1100) for i in range(600)]
        flow_b = [make_packet(0.013 * i, 900, dst_port=40000) for i in range(500)]
        return sorted(flow_a + flow_b, key=lambda p: p.timestamp)

    def test_trained_chunks_bit_identical_to_per_push(self):
        feed = self._two_flow_feed()
        per_push = StreamingQoEPipeline(_tiny_trained_pipeline())
        expected = [e for p in feed for e in per_push.push(p)]
        expected.extend(per_push.flush())

        for chunk_size in (1, 7, 128, len(feed)):
            engine = StreamingQoEPipeline(_tiny_trained_pipeline())
            emitted = []
            for i in range(0, len(feed), chunk_size):
                emitted.extend(engine.push_chunk(feed[i : i + chunk_size]))
            emitted.extend(engine.flush())
            # Dataclass equality on floats: bit-identical, same emission order.
            assert emitted == expected, f"chunk_size={chunk_size}"

    def test_heuristic_chunks_equal_per_push(self):
        feed = self._two_flow_feed()
        per_push = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        expected = [e for p in feed for e in per_push.push(p)]
        expected.extend(per_push.flush())
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        emitted = []
        for i in range(0, len(feed), 100):
            emitted.extend(engine.push_chunk(feed[i : i + 100]))
        emitted.extend(engine.flush())
        assert emitted == expected

    def test_chunk_not_reentrant_guard_resets_after_failure(self):
        engine = StreamingQoEPipeline(_tiny_trained_pipeline())

        def poisoned():
            yield make_packet(0.1, 1000)
            raise RuntimeError("capture died")

        with pytest.raises(RuntimeError, match="capture died"):
            engine.push_chunk(poisoned())
        # The tick buffer must be cleared, or every later push would defer
        # its inference into a tick that never resolves.
        assert engine.push_chunk([make_packet(5.0, 1000)]) is not None
        assert engine.flush()

    def test_windows_closed_before_a_chunk_failure_are_not_lost(self):
        """A mid-chunk source failure must not swallow already-closed windows
        (their streams advanced past them, so they can never re-emit)."""
        feed = self._two_flow_feed()
        reference = StreamingQoEPipeline(_tiny_trained_pipeline())
        expected = [e for p in feed for e in reference.push(p)]
        expected.extend(reference.flush())

        engine = StreamingQoEPipeline(_tiny_trained_pipeline())
        cut = len(feed) // 2

        def flaky():
            yield from feed[:cut]
            raise OSError("capture hiccup")

        emitted = []
        with pytest.raises(OSError):
            emitted.extend(engine.push_chunk(flaky()))
        # The failed call returned nothing; the closed windows arrive at the
        # front of the next chunk, then the stream continues seamlessly.
        emitted.extend(engine.push_chunk(feed[cut:]))
        emitted.extend(engine.flush())
        assert emitted == expected

    def test_heuristic_windows_survive_a_chunk_failure_too(self):
        """Same guarantee in untrained mode (no tick buffer involved)."""
        feed = self._two_flow_feed()
        reference = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        expected = [e for p in feed for e in reference.push(p)]
        expected.extend(reference.flush())

        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        cut = len(feed) // 2

        def flaky():
            yield from feed[:cut]
            raise OSError("capture hiccup")

        with pytest.raises(OSError):
            engine.push_chunk(flaky())
        emitted = engine.push_chunk(feed[cut:])
        emitted.extend(engine.flush())
        assert emitted == expected


class TestLowWatermark:
    def test_no_packets_means_no_watermark(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        assert engine.low_watermark() is None

    def test_bound_tracks_slowest_flow(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        for i in range(400):
            engine.push(make_packet(0.05 * i, 1000))            # advances to 20 s
        for i in range(5):
            engine.push(make_packet(1.0 + 0.01 * i, 900, dst_port=40000))  # stuck ~1 s
        watermark = engine.low_watermark()
        assert watermark is not None
        assert watermark <= 2.0, "the lagging flow holds the bound down"

    def test_new_flow_slack_lowers_the_bound(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        for i in range(400):
            engine.push(make_packet(0.05 * i, 1000))
        unslacked = engine.low_watermark()
        slacked = engine.low_watermark(new_flow_slack_s=10.0)
        assert slacked is not None and unslacked is not None
        assert slacked <= unslacked - 9.0  # room for a late-joining flow

    def test_watermark_accounts_for_backfill_limit(self):
        """A new flow back-fills up to backfill_limit windows behind its first
        packet; the bound must cover them or the fan-in releases too early."""
        pipeline = QoEPipeline.for_vca("teams")
        engine = StreamingQoEPipeline(pipeline, config=pipeline.config.replace(backfill_limit=5))
        for i in range(400):
            engine.push(make_packet(0.05 * i, 1000))  # advances to ~20 s
        watermark = engine.low_watermark(new_flow_slack_s=1.0)
        assert watermark is not None
        # A flow joining at 19.0 (within slack) may emit from window 14.0.
        late = [make_packet(19.0 + 0.01 * i, 900, dst_port=40000) for i in range(300)]
        emitted = [e for p in late for e in engine.push(p)]
        emitted.extend(engine.flush())
        late_starts = [e.estimate.window_start for e in emitted if e.flow.dst_port == 40000]
        assert min(late_starts) >= watermark, (
            f"emitted window {min(late_starts)} below reported watermark {watermark}"
        )

    def test_watermark_unbounded_backfill_pins_to_grid_origin(self):
        pipeline = QoEPipeline.for_vca("teams")
        engine = StreamingQoEPipeline(pipeline, config=pipeline.config.replace(backfill_limit=None))
        for i in range(400):
            engine.push(make_packet(0.05 * i, 1000))
        # With unlimited backfill a new flow may emit from start: no live-flow
        # progress can raise the new-flow bound above it.
        assert engine.low_watermark(new_flow_slack_s=1.0) == engine.start

    def test_watermark_is_honoured_by_future_emissions(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        feed = sorted(
            [make_packet(0.011 * i, 1100) for i in range(800)]
            + [make_packet(0.013 * i, 900, dst_port=40000) for i in range(600)],
            key=lambda p: p.timestamp,
        )
        for i in range(0, len(feed), 50):
            watermark = engine.low_watermark(new_flow_slack_s=2.0)
            emitted = engine.push_chunk(feed[i : i + 50])
            if watermark is not None:
                for item in emitted:
                    assert item.estimate.window_start >= watermark
