"""Figures A.1 and A.2: CDFs of the ground-truth QoE metrics for the in-lab
and real-world datasets.

Paper shape: ground-truth QoE differs across VCAs under the same conditions
(Teams sustains the highest bitrate, Webex the lowest); the real-world
distributions sit at higher quality than the throttled (<10 Mbps) in-lab ones.
"""

import numpy as np

from benchmarks.conftest import save_artifact
from repro.analysis.reporting import format_table


def _summaries(calls_by_vca):
    rows = []
    for vca, calls in calls_by_vca.items():
        fps = np.concatenate([c.ground_truth.frame_rates[3:] for c in calls])
        bitrate = np.concatenate([c.ground_truth.bitrates_kbps[3:] for c in calls])
        jitter = np.concatenate([c.ground_truth.frame_jitters_ms[3:] for c in calls])
        rows.append(
            [
                vca,
                round(float(np.median(fps)), 1),
                round(float(np.percentile(fps, 10)), 1),
                round(float(np.median(bitrate)), 0),
                round(float(np.percentile(bitrate, 90)), 0),
                round(float(np.median(jitter)), 1),
            ]
        )
    return rows


def test_figa1_a2_ground_truth_distributions(benchmark, lab_calls, real_world_calls):
    lab_rows, real_rows = benchmark.pedantic(
        lambda: (_summaries(lab_calls), _summaries(real_world_calls)), rounds=1, iterations=1
    )

    headers = ["VCA", "FPS p50", "FPS p10", "bitrate p50 [kbps]", "bitrate p90 [kbps]", "jitter p50 [ms]"]
    text = (
        format_table(headers, lab_rows, title="Figure A.1 - ground-truth QoE (in-lab)")
        + "\n\n"
        + format_table(headers, real_rows, title="Figure A.2 - ground-truth QoE (real-world)")
    )
    save_artifact("figa1_a2_groundtruth", text)

    lab = {row[0]: row for row in lab_rows}
    real = {row[0]: row for row in real_rows}
    # Teams sustains a higher median bitrate than Webex in the lab (paper: 1700 vs 500 kbps).
    assert lab["teams"][3] > lab["webex"][3]
    # Real-world bitrates are at least comparable to the constrained lab ones.
    for vca in lab:
        assert real[vca][3] >= 0.75 * lab[vca][3]
