"""Quickstart: estimate per-second WebRTC QoE from IP/UDP headers only.

Simulates a short Teams call, trains the IP/UDP ML pipeline on a handful of
labelled lab calls, and prints per-second frame rate / bitrate / frame jitter
/ resolution estimates next to the webrtc-internals ground truth.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ConditionSchedule,
    LabDatasetConfig,
    NetworkCondition,
    QoEPipeline,
    SessionConfig,
    build_lab_dataset,
    simulate_call,
)


def main() -> None:
    # 1. Collect a small labelled training set (the in-lab data collection
    #    framework at reduced scale: 4 calls of 20 seconds each).
    print("Building a small in-lab training set for Teams ...")
    lab = build_lab_dataset(LabDatasetConfig(calls_per_vca=4, call_duration_s=20, vcas=("teams",), seed=1))
    training_calls = lab["teams"]

    # 2. Train the IP/UDP ML pipeline (random forests over the 14 Table-1 features).
    pipeline = QoEPipeline.for_vca("teams").train(training_calls)

    # 3. Simulate a new call the model has never seen: a link that degrades
    #    from 2.5 Mbps to 400 kbps halfway through.
    good = NetworkCondition(throughput_kbps=2500.0, delay_ms=40.0, jitter_ms=5.0)
    bad = NetworkCondition(throughput_kbps=400.0, delay_ms=80.0, jitter_ms=15.0, loss_rate=0.02)
    schedule = ConditionSchedule([good] * 10 + [bad] * 10)
    call = simulate_call(SessionConfig(vca="teams", duration_s=20, seed=42, call_id="quickstart"), schedule)

    # 4. Estimate QoE from the captured trace using only IP/UDP headers.
    estimates = pipeline.estimate(call.trace)

    print(f"\n{'sec':>4} {'est FPS':>8} {'true FPS':>9} {'est kbps':>9} {'true kbps':>10} {'est res':>8} {'true res':>9}")
    truth = {row.second: row for row in call.ground_truth}
    for estimate in estimates:
        second = int(estimate.window_start)
        row = truth.get(second)
        if row is None:
            continue
        print(
            f"{second:>4} {estimate.frame_rate:>8.1f} {row.frames_received:>9.1f} "
            f"{estimate.bitrate_kbps:>9.0f} {row.bitrate_kbps:>10.0f} "
            f"{estimate.resolution or '-':>8} {row.frame_height:>9}"
        )
    print("\nNote how the estimates track the quality drop at t=10s without ever reading RTP headers.")


if __name__ == "__main__":
    main()
