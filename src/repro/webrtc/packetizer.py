"""Frame packetisation.

WebRTC senders fragment each encoded frame into RTP packets and transmit them
back to back (a microburst).  To keep forward error correction efficient the
packets of a frame are made (nearly) equal-sized (Section 3.2.1) -- this is
the property the IP/UDP Heuristic exploits.  Meet's VP8/VP9 payloadisation
violates the equal-size property for a fraction of frames, which the paper
identifies as the cause of the heuristic's frame "splits"; the packetiser
reproduces that by occasionally emitting unequal fragments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader
from repro.rtp.header import RTPHeader, VIDEO_CLOCK_RATE
from repro.webrtc.codec import EncodedFrame
from repro.webrtc.profiles import VCAProfile

__all__ = ["Packetizer", "PacketizerConfig"]

#: Fixed RTP header length (bytes) included in every packet's UDP payload.
RTP_HEADER_LEN = 12
#: Per-packet payload overhead beyond the RTP header and the encoded frame
#: bytes: codec payload descriptors, RTP header extensions, FEC metadata.
#: These bytes are on the wire (so the IP/UDP heuristic counts them) but are
#: not part of the application-level video bitrate that webrtc-internals
#: reports -- the source of the heuristics' systematic bitrate over-estimation
#: discussed in Section 5.1.3.
PAYLOAD_OVERHEAD_LEN = 24
#: Pacing gap between packets of the same frame burst (seconds).  Real WebRTC
#: pacers clock packets out at sub-millisecond spacing.
INTRA_FRAME_GAP = 0.0006


@dataclass(frozen=True)
class PacketizerConfig:
    """Addressing and stream identity for one packetised video stream."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    ssrc: int
    payload_type: int


class Packetizer:
    """Fragment encoded frames into annotated RTP/UDP packets."""

    def __init__(
        self,
        profile: VCAProfile,
        config: PacketizerConfig,
        rng: np.random.Generator,
        environment: str = "lab",
    ) -> None:
        self.profile = profile
        self.config = config
        self.rng = rng
        self.environment = environment
        self._sequence = int(rng.integers(0, 1 << 15))
        self._timestamp_base = int(rng.integers(0, 1 << 30))

    def _next_sequence(self) -> int:
        value = self._sequence & 0xFFFF
        self._sequence += 1
        return value

    def _rtp_timestamp(self, capture_time: float) -> int:
        return (self._timestamp_base + int(capture_time * VIDEO_CLOCK_RATE)) & 0xFFFFFFFF

    def packetize(self, frame: EncodedFrame) -> list[Packet]:
        """Fragment ``frame`` into RTP packets departing as a microburst."""
        media_budget = self.profile.mtu_payload - RTP_HEADER_LEN - PAYLOAD_OVERHEAD_LEN
        n_packets = max(1, int(np.ceil(frame.size_bytes / media_budget)))
        sizes = self._fragment_sizes(frame.size_bytes, n_packets)

        rtp_timestamp = self._rtp_timestamp(frame.capture_time)
        packets: list[Packet] = []
        for index, media_bytes in enumerate(sizes):
            is_last = index == len(sizes) - 1
            header = RTPHeader(
                payload_type=self.config.payload_type,
                sequence_number=self._next_sequence(),
                timestamp=rtp_timestamp,
                ssrc=self.config.ssrc,
                marker=is_last,
            )
            payload_size = media_bytes + RTP_HEADER_LEN + PAYLOAD_OVERHEAD_LEN
            packets.append(
                Packet(
                    timestamp=frame.capture_time + index * INTRA_FRAME_GAP,
                    ip=IPv4Header(src=self.config.src_ip, dst=self.config.dst_ip),
                    udp=UDPHeader(
                        src_port=self.config.src_port,
                        dst_port=self.config.dst_port,
                        length=payload_size + 8,
                    ),
                    payload_size=payload_size,
                    rtp=header,
                    media_type=MediaType.VIDEO,
                    frame_id=frame.frame_id,
                    metadata={
                        "frame_packets": len(sizes),
                        "frame_size": frame.size_bytes,
                        "height": frame.height,
                        "keyframe": frame.is_keyframe,
                        # Application-level (codec) bytes in this packet; what
                        # webrtc-internals counts toward the received bitrate.
                        "app_bytes": media_bytes,
                    },
                )
            )
        return packets

    def _fragment_sizes(self, frame_bytes: int, n_packets: int) -> list[int]:
        """Split ``frame_bytes`` into ``n_packets`` media payload sizes.

        The normal path splits as evenly as possible (sizes differ by at most
        one byte).  With the profile's unequal-fragmentation probability the
        split is skewed so that intra-frame differences exceed the heuristic's
        2-byte threshold, reproducing the VP8/VP9 behaviour the paper reports
        for Meet.
        """
        unequal_prob = self.profile.fragmentation_prob_for(self.environment)
        if n_packets > 1 and self.rng.random() < unequal_prob:
            return self._unequal_split(frame_bytes, n_packets)
        base = frame_bytes // n_packets
        remainder = frame_bytes - base * n_packets
        return [base + (1 if i < remainder else 0) for i in range(n_packets)]

    def _unequal_split(self, frame_bytes: int, n_packets: int) -> list[int]:
        """A skewed split whose fragment sizes differ by tens of bytes."""
        weights = self.rng.uniform(0.6, 1.4, size=n_packets)
        weights /= weights.sum()
        sizes = np.maximum(60, (weights * frame_bytes).astype(int))
        # Fix rounding so the fragments still add up to the frame size.
        deficit = frame_bytes - int(sizes.sum())
        sizes[-1] = max(60, sizes[-1] + deficit)
        return [int(s) for s in sizes]
