"""Feature extraction (Table 1).

Two feature sets are defined:

* **IP/UDP features** (14): per-window flow statistics -- bytes, packets,
  five packet-size statistics, five inter-arrival statistics -- plus two
  VCA-semantics features: the number of unique packet sizes and the number of
  microbursts (runs of packets separated by less than a small inter-arrival
  threshold).
* **RTP features** (11, used together with the 12 flow statistics): unique
  RTP timestamps of the video and retransmission streams plus their
  intersection and union, the video marker-bit sum, the count of out-of-order
  video sequence numbers, and five statistics of the per-frame RTP lag
  (difference between actual and ideal frame arrival times).
"""

from __future__ import annotations

import numpy as np

from repro.core.media import MediaClassifier
from repro.core.windows import WindowedTrace
from repro.net.packet import Packet
from repro.rtp.header import VIDEO_CLOCK_RATE, sequence_distance
from repro.rtp.payload_types import PayloadTypeMap

__all__ = [
    "IPUDP_FEATURE_NAMES",
    "RTP_FEATURE_NAMES",
    "FLOW_FEATURE_NAMES",
    "extract_flow_features",
    "extract_ipudp_features",
    "extract_rtp_features",
    "IPUDPFeatureAccumulator",
    "MICROBURST_IAT_THRESHOLD",
]

#: Inter-arrival threshold used to delimit microbursts (seconds).  Packets of
#: a frame leave the sender back to back, so gaps below a few milliseconds
#: indicate the same burst.
MICROBURST_IAT_THRESHOLD = 0.003

#: The 12 flow-level statistics shared by both feature sets.
FLOW_FEATURE_NAMES: tuple[str, ...] = (
    "# bytes",
    "# packets",
    "Size [mean]",
    "Size [stdev]",
    "Size [median]",
    "Size [min]",
    "Size [max]",
    "IAT [mean]",
    "IAT [stdev]",
    "IAT [median]",
    "IAT [min]",
    "IAT [max]",
)

#: The paper's 14 IP/UDP features: flow statistics + two semantics features.
IPUDP_FEATURE_NAMES: tuple[str, ...] = FLOW_FEATURE_NAMES + (
    "# unique sizes",
    "# microbursts",
)

#: RTP-derived features used by the RTP ML baseline (plus the flow features).
RTP_FEATURE_NAMES: tuple[str, ...] = FLOW_FEATURE_NAMES + (
    "# unique RTPvid TS",
    "# unique RTPrtx TS",
    "# unique RTP TS [intersection]",
    "# unique RTP TS [union]",
    "Markervid bit sum",
    "# out-of-order seq",
    "RTP lag [mean]",
    "RTP lag [stdev]",
    "RTP lag [median]",
    "RTP lag [min]",
    "RTP lag [max]",
)


def _five_stats(values: np.ndarray) -> list[float]:
    """Mean, standard deviation, median, minimum, maximum (zeros when empty)."""
    if values.size == 0:
        return [0.0, 0.0, 0.0, 0.0, 0.0]
    return [
        float(np.mean(values)),
        float(np.std(values)),
        float(np.median(values)),
        float(np.min(values)),
        float(np.max(values)),
    ]


def _count_microbursts(timestamps: np.ndarray, threshold: float = MICROBURST_IAT_THRESHOLD) -> int:
    """Number of maximal runs of packets with inter-arrival gaps below ``threshold``."""
    if timestamps.size == 0:
        return 0
    if timestamps.size == 1:
        return 1
    gaps = np.diff(np.sort(timestamps))
    # A new burst starts at the first packet and after every gap >= threshold.
    return int(1 + np.sum(gaps >= threshold))


def extract_flow_features(packets: list[Packet], window_s: float) -> list[float]:
    """The 12 flow-level statistics for one window."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    sizes = np.array([p.payload_size for p in packets], dtype=float)
    timestamps = np.sort(np.array([p.timestamp for p in packets], dtype=float))
    iats = np.diff(timestamps) if timestamps.size >= 2 else np.array([], dtype=float)
    features = [
        float(sizes.sum()) / window_s,   # bytes per second
        len(packets) / window_s,         # packets per second
    ]
    features.extend(_five_stats(sizes))
    features.extend(_five_stats(iats))
    return features


def extract_ipudp_features(
    window: WindowedTrace,
    classifier: MediaClassifier | None = None,
    microburst_threshold: float = MICROBURST_IAT_THRESHOLD,
) -> np.ndarray:
    """The 14 IP/UDP features of Table 1 for one window.

    The window's packets are first reduced to (predicted) video packets using
    the size-threshold classifier, as in the paper's pipeline.
    """
    classifier = classifier if classifier is not None else MediaClassifier()
    video_packets = [p for p in window.packets if classifier.is_video(p)]
    features = extract_flow_features(video_packets, window.duration)

    sizes = np.array([p.payload_size for p in video_packets], dtype=float)
    timestamps = np.array([p.timestamp for p in video_packets], dtype=float)
    features.append(float(np.unique(sizes).size))
    features.append(float(_count_microbursts(timestamps, microburst_threshold)))
    return np.array(features, dtype=float)


class IPUDPFeatureAccumulator:
    """Incremental computation of the 14 IP/UDP features for one window.

    The streaming engine creates one accumulator per open window and feeds it
    packets as they arrive (in non-decreasing timestamp order).  Count, byte
    sum, min/max, the unique-size set and the microburst state are maintained
    incrementally and give O(1) mid-window introspection; the per-window size
    and inter-arrival buffers are kept so the exact order-sensitive statistics
    (mean, stdev, median) can be computed with the *same numpy operations* as
    the batch extractor, and the whole accumulator is dropped when the window
    closes -- memory is O(packets per window), never O(trace).

    Produces a feature vector bit-identical to
    :func:`extract_ipudp_features` on the same window: a last-ulp difference
    could otherwise cross a forest split threshold and make streaming and
    batch predictions diverge nondeterministically.
    """

    __slots__ = (
        "window_s",
        "classifier",
        "microburst_threshold",
        "n",
        "byte_sum",
        "size_min",
        "size_max",
        "unique_sizes",
        "microbursts",
        "_last_timestamp",
        "_sizes",
        "_iats",
    )

    def __init__(
        self,
        window_s: float,
        classifier: MediaClassifier | None = None,
        microburst_threshold: float = MICROBURST_IAT_THRESHOLD,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self.classifier = classifier if classifier is not None else MediaClassifier()
        self.microburst_threshold = microburst_threshold
        # Live counters, readable mid-window (a monitor can report the
        # partial second without touching the buffers).
        self.n = 0
        self.byte_sum = 0.0
        self.size_min = float("inf")
        self.size_max = float("-inf")
        self.unique_sizes: set[int] = set()
        self.microbursts = 0
        self._last_timestamp: float | None = None
        self._sizes: list[float] = []
        self._iats: list[float] = []

    def push(self, packet: Packet) -> bool:
        """Account one packet; returns whether it counted as (predicted) video.

        Packets must arrive in non-decreasing timestamp order (the streaming
        engine's reorder buffer guarantees this), matching the batch
        extractor's sort of the window's timestamps.
        """
        if not self.classifier.is_video(packet):
            return False
        size = float(packet.payload_size)
        self.n += 1
        self.byte_sum += size
        if size < self.size_min:
            self.size_min = size
        if size > self.size_max:
            self.size_max = size
        self.unique_sizes.add(packet.payload_size)
        self._sizes.append(size)
        if self._last_timestamp is None:
            self.microbursts = 1
        else:
            gap = packet.timestamp - self._last_timestamp
            if gap >= self.microburst_threshold:
                self.microbursts += 1
            self._iats.append(gap)
        self._last_timestamp = packet.timestamp
        return True

    def extend(self, timestamps: np.ndarray, sizes: np.ndarray) -> int:
        """Account a (timestamp-ordered) run of packets from block columns.

        The columnar counterpart of :meth:`push`: ``sizes`` is an integer
        payload-size array, ``timestamps`` float64 arrival times, both for
        the *same* rows.  Produces exactly the state sequential :meth:`push`
        calls would -- the gap arithmetic is the same float subtraction
        (``np.diff``), buffers receive the same float64 values, and the
        video filter is :meth:`MediaClassifier.video_mask
        <repro.core.media.MediaClassifier.video_mask>` (identical to
        ``is_video`` for size-threshold classifiers) -- so :meth:`features`
        stays bit-identical between the two paths.  Returns the number of
        rows that counted as video.
        """
        mask = self.classifier.video_mask(sizes)
        if not mask.all():
            timestamps = timestamps[mask]
            sizes = sizes[mask]
        n = len(sizes)
        if n == 0:
            return 0
        float_sizes = sizes.astype(float)
        self.n += n
        self.byte_sum += float(float_sizes.sum())  # integer-valued: order-exact
        low = float(float_sizes.min())
        high = float(float_sizes.max())
        if low < self.size_min:
            self.size_min = low
        if high > self.size_max:
            self.size_max = high
        self.unique_sizes.update(int(size) for size in sizes.tolist())
        self._sizes.extend(float_sizes.tolist())
        if self._last_timestamp is None:
            self.microbursts += 1  # the run's first video packet opens a burst
            gaps = np.diff(timestamps)
        else:
            gaps = np.diff(np.concatenate(([self._last_timestamp], timestamps)))
        self.microbursts += int(np.count_nonzero(gaps >= self.microburst_threshold))
        self._iats.extend(gaps.tolist())
        self._last_timestamp = float(timestamps[-1])
        return n

    def features(self) -> np.ndarray:
        """The 14-feature vector for the window accumulated so far.

        The five-number summaries are computed from the buffers with the same
        numpy calls as the batch extractor (pairwise summation and all), so
        the result is bit-identical, not merely close; the running counters
        drive the exact integer features and the incremental state.
        """
        sizes = np.asarray(self._sizes, dtype=float)
        iats = np.asarray(self._iats, dtype=float)
        features = [
            float(sizes.sum()) / self.window_s,  # bytes per second
            self.n / self.window_s,              # packets per second
        ]
        features.extend(_five_stats(sizes))
        features.extend(_five_stats(iats))
        features.append(float(len(self.unique_sizes)))
        features.append(float(self.microbursts))
        return np.array(features, dtype=float)


def _rtp_lag_stats(video_packets: list[Packet]) -> list[float]:
    """Five statistics of per-frame transmission lag (Section 3.3).

    The first frame is assumed to have zero delay; for frame *i* the lag is
    the difference between its reception time and the time predicted by its
    RTP timestamp advance at the 90 kHz clock.
    """
    frames: dict[int, float] = {}
    for packet in sorted(video_packets, key=lambda p: p.timestamp):
        assert packet.rtp is not None
        ts = packet.rtp.timestamp
        frames.setdefault(ts, packet.timestamp)
    if len(frames) < 2:
        return [0.0, 0.0, 0.0, 0.0, 0.0]
    ordered = sorted(frames.items(), key=lambda item: item[1])
    ts0, t0 = ordered[0]
    lags = []
    for ts, arrival in ordered:
        expected = t0 + ((ts - ts0) & 0xFFFFFFFF) / VIDEO_CLOCK_RATE
        # Unwrap negative timestamp distances (reordering across the origin).
        if ((ts - ts0) & 0xFFFFFFFF) >= 0x80000000:
            expected = t0 - (0x100000000 - ((ts - ts0) & 0xFFFFFFFF)) / VIDEO_CLOCK_RATE
        lags.append(arrival - expected)
    return _five_stats(np.array(lags, dtype=float))


def extract_rtp_features(
    window: WindowedTrace,
    payload_types: PayloadTypeMap,
) -> np.ndarray:
    """The RTP ML feature vector for one window (flow stats + RTP features)."""
    rtp_packets = [p for p in window.packets if p.rtp is not None]
    video_packets = [p for p in rtp_packets if p.rtp.payload_type == payload_types.video]
    rtx_packets = (
        [p for p in rtp_packets if p.rtp.payload_type == payload_types.video_rtx]
        if payload_types.video_rtx is not None
        else []
    )

    features = extract_flow_features(video_packets, window.duration)

    video_ts = {p.rtp.timestamp for p in video_packets}
    rtx_ts = {p.rtp.timestamp for p in rtx_packets}
    features.append(float(len(video_ts)))
    features.append(float(len(rtx_ts)))
    features.append(float(len(video_ts & rtx_ts)))
    features.append(float(len(video_ts | rtx_ts)))

    features.append(float(sum(1 for p in video_packets if p.rtp.marker)))

    # Out-of-order video sequence numbers: count of adjacent (arrival-ordered)
    # packets whose sequence number does not advance by exactly one.
    ordered = sorted(video_packets, key=lambda p: p.timestamp)
    out_of_order = 0
    for previous, current in zip(ordered, ordered[1:]):
        if sequence_distance(previous.rtp.sequence_number, current.rtp.sequence_number) != 1:
            out_of_order += 1
    features.append(float(out_of_order))

    features.extend(_rtp_lag_stats(video_packets))
    return np.array(features, dtype=float)
