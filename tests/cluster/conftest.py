"""Fixtures for the sharded-monitor tests.

The cluster tests run real worker *processes* (spawn), so the fixtures are
deliberately cheap: short synthetic flows instead of simulated calls, and a
small deterministically-trained forest stack instead of lab training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import IPUDPMLEstimator
from repro.core.pipeline import QoEPipeline
from repro.net.packet import IPv4Header, Packet, UDPHeader


def synthetic_flow(
    seed: int,
    dst: str,
    dst_port: int,
    duration_s: float = 8.0,
    start_s: float = 0.0,
    src: str = "192.0.2.10",
    src_port: int = 3478,
) -> list[Packet]:
    """One VCA-like downlink flow: fragmented ~25 fps video bursts."""
    rng = np.random.default_rng(seed)
    ip = IPv4Header(src=src, dst=dst)
    udp = UDPHeader(src_port=src_port, dst_port=dst_port)
    packets: list[Packet] = []
    t = start_s + float(rng.uniform(0.0, 0.02))
    while t < start_s + duration_s:
        size = int(rng.integers(700, 1200))
        for i in range(int(rng.integers(2, 5))):
            packets.append(Packet(timestamp=t + i * 0.0008, ip=ip, udp=udp, payload_size=size))
        t += float(rng.normal(0.04, 0.004))
    return packets


def interleave(*flows: list[Packet]) -> list[Packet]:
    """Merge flows the way a capture point would see them (by timestamp)."""
    return sorted((p for flow in flows for p in flow), key=lambda p: p.timestamp)


def make_trained_pipeline(seed: int = 0) -> QoEPipeline:
    """A deterministically-trained pipeline, cheap enough to rebuild at will.

    Fits small per-metric forests on synthetic feature rows; the predictions
    are arbitrary but deterministic, which is all the equivalence and
    bit-identity tests need.  Reconstructing with the same seed yields the
    same forests (``random_state`` is fixed), so independently built copies
    predict identically.
    """
    pipeline = QoEPipeline.for_vca("teams")
    pipeline.ml = IPUDPMLEstimator.for_profile(pipeline.profile, n_estimators=8, max_depth=6)
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1500.0, size=(80, len(pipeline.ml.feature_names)))
    pipeline.ml.fit(
        X,
        {
            "frame_rate": rng.uniform(5.0, 30.0, 80),
            "bitrate": rng.uniform(100.0, 2000.0, 80),
            "frame_jitter": rng.uniform(0.0, 50.0, 80),
            "resolution": rng.choice(["low", "medium", "high"], 80),
        },
    )
    pipeline._trained = True
    return pipeline


@pytest.fixture(scope="session")
def many_flow_packets() -> list[Packet]:
    """Four concurrent 8-second sessions, interleaved by arrival time."""
    return interleave(
        *(synthetic_flow(seed, f"10.0.0.{seed + 1}", 50000 + seed) for seed in range(4))
    )


@pytest.fixture(scope="session")
def single_flow_packets() -> list[Packet]:
    """One short session (for worker-loop unit tests)."""
    return synthetic_flow(1, "10.0.0.1", 50000, duration_s=4.0)


@pytest.fixture(scope="session")
def trained_pipeline() -> QoEPipeline:
    return make_trained_pipeline()
