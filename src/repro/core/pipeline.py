"""End-to-end QoE estimation pipeline (the library's main public API).

A :class:`QoEPipeline` is what a network operator would deploy: point it at a
packet trace of a VCA session (pcap file or :class:`~repro.net.trace.PacketTrace`)
and get per-second QoE estimates back.  The pipeline combines the trained
IP/UDP ML models with the IP/UDP heuristic (used as a fallback when no model
has been trained) and never looks at RTP headers or ground-truth annotations.

Architecture
------------
Estimation is *streaming-first*.  The actual execution engine is
:class:`~repro.core.streaming.StreamingQoEPipeline`: a single-pass, per-flow
operator chain (media classification -> online frame assembly -> incremental
feature accumulation -> per-window inference) whose retained state is bounded
by the window size, never the trace length.  :meth:`QoEPipeline.estimate` is
a thin *batch adapter* over that engine -- it feeds the materialized trace
through the stream in single-flow mode and collects the emitted windows -- so
the batch and streaming code paths share one implementation and cannot
diverge.  Training, which inherently needs the labelled lab traces aligned
with per-second ground truth, remains a batch operation over
:func:`~repro.core.windows.match_windows_to_ground_truth`.

All behavioural knobs live in a frozen, validated
:class:`~repro.core.config.PipelineConfig`; a trained pipeline can be
persisted with :meth:`save` and reconstructed bit-identically with
:meth:`load` (train once in the lab, deploy many times -- see
:class:`~repro.monitor.QoEMonitor`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.estimators import IPUDPMLEstimator, REGRESSION_METRICS
from repro.core.heuristic import IPUDPHeuristic
from repro.core.media import MediaClassifier
from repro.core.windows import match_windows_to_ground_truth
from repro.net.trace import PacketTrace
from repro.webrtc.profiles import VCAProfile, get_profile
from repro.webrtc.session import CallResult

__all__ = ["PipelineEstimate", "QoEPipeline", "PIPELINE_FORMAT", "PIPELINE_FORMAT_VERSION"]

#: Identifier and schema version of the on-disk pipeline format.
PIPELINE_FORMAT = "repro-qoe-pipeline"
PIPELINE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class PipelineEstimate:
    """Per-window QoE estimate emitted by the pipeline."""

    window_start: float
    frame_rate: float
    bitrate_kbps: float
    frame_jitter_ms: float
    resolution: str | None
    source: str  # "ml" or "heuristic"

    @classmethod
    def _from_wire(
        cls,
        window_start: float,
        frame_rate: float,
        bitrate_kbps: float,
        frame_jitter_ms: float,
        resolution: str | None,
        source: str,
    ) -> "PipelineEstimate":
        """Trusted fast constructor for decoded wire rows.

        ``frozen=True`` makes ``__init__`` pay one ``object.__setattr__``
        per field; the return-path decoder materializes millions of these,
        so it writes the instance dict directly -- the same shortcut
        ``pickle`` takes -- which is safe exactly because every field is a
        plain value the codec just produced.
        """
        estimate = object.__new__(cls)
        estimate.__dict__.update(
            window_start=window_start,
            frame_rate=frame_rate,
            bitrate_kbps=bitrate_kbps,
            frame_jitter_ms=frame_jitter_ms,
            resolution=resolution,
            source=source,
        )
        return estimate


class QoEPipeline:
    """Estimate per-second VCA QoE from IP/UDP headers only.

    Typical use::

        pipeline = QoEPipeline.for_vca("teams")
        pipeline.train(calls)                # calls: list[CallResult] (lab data)
        estimates = pipeline.estimate(trace) # trace: PacketTrace or pcap path
        pipeline.save("teams-qoe.model.json")

    Without training, the pipeline falls back to the IP/UDP heuristic for
    frame rate, bitrate and frame jitter and reports no resolution estimate.

    Construction takes either a :class:`~repro.core.config.PipelineConfig`
    (the canonical form) or the legacy ``window_s`` kwarg, which overrides
    the config's window length.
    """

    def __init__(
        self,
        profile: VCAProfile,
        window_s: float | None = None,
        config: PipelineConfig | None = None,
    ) -> None:
        if config is None:
            config = PipelineConfig()
        if window_s is not None:
            config = config.replace(window_s=float(window_s))
        self.profile = profile
        self.config = config
        self.window_s = config.window_s
        delta_size, lookback = config.resolve_assembly(profile)
        self.heuristic = IPUDPHeuristic(
            delta_size=delta_size,
            lookback=lookback,
            classifier=MediaClassifier(video_size_threshold=profile.video_size_threshold),
        )
        self.ml = IPUDPMLEstimator.for_profile(profile)
        self._trained = False

    @classmethod
    def for_vca(
        cls,
        vca: str,
        window_s: float | None = None,
        config: PipelineConfig | None = None,
    ) -> "QoEPipeline":
        return cls(get_profile(vca), window_s=window_s, config=config)

    @property
    def is_trained(self) -> bool:
        return self._trained

    # -- training ----------------------------------------------------------------

    def train(self, calls: list[CallResult]) -> "QoEPipeline":
        """Train the per-metric random forests from labelled calls.

        The calls provide both traces and ground-truth logs (the labelled data
        a lab-style collection framework produces); only IP/UDP features are
        used for the models themselves.
        """
        if not calls:
            raise ValueError("need at least one labelled call to train")
        # Ground truth is logged per second; training windows must align with
        # whole ground-truth rows.  (Estimation supports fractional windows.)
        window_s = int(self.window_s)
        if window_s != self.window_s or window_s < 1:
            raise ValueError(
                f"training requires an integer window_s >= 1 (per-second ground "
                f"truth), got {self.window_s!r}"
            )
        from repro.core.resolution import binner_for_vca

        binner = binner_for_vca(self.profile.name)
        feature_rows: list[np.ndarray] = []
        targets: dict[str, list] = {metric: [] for metric in REGRESSION_METRICS}
        resolution_targets: list[str] = []
        for call in calls:
            if call.vca != self.profile.name:
                raise ValueError(
                    f"call {call.config.call_id} is for VCA {call.vca!r}, "
                    f"pipeline is for {self.profile.name!r}"
                )
            matched = match_windows_to_ground_truth(
                call.trace, call.ground_truth, window_s=window_s
            )
            for sample in matched:
                feature_rows.append(self.ml.features_for_window(sample.window))
                targets["frame_rate"].append(sample.ground_truth.frames_received)
                targets["bitrate"].append(sample.ground_truth.bitrate_kbps)
                targets["frame_jitter"].append(sample.ground_truth.frame_jitter_ms)
                resolution_targets.append(binner.label(sample.ground_truth.frame_height))

        if not feature_rows:
            raise ValueError("the provided calls produced no training windows")
        X = np.vstack(feature_rows)
        fit_targets = {metric: np.array(values) for metric, values in targets.items()}
        fit_targets["resolution"] = np.array(resolution_targets)
        self.ml.fit(X, fit_targets)
        self._trained = True
        return self

    # -- persistence ---------------------------------------------------------------

    def to_payload(self) -> dict:
        """The saved-pipeline payload as a plain dict (the wire format).

        This is exactly what :meth:`save` writes to disk: VCA profile name,
        :class:`~repro.core.config.PipelineConfig`, and -- when trained --
        every per-metric forest plus the feature schema.  Besides backing the
        file round-trip, it is the serialization the sharded monitor ships to
        its worker processes, so a worker reconstructs the same deployment a
        remote site would load from disk.
        """
        return {
            "format": PIPELINE_FORMAT,
            "version": PIPELINE_FORMAT_VERSION,
            "vca": self.profile.name,
            "config": self.config.to_dict(),
            "trained": self._trained,
            "model": self.ml.to_dict() if self._trained else None,
        }

    @classmethod
    def from_payload(cls, data: dict) -> "QoEPipeline":
        """Inverse of :meth:`to_payload` (bit-identical predictions)."""
        if data.get("format") != PIPELINE_FORMAT:
            raise ValueError(
                f"not a saved QoE pipeline (format {data.get('format')!r})"
            )
        if data.get("version") != PIPELINE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported pipeline format version {data.get('version')!r} "
                f"(this build reads version {PIPELINE_FORMAT_VERSION})"
            )
        pipeline = cls(get_profile(data["vca"]), config=PipelineConfig.from_dict(data["config"]))
        if data["trained"]:
            pipeline.ml = IPUDPMLEstimator.from_dict(data["model"])
            pipeline._trained = True
        return pipeline

    def save(self, path: str | Path) -> Path:
        """Persist the pipeline (config + trained forests) as versioned JSON.

        The file fully reconstructs the deployment (see :meth:`to_payload`),
        such that :meth:`load` reproduces predictions bit-identically.
        """
        path = Path(path)
        path.write_text(json.dumps(self.to_payload()))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "QoEPipeline":
        """Reconstruct a pipeline saved with :meth:`save`."""
        try:
            return cls.from_payload(json.loads(Path(path).read_text()))
        except ValueError as error:
            raise ValueError(f"{path}: {error}") from None

    # -- estimation ----------------------------------------------------------------

    def _load_trace(self, trace: PacketTrace | str | Path) -> PacketTrace:
        if isinstance(trace, (str, Path)):
            return PacketTrace.from_pcap(trace, vca=self.profile.name)
        return trace

    def estimate(self, trace: PacketTrace | str | Path) -> list[PipelineEstimate]:
        """Per-window QoE estimates for a session trace.

        This is a batch adapter over the streaming engine
        (:class:`~repro.core.streaming.StreamingQoEPipeline`): the trace is
        fed through the single-pass per-flow operators in single-flow mode
        and the emitted windows are collected.  Only IP/UDP header fields
        (timestamp, 5-tuple, payload size) are ever read, so the trace is
        consumed exactly as an IP/UDP monitor would see it regardless of any
        RTP headers or ground-truth annotations it may carry.
        """
        from repro.core.streaming import StreamingQoEPipeline

        packet_trace = self._load_trace(trace)
        if not packet_trace:
            return []
        engine = StreamingQoEPipeline(self, config=self.config.replace(demux_flows=False))
        return engine.collect(packet_trace, batch=True)

    def estimate_call(self, call: CallResult) -> list[PipelineEstimate]:
        """Convenience wrapper estimating a simulated call's trace."""
        return self.estimate(call.trace)
