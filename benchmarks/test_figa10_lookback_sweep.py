"""Figure A.10: IP/UDP Heuristic frame-rate MAE as a function of the packet
lookback parameter (N_max).

Paper shape: Webex is best at a lookback of 1 and degrades as the lookback
grows (similar small frames get merged); Meet and Teams tolerate or prefer a
slightly larger lookback.
"""

import numpy as np

from benchmarks.conftest import save_artifact
from repro.analysis.reporting import format_series
from repro.core.heuristic import IPUDPHeuristic
from repro.core.media import MediaClassifier
from repro.core.windows import match_windows_to_ground_truth
from repro.core.heuristic import estimates_from_frames
from repro.webrtc.profiles import get_profile

LOOKBACKS = (1, 2, 3, 5, 8)


def _lookback_sweep(lab_calls):
    mae = {vca: [] for vca in lab_calls}
    for vca, calls in lab_calls.items():
        profile = get_profile(vca)
        for lookback in LOOKBACKS:
            heuristic = IPUDPHeuristic(
                delta_size=profile.heuristic_size_threshold,
                lookback=lookback,
                classifier=MediaClassifier(video_size_threshold=profile.video_size_threshold),
            )
            errors = []
            for call in calls:
                frames = heuristic.assemble(call.trace)
                matched = match_windows_to_ground_truth(call.trace, call.ground_truth)
                for sample in matched:
                    estimate = estimates_from_frames(frames, sample.window.start, sample.window.duration)
                    errors.append(abs(estimate.frame_rate - sample.ground_truth.frames_received))
            mae[vca].append(float(np.mean(errors)))
    return mae


def test_figa10_lookback_sweep(benchmark, lab_calls):
    mae = benchmark.pedantic(_lookback_sweep, args=(lab_calls,), rounds=1, iterations=1)

    sections = [
        format_series(
            f"Figure A.10 - IP/UDP Heuristic frame-rate MAE vs packet lookback ({vca}, in-lab)",
            LOOKBACKS,
            [round(v, 2) for v in series],
            x_label="lookback [packets]",
            y_label="MAE [fps]",
        )
        for vca, series in mae.items()
    ]
    save_artifact("figa10_lookback_sweep", "\n\n".join(sections))

    # Every series stays finite and positive, and the lookback genuinely moves
    # the error (the curves are not flat).  The paper's per-VCA optima
    # (Webex=1, Teams=2, Meet=3) are not exactly reproduced because the
    # simulator's dominant heuristic error source is retransmission-induced
    # splits rather than frame coalescing -- see EXPERIMENTS.md.
    for vca, series in mae.items():
        assert all(np.isfinite(v) and v >= 0 for v in series), vca
        assert max(series) - min(series) > 0.0, vca
    # A modest lookback (>1) never hurts Meet, which suffers the most splits.
    assert min(mae["meet"][1:3]) <= mae["meet"][0] * 1.1
