"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    ErrorSummary,
    accuracy_score,
    confusion_matrix,
    mean_absolute_error,
    mean_relative_absolute_error,
    normalized_confusion_matrix,
    r2_score,
    root_mean_squared_error,
    summarize_errors,
    within_tolerance_fraction,
)


class TestRegressionMetrics:
    def test_mae_simple(self):
        assert mean_absolute_error([1.0, 2.0, 3.0], [2.0, 2.0, 5.0]) == pytest.approx(1.0)

    def test_mae_zero_for_perfect_prediction(self):
        values = np.linspace(0, 10, 20)
        assert mean_absolute_error(values, values) == 0.0

    def test_mrae_relative_to_ground_truth(self):
        assert mean_relative_absolute_error([100.0, 200.0], [110.0, 180.0]) == pytest.approx(0.1)

    def test_mrae_guards_zero_ground_truth(self):
        value = mean_relative_absolute_error([0.0], [1.0])
        assert np.isfinite(value)

    def test_rmse_at_least_mae(self):
        y_true = np.array([0.0, 0.0, 0.0, 0.0])
        y_pred = np.array([0.0, 0.0, 0.0, 4.0])
        assert root_mean_squared_error(y_true, y_pred) >= mean_absolute_error(y_true, y_pred)

    def test_r2_perfect_and_mean_predictor(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(4, y.mean())) == pytest.approx(0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0, 2.0], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error([], [])

    def test_within_tolerance_absolute(self):
        frac = within_tolerance_fraction([10.0, 10.0, 10.0], [11.0, 13.0, 10.5], tolerance=2.0)
        assert frac == pytest.approx(2.0 / 3.0)

    def test_within_tolerance_relative(self):
        # "within 25% of the ground truth bitrate"
        frac = within_tolerance_fraction([1000.0, 1000.0], [1200.0, 1300.0], tolerance=0.25, relative=True)
        assert frac == pytest.approx(0.5)


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy_score(["a", "b", "a"], ["a", "b", "b"]) == pytest.approx(2.0 / 3.0)

    def test_confusion_matrix_counts(self):
        matrix, labels = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert list(labels) == ["a", "b"]
        assert matrix[0, 0] == 1  # a predicted a
        assert matrix[0, 1] == 1  # a predicted b
        assert matrix[1, 1] == 1  # b predicted b
        assert matrix.sum() == 3

    def test_confusion_matrix_with_explicit_labels(self):
        matrix, labels = confusion_matrix(["a"], ["a"], labels=["a", "b", "c"])
        assert matrix.shape == (3, 3)
        assert matrix[0, 0] == 1

    def test_normalized_rows_sum_to_one(self):
        matrix, _ = normalized_confusion_matrix(["a", "a", "b", "b", "b"], ["a", "b", "b", "b", "a"])
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_normalized_handles_missing_actual_class(self):
        matrix, labels = normalized_confusion_matrix(["a", "a"], ["a", "b"], labels=["a", "b"])
        # Row for "b" has no actual samples -> all zeros, no NaN.
        assert np.all(np.isfinite(matrix))
        assert matrix[1].sum() == 0.0


class TestErrorSummary:
    def test_summary_fields_consistent(self):
        y_true = np.zeros(100)
        y_pred = np.linspace(-1.0, 1.0, 100)
        summary = summarize_errors(y_true, y_pred)
        assert isinstance(summary, ErrorSummary)
        assert summary.n == 100
        assert summary.p10 <= summary.p25 <= summary.median <= summary.p75 <= summary.p90
        assert summary.mae == pytest.approx(np.mean(np.abs(y_pred)))

    def test_relative_summary_divides_by_truth(self):
        y_true = np.array([100.0, 100.0])
        y_pred = np.array([150.0, 50.0])
        summary = summarize_errors(y_true, y_pred, relative=True)
        assert summary.median == pytest.approx(0.0)
        assert summary.p90 <= 0.5 + 1e-9

    def test_as_dict_round_trip(self):
        summary = summarize_errors([1.0, 2.0], [1.5, 2.5])
        data = summary.as_dict()
        assert data["n"] == 2
        assert data["mae"] == pytest.approx(0.5)
