"""Flow-snapshot codec fuzz + push-identical migration resume tests.

The migration analogue of ``test_estimate_codec.py``: random
:class:`~repro.net.flowwire.FlowSnapshot` contents -- NaN / +/-inf / random
bit-pattern accumulator state, empty and heavily populated sections -- must
round-trip **bit-identically** through the flat buffer, and truncated or
corrupt buffers must be rejected loudly.

The second half pins the tentpole property end-to-end: cutting a live
``_FlowStream`` out of one engine (``dump_flow``) and restoring it into a
fresh engine (``load_flow``) resumes **push-identically** -- the split run
emits exactly the estimates of the uncut run, at several cut points
including mid-open-window and mid-reorder-buffer.
"""

from __future__ import annotations

import importlib.util
import math
import random
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.core.pipeline import QoEPipeline
from repro.core.streaming import StreamingQoEPipeline
from repro.net.flows import FlowKey
from repro.net.flowwire import FlowSnapshot

# Plain ``import conftest`` would collide with the root tests/conftest.py;
# load the cluster suite's helpers under a private name instead.
_spec = importlib.util.spec_from_file_location(
    "_cluster_conftest_snapshot", Path(__file__).resolve().parent / "conftest.py"
)
_cluster_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_cluster_conftest)
interleave = _cluster_conftest.interleave
make_trained_pipeline = _cluster_conftest.make_trained_pipeline
synthetic_flow = _cluster_conftest.synthetic_flow


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


_SPECIALS = (math.nan, math.inf, -math.inf, 0.0, -0.0, 5e-324, 1.7976931348623157e308)


def random_metric(rng: random.Random) -> float:
    roll = rng.random()
    if roll < 0.3:
        return rng.choice(_SPECIALS)
    if roll < 0.5:
        # Random bit patterns: payload-carrying NaNs, denormals, the lot.
        return struct.unpack("<d", rng.getrandbits(64).to_bytes(8, "little"))[0]
    return rng.uniform(-1e6, 1e6)


def _floats(rng: random.Random, n: int) -> np.ndarray:
    return np.array([random_metric(rng) for _ in range(n)], dtype="<f8")


def _ints(rng: random.Random, n: int, low=0, high=2**40) -> np.ndarray:
    return np.array([rng.randrange(low, high) for _ in range(n)], dtype="<i8")


def random_snapshot(rng: random.Random) -> FlowSnapshot:
    """A structurally consistent snapshot with adversarial field values."""
    n_pending = rng.randint(0, 40)
    n_acc = rng.randint(0, 60)
    n_iats = rng.randint(0, 60)
    n_unique = rng.randint(0, 30)
    n_frames = rng.randint(0, 12)
    n_recent = rng.randint(0, 20)
    flow = (
        None
        if rng.random() < 0.2
        else FlowKey("192.0.2.1", 3478, "10.0.0.9", rng.randint(1024, 65000))
    )
    return FlowSnapshot(
        flow=flow,
        stats=None if rng.random() < 0.3 else (rng.randint(0, 10**6), rng.randint(0, 10**9), 0.125, 8.25),
        trained=rng.random() < 0.5,
        window_s=rng.choice((1.0, 0.5, 2.0)),
        start=rng.choice((0.0, -4.0, 1e6)),
        seq=rng.randint(0, 2**40),
        next_window=rng.randint(-5, 2**30),
        watermark=rng.choice((None, random_metric(rng))),
        last_seen=rng.choice((None, random_metric(rng))),
        pending_ts=_floats(rng, n_pending),
        pending_seqs=_ints(rng, n_pending),
        pending_sizes=_ints(rng, n_pending, high=65536),
        acc_index=rng.choice((-1, rng.randint(0, 1000))),
        acc_n=rng.randint(0, 10**6),
        acc_byte_sum=random_metric(rng),
        acc_size_min=random_metric(rng),
        acc_size_max=random_metric(rng),
        acc_microbursts=rng.randint(0, 1000),
        acc_last_timestamp=rng.choice((None, random_metric(rng))),
        acc_sizes=_floats(rng, n_acc),
        acc_iats=_floats(rng, n_iats),
        acc_unique=_ints(rng, n_unique, high=65536),
        asm_next_index=rng.randint(0, 2**40),
        frame_indices=_ints(rng, n_frames),
        frame_windows=_ints(rng, n_frames, low=-3, high=2**30),
        frame_open=np.array([rng.randint(0, 1) for _ in range(n_frames)], dtype="<i1"),
        frame_n_packets=_ints(rng, n_frames, low=1, high=200),
        frame_size_bytes=_ints(rng, n_frames, high=2**32),
        frame_raw_bytes=_ints(rng, n_frames, high=2**32),
        frame_start_ts=_floats(rng, n_frames),
        frame_end_ts=_floats(rng, n_frames),
        recent_ts=_floats(rng, n_recent),
        recent_sizes=_ints(rng, n_recent, high=65536),
        recent_frames=_ints(rng, n_recent),
    )


_FLOAT_COLUMNS = ("pending_ts", "acc_sizes", "acc_iats", "frame_start_ts", "frame_end_ts", "recent_ts")
_INT_COLUMNS = (
    "pending_seqs",
    "pending_sizes",
    "acc_unique",
    "frame_indices",
    "frame_windows",
    "frame_open",
    "frame_n_packets",
    "frame_size_bytes",
    "frame_raw_bytes",
    "recent_sizes",
    "recent_frames",
)
_FLOAT_SCALARS = ("window_s", "start", "acc_byte_sum", "acc_size_min", "acc_size_max")
_OPTIONAL_FLOATS = ("watermark", "last_seen", "acc_last_timestamp")
_INT_SCALARS = ("seq", "next_window", "acc_index", "acc_n", "acc_microbursts", "asm_next_index")


def assert_snapshots_bit_identical(got: FlowSnapshot, want: FlowSnapshot) -> None:
    assert got.flow == want.flow
    assert got.stats == want.stats
    assert got.trained == want.trained
    for name in _FLOAT_SCALARS:
        assert bits(getattr(got, name)) == bits(getattr(want, name)), name
    for name in _OPTIONAL_FLOATS:
        g, w = getattr(got, name), getattr(want, name)
        assert (g is None) == (w is None), name
        if w is not None:
            assert bits(g) == bits(w), name
    for name in _INT_SCALARS:
        assert getattr(got, name) == getattr(want, name), name
    for name in _FLOAT_COLUMNS + _INT_COLUMNS:
        assert getattr(got, name).tobytes() == getattr(want, name).tobytes(), name


class TestFlowSnapshotCodecFuzz:
    @pytest.mark.parametrize("seed", range(10))
    def test_round_trip_bit_identical(self, seed):
        snapshot = random_snapshot(random.Random(seed))
        payload = snapshot.to_bytes()
        assert len(payload) == snapshot.byte_size()
        decoded = FlowSnapshot.read_from(payload)
        assert_snapshots_bit_identical(decoded, snapshot)
        # And a second encode of the decode is byte-identical (stable codec).
        assert decoded.to_bytes() == payload

    @pytest.mark.parametrize("seed", range(4))
    def test_truncated_buffers_raise(self, seed):
        rng = random.Random(seed)
        payload = random_snapshot(rng).to_bytes()
        cuts = {0, 7, 16, len(payload) // 3, len(payload) // 2, len(payload) - 1}
        cuts.add(rng.randrange(len(payload)))
        for cut in cuts:
            with pytest.raises(ValueError, match="flow snapshot"):
                FlowSnapshot.read_from(payload[:cut])

    def test_corrupt_headers_raise(self):
        payload = bytearray(random_snapshot(random.Random(1)).to_bytes())
        bad_magic = bytearray(payload)
        bad_magic[:4] = b"XXXX"
        with pytest.raises(ValueError, match="magic"):
            FlowSnapshot.read_from(bad_magic)
        bad_version = bytearray(payload)
        struct.pack_into("<H", bad_version, 4, 99)
        with pytest.raises(ValueError, match="version"):
            FlowSnapshot.read_from(bad_version)
        bad_rows = bytearray(payload)
        struct.pack_into("<q", bad_rows, 8, -1)
        with pytest.raises(ValueError, match="negative"):
            FlowSnapshot.read_from(bad_rows)
        bad_meta = bytearray(payload)
        header_end = struct.calcsize("<4sHHqq") + struct.calcsize("<8d6q")
        bad_meta[header_end : header_end + 2] = b"{{"
        with pytest.raises(ValueError, match="meta"):
            FlowSnapshot.read_from(bad_meta)

    def test_empty_assembled_frame_raises(self):
        snapshot = random_snapshot(random.Random(2))
        snapshot.frame_indices = np.array([1], dtype="<i8")
        snapshot.frame_windows = np.array([0], dtype="<i8")
        snapshot.frame_open = np.array([0], dtype="<i1")
        snapshot.frame_n_packets = np.array([0], dtype="<i8")  # a frame with no packets
        snapshot.frame_size_bytes = np.array([100], dtype="<i8")
        snapshot.frame_raw_bytes = np.array([112], dtype="<i8")
        snapshot.frame_start_ts = np.array([0.5], dtype="<f8")
        snapshot.frame_end_ts = np.array([0.5], dtype="<f8")
        snapshot._meta_cache = None
        with pytest.raises(ValueError, match="empty assembled frame"):
            FlowSnapshot.read_from(snapshot.to_bytes())

    def test_write_into_checks_capacity(self):
        snapshot = random_snapshot(random.Random(3))
        with pytest.raises(ValueError, match="too small"):
            snapshot.write_into(bytearray(snapshot.byte_size() - 8))


# -- push-identical resume ------------------------------------------------------


KEYS = [FlowKey("192.0.2.10", 3478, f"10.0.0.{i}", 50000 + i) for i in (1, 2)]


def _two_flow_packets():
    return interleave(
        synthetic_flow(1, KEYS[0].dst, KEYS[0].dst_port, duration_s=6.0),
        synthetic_flow(2, KEYS[1].dst, KEYS[1].dst_port, duration_s=6.0),
    )


def _run_uncut(pipeline, packets, key):
    engine = StreamingQoEPipeline(pipeline)
    out = []
    for packet in packets:
        out.extend(engine.push(packet))
    out.extend(engine.flush())
    return [item for item in out if item.flow == key]


def _run_split(pipeline, packets, key, cut):
    """Dump ``key`` at packet index ``cut`` and resume it on a fresh engine."""
    origin = StreamingQoEPipeline(pipeline)
    out = []
    for packet in packets[:cut]:
        out.extend(origin.push(packet))
    dumped = origin.dump_flow(key)
    assert dumped is not None
    payload, bound = dumped
    assert key not in origin.flows
    destination = StreamingQoEPipeline(pipeline)
    destination.load_flow(key, payload)
    for packet in packets[cut:]:
        target = destination if packet.udp.dst_port == key.dst_port else origin
        out.extend(target.push(packet))
    out.extend(origin.flush())
    out.extend(destination.flush())
    return [item for item in out if item.flow == key], payload, bound


def assert_estimates_bit_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.flow == w.flow
        for name in ("window_start", "frame_rate", "bitrate_kbps", "frame_jitter_ms"):
            assert bits(getattr(g.estimate, name)) == bits(getattr(w.estimate, name)), name
        assert g.estimate.resolution == w.estimate.resolution
        assert g.estimate.source == w.estimate.source


class TestPushIdenticalResume:
    @pytest.mark.parametrize("fraction", [0.15, 0.4, 0.65, 0.9])
    def test_heuristic_resume_matches_uncut(self, fraction):
        pipeline = QoEPipeline.for_vca("teams")
        packets = _two_flow_packets()
        expected = _run_uncut(pipeline, packets, KEYS[0])
        cut = int(len(packets) * fraction)
        got, payload, bound = _run_split(pipeline, packets, KEYS[0], cut)
        assert_estimates_bit_identical(got, expected)
        snapshot = FlowSnapshot.read_from(payload)
        assert not snapshot.trained
        # The fence bound really is the earliest window still pending.
        later = [item.estimate.window_start for item in expected if item.estimate.window_start >= bound]
        emitted_before = [w for w in (item.estimate.window_start for item in got) if w < bound]
        assert sorted(emitted_before) == sorted(
            item.estimate.window_start for item in expected if item.estimate.window_start < bound
        )
        assert len(later) + len(emitted_before) == len(expected)

    @pytest.mark.parametrize("fraction", [0.3, 0.7])
    def test_trained_resume_matches_uncut(self, fraction):
        pipeline = make_trained_pipeline()
        packets = _two_flow_packets()
        expected = _run_uncut(pipeline, packets, KEYS[0])
        assert all(item.estimate.source == "ml" for item in expected)
        cut = int(len(packets) * fraction)
        got, payload, _ = _run_split(pipeline, packets, KEYS[0], cut)
        assert_estimates_bit_identical(got, expected)
        assert FlowSnapshot.read_from(payload).trained

    def test_cuts_cover_reorder_buffer_and_open_state(self):
        """The parametrized cuts genuinely exercise mid-flight state.

        A snapshot taken mid-run must carry reorder-buffer rows and (in
        heuristic mode) open lookback state -- otherwise the resume tests
        above would only ever cover the trivial quiescent-stream case.
        """
        pipeline = QoEPipeline.for_vca("teams")
        packets = _two_flow_packets()
        cut = int(len(packets) * 0.4)
        engine = StreamingQoEPipeline(pipeline)
        for packet in packets[:cut]:
            engine.push(packet)
        payload, bound = engine.dump_flow(KEYS[0])
        snapshot = FlowSnapshot.read_from(payload)
        assert len(snapshot.pending_ts) > 0  # mid-reorder-buffer
        assert len(snapshot.recent_ts) > 0  # mid-lookback
        assert snapshot.next_window > 0  # mid-stream, not a fresh flow
        assert bound == snapshot.start + snapshot.next_window * snapshot.window_s

    def test_trained_cut_carries_accumulator_state(self):
        pipeline = make_trained_pipeline()
        packets = _two_flow_packets()
        engine = StreamingQoEPipeline(pipeline)
        for packet in packets[: int(len(packets) * 0.4)]:
            engine.push(packet)
        payload, _ = engine.dump_flow(KEYS[0])
        snapshot = FlowSnapshot.read_from(payload)
        assert snapshot.trained
        assert snapshot.acc_index >= 0  # an open window's accumulator travelled
        assert snapshot.acc_n > 0


class TestDumpLoadGuards:
    def test_dump_unknown_flow_returns_none(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        assert engine.dump_flow(KEYS[0]) is None

    def test_dump_refuses_mid_tick(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        for packet in _two_flow_packets()[:50]:
            engine.push(packet)
        engine._streams[KEYS[0]].trigger_pos = 0
        with pytest.raises(RuntimeError, match="mid-tick"):
            engine.dump_flow(KEYS[0])

    def test_load_refuses_live_flow(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        packets = _two_flow_packets()
        for packet in packets[:100]:
            engine.push(packet)
        payload, _ = engine.dump_flow(KEYS[0])
        engine.load_flow(KEYS[0], payload)  # fine: no longer live
        with pytest.raises(RuntimeError, match="already live"):
            engine.load_flow(KEYS[0], payload)

    def test_load_refuses_mode_mismatch(self):
        heuristic = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        for packet in _two_flow_packets()[:100]:
            heuristic.push(packet)
        payload, _ = heuristic.dump_flow(KEYS[0])
        trained = StreamingQoEPipeline(make_trained_pipeline())
        with pytest.raises(ValueError, match="mode mismatch"):
            trained.load_flow(KEYS[0], payload)

    def test_load_refuses_window_grid_mismatch(self):
        pipeline = QoEPipeline.for_vca("teams")
        engine = StreamingQoEPipeline(pipeline)
        for packet in _two_flow_packets()[:100]:
            engine.push(packet)
        payload, _ = engine.dump_flow(KEYS[0])
        shifted = StreamingQoEPipeline(pipeline, start=123.0)
        with pytest.raises(ValueError, match="grid mismatch"):
            shifted.load_flow(KEYS[0], payload)

    def test_flushed_engine_refuses_both(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        for packet in _two_flow_packets()[:100]:
            engine.push(packet)
        payload, _ = engine.dump_flow(KEYS[0])
        engine.flush()
        with pytest.raises(RuntimeError, match="flushed"):
            engine.dump_flow(KEYS[1])
        with pytest.raises(RuntimeError, match="flushed"):
            engine.load_flow(KEYS[0], payload)

    def test_flow_table_stats_travel_with_the_flow(self):
        engine = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        packets = _two_flow_packets()
        for packet in packets[:200]:
            engine.push(packet)
        before = engine.flow_table.stats(KEYS[0])
        payload, _ = engine.dump_flow(KEYS[0])
        destination = StreamingQoEPipeline(QoEPipeline.for_vca("teams"))
        destination.load_flow(KEYS[0], payload)
        after = destination.flow_table.stats(KEYS[0])
        assert (after.packets, after.bytes, after.first_seen, after.last_seen) == (
            before.packets,
            before.bytes,
            before.first_seen,
            before.last_seen,
        )
