"""Dataset builders: the offline substitute for the paper's data collection.

The paper evaluates on three datasets:

* **in-lab** -- calls between two lab machines under emulated conditions
  replayed from M-Lab NDT speed tests (Section 4.2);
* **real-world** -- short calls initiated every 30 minutes from Raspberry Pis
  in 15 households over two weeks (Section 4.2);
* **synthetic sweeps** -- controlled single-parameter impairments
  (Section 5.4, Table A.6).

Each builder here produces lists of :class:`~repro.webrtc.session.CallResult`
objects with the corresponding condition generators, at a configurable scale
(the defaults are sized for CI; pass larger counts to approach the paper's
54,696 seconds of data).
"""

from repro.datasets.collection import CollectionConfig, collect_call, collect_calls
from repro.datasets.lab import LabDatasetConfig, build_lab_dataset
from repro.datasets.realworld import Household, RealWorldConfig, build_real_world_dataset, default_households
from repro.datasets.synthetic import SweepConfig, build_impairment_sweep

__all__ = [
    "CollectionConfig",
    "collect_call",
    "collect_calls",
    "LabDatasetConfig",
    "build_lab_dataset",
    "Household",
    "RealWorldConfig",
    "build_real_world_dataset",
    "default_households",
    "SweepConfig",
    "build_impairment_sweep",
]
