"""Call collection: run simulated calls and optionally persist their artefacts.

This is the substitute for the paper's browser-automation framework
(PyAutoGUI + tcpdump + webrtc-internals export): each "collected" call yields
a packet capture and a ground-truth log.  Captures can be written to real
pcap files so the rest of the pipeline can operate on on-disk artefacts, just
as the released dataset does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.netem.conditions import ConditionSchedule
from repro.webrtc.session import CallResult, SessionConfig, simulate_call
from repro.webrtc.stats import GroundTruthLog

__all__ = ["CollectionConfig", "collect_call", "collect_calls", "export_call", "load_ground_truth_json"]


@dataclass(frozen=True)
class CollectionConfig:
    """How to run one batch of calls."""

    vca: str
    n_calls: int
    duration_s: int = 30
    environment: str = "lab"
    seed: int = 0
    output_dir: Path | None = None

    def __post_init__(self) -> None:
        if self.n_calls < 1:
            raise ValueError("n_calls must be >= 1")


def collect_call(
    vca: str,
    schedule: ConditionSchedule,
    duration_s: int = 30,
    environment: str = "lab",
    seed: int | None = None,
    call_id: str = "call-0",
    output_dir: Path | None = None,
) -> CallResult:
    """Run one call and optionally export its pcap + ground-truth JSON."""
    config = SessionConfig(
        vca=vca,
        duration_s=duration_s,
        environment=environment,
        seed=seed,
        call_id=call_id,
    )
    result = simulate_call(config, schedule)
    if output_dir is not None:
        export_call(result, output_dir)
    return result


def collect_calls(
    config: CollectionConfig,
    schedule_factory,
) -> list[CallResult]:
    """Run ``config.n_calls`` calls, one schedule per call.

    ``schedule_factory(call_index, rng)`` must return the
    :class:`ConditionSchedule` for each call.
    """
    rng = np.random.default_rng(config.seed)
    results = []
    for index in range(config.n_calls):
        schedule = schedule_factory(index, rng)
        call_seed = int(rng.integers(0, 2**31 - 1))
        results.append(
            collect_call(
                vca=config.vca,
                schedule=schedule,
                duration_s=config.duration_s,
                environment=config.environment,
                seed=call_seed,
                call_id=f"{config.vca}-{config.environment}-{index:04d}",
                output_dir=config.output_dir,
            )
        )
    return results


def export_call(result: CallResult, output_dir: Path | str) -> tuple[Path, Path]:
    """Write a call's pcap and ground-truth JSON under ``output_dir``.

    Returns the ``(pcap_path, json_path)`` pair.  Endpoint addresses are
    hashed, as in the released dataset (Statement of Ethics).
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    call_id = result.config.call_id
    pcap_path = output_dir / f"{call_id}.pcap"
    json_path = output_dir / f"{call_id}.json"

    anonymized = [p.anonymized() for p in result.trace]
    from repro.net.pcap import write_pcap

    write_pcap(pcap_path, anonymized)

    payload = {
        "vca": result.vca,
        "call_id": call_id,
        "environment": result.config.environment,
        "duration_s": result.config.duration_s,
        "rows": [
            {
                "second": row.second,
                "frames_received": row.frames_received,
                "bitrate_kbps": row.bitrate_kbps,
                "frame_jitter_ms": row.frame_jitter_ms,
                "frame_height": row.frame_height,
            }
            for row in result.ground_truth
        ],
        "metadata": {
            key: value
            for key, value in result.ground_truth.metadata.items()
            if isinstance(value, (int, float, str, bool)) or value is None
        },
    }
    json_path.write_text(json.dumps(payload, indent=2))
    return pcap_path, json_path


def load_ground_truth_json(path: Path | str) -> GroundTruthLog:
    """Load a ground-truth log exported by :func:`export_call`."""
    from repro.webrtc.stats import PerSecondStats

    payload = json.loads(Path(path).read_text())
    log = GroundTruthLog(vca=payload["vca"], call_id=payload["call_id"])
    log.metadata.update(payload.get("metadata", {}))
    for row in payload["rows"]:
        log.append(
            PerSecondStats(
                second=int(row["second"]),
                frames_received=float(row["frames_received"]),
                bitrate_kbps=float(row["bitrate_kbps"]),
                frame_jitter_ms=float(row["frame_jitter_ms"]),
                frame_height=int(row["frame_height"]),
            )
        )
    return log
