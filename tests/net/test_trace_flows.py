"""Unit tests for PacketTrace and flow utilities."""

import numpy as np
import pytest

from repro.net.flows import FlowKey, FlowTable, five_tuple
from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader
from repro.net.trace import PacketTrace


def make_packet(timestamp, size=500, src="10.0.0.2", dst="10.0.0.1", sport=3478, dport=50000, media=None):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src=src, dst=dst),
        udp=UDPHeader(src_port=sport, dst_port=dport),
        payload_size=size,
        media_type=media,
    )


class TestPacketTrace:
    def test_packets_sorted_on_construction(self):
        trace = PacketTrace([make_packet(2.0), make_packet(1.0), make_packet(3.0)])
        assert [p.timestamp for p in trace] == [1.0, 2.0, 3.0]

    def test_append_keeps_order(self):
        trace = PacketTrace([make_packet(1.0), make_packet(3.0)])
        trace.append(make_packet(2.0))
        assert [p.timestamp for p in trace] == [1.0, 2.0, 3.0]

    def test_len_bool_getitem(self):
        trace = PacketTrace([make_packet(1.0)])
        assert len(trace) == 1
        assert bool(trace)
        assert trace[0].timestamp == 1.0
        assert isinstance(trace[:1], PacketTrace)
        assert not PacketTrace([])

    def test_time_slice_half_open(self):
        trace = PacketTrace([make_packet(float(t)) for t in range(10)])
        sliced = trace.time_slice(2.0, 5.0)
        assert [p.timestamp for p in sliced] == [2.0, 3.0, 4.0]

    def test_duration_and_bounds(self):
        trace = PacketTrace([make_packet(1.5), make_packet(4.5)])
        assert trace.start_time == 1.5
        assert trace.end_time == 4.5
        assert trace.duration == 3.0

    def test_empty_trace_stats(self):
        stats = PacketTrace([]).stats()
        assert stats.n_packets == 0
        assert stats.throughput_bps == 0.0

    def test_stats_throughput(self):
        trace = PacketTrace([make_packet(0.0, size=1000), make_packet(1.0, size=1000)])
        stats = trace.stats()
        assert stats.n_bytes == 2000
        assert stats.throughput_bps == pytest.approx(16000.0)

    def test_interarrival_times(self):
        trace = PacketTrace([make_packet(0.0), make_packet(0.5), make_packet(1.5)])
        assert np.allclose(trace.interarrival_times(), [0.5, 1.0])

    def test_filter_media(self):
        trace = PacketTrace(
            [
                make_packet(0.0, media=MediaType.AUDIO),
                make_packet(1.0, media=MediaType.VIDEO),
                make_packet(2.0, media=MediaType.VIDEO_RTX),
            ]
        )
        video_only = trace.filter_media(MediaType.VIDEO)
        assert len(video_only) == 1

    def test_normalized_rebases_to_zero(self):
        trace = PacketTrace([make_packet(5.0), make_packet(7.0)])
        normalized = trace.normalized()
        assert normalized.start_time == 0.0
        assert normalized.end_time == 2.0

    def test_iter_windows_covers_range_with_empty_windows(self):
        trace = PacketTrace([make_packet(0.1), make_packet(2.9)])
        windows = list(trace.iter_windows(1.0, start=0.0, end=3.0))
        assert len(windows) == 3
        assert len(windows[1][1]) == 0  # second 1..2 is empty

    def test_iter_windows_invalid_window(self):
        with pytest.raises(ValueError):
            list(PacketTrace([make_packet(0.0)]).iter_windows(0.0))

    def test_without_ground_truth(self):
        trace = PacketTrace([make_packet(0.0, media=MediaType.VIDEO)])
        assert trace.without_ground_truth()[0].media_type is None


class TestFlows:
    def test_five_tuple_extraction(self):
        packet = make_packet(0.0)
        key = five_tuple(packet)
        assert key == FlowKey(src="10.0.0.2", src_port=3478, dst="10.0.0.1", dst_port=50000)

    def test_reversed_key(self):
        key = FlowKey(src="a", src_port=1, dst="b", dst_port=2)
        assert key.reversed() == FlowKey(src="b", src_port=2, dst="a", dst_port=1)

    def test_bidirectional_canonical_order(self):
        key = FlowKey(src="b", src_port=2, dst="a", dst_port=1)
        first, second = key.bidirectional()
        assert first.src <= second.src

    def test_flow_table_grouping_and_stats(self):
        table = FlowTable()
        table.add_all(
            [
                make_packet(0.0, size=100),
                make_packet(1.0, size=200),
                make_packet(0.5, size=50, src="172.16.0.9", sport=9999),
            ]
        )
        assert len(table) == 2
        dominant = table.dominant_flow()
        assert dominant.src == "10.0.0.2"
        assert table.stats(dominant).bytes == 300
        assert table.stats(dominant).duration == 1.0
        assert len(table.packets(dominant)) == 2

    def test_toward_filters_by_destination(self):
        table = FlowTable()
        table.add(make_packet(0.0))
        assert len(table.toward("10.0.0.1")) == 1
        assert table.toward("1.1.1.1") == []

    def test_unknown_flow_stats_raises(self):
        with pytest.raises(KeyError):
            FlowTable().stats(FlowKey(src="x", src_port=1, dst="y", dst_port=2))
