"""Deterministic flow -> shard partitioning for the sharded monitor.

The per-flow streams of the engine are fully independent (PR 1 made them
so on purpose), which makes horizontal scale-out a routing problem: send
every packet of a flow to the same worker and N workers behave exactly like
one.  :class:`FlowShardRouter` is that routing function.

Two properties matter and both are load-bearing:

* **Canonical keys.**  Packets are keyed by the *bidirectional* canonical
  form of their 5-tuple (:meth:`~repro.net.flows.FlowKey.bidirectional`), so
  the two unidirectional halves of one call land on the same shard.  The
  engine still demultiplexes them into separate unidirectional streams --
  co-locating them just keeps a future bidirectional feature (RTT, ack
  correlation) shard-local.
* **Stable hashing.**  The shard index comes from CRC-32 over a canonical
  byte encoding of the key, *not* Python's ``hash()``: the builtin string
  hash is salted per process (PYTHONHASHSEED), and worker processes, restarts
  and replicas must all agree where a flow lives.
"""

from __future__ import annotations

import zlib

from repro.net.flows import FlowKey, five_tuple
from repro.net.packet import Packet

__all__ = ["FlowShardRouter"]


class FlowShardRouter:
    """Hash-partition packets onto ``n_shards`` by canonical 5-tuple.

    Stateless and deterministic: the same flow maps to the same shard in
    every process, on every run, for a given shard count.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        self.n_shards = n_shards

    def shard_of_key(self, key: FlowKey) -> int:
        """Shard index of a (unidirectional or canonical) flow key."""
        canonical = key.bidirectional()[0]
        encoded = (
            f"{canonical.src}|{canonical.src_port}|"
            f"{canonical.dst}|{canonical.dst_port}|{canonical.protocol}"
        ).encode()
        return zlib.crc32(encoded) % self.n_shards

    def shard_of(self, packet: Packet) -> int:
        """Shard index ``packet`` belongs to."""
        return self.shard_of_key(five_tuple(packet))
