"""GCC-style congestion control for the simulated sender.

WebRTC senders adapt their video bitrate with the Google Congestion Control
algorithm: a delay-based estimator that backs off when queueing delay grows,
combined with a loss-based controller (back off sharply above ~10% loss, hold
between 2% and 10%, probe upward below 2%).  This module implements a compact
version of that logic driven by the per-second feedback the simulated
receiver reports (loss fraction, receive rate, queueing delay).

The controller's dynamics are what create the correlation between network
conditions and the ground-truth QoE metrics that the paper's ML models learn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.webrtc.profiles import VCAProfile

__all__ = ["RateController", "FeedbackReport"]


@dataclass(frozen=True)
class FeedbackReport:
    """Receiver feedback covering the previous feedback interval (~1 s)."""

    loss_fraction: float
    receive_rate_kbps: float
    queue_delay_ms: float
    rtt_ms: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_fraction <= 1.0:
            raise ValueError(f"loss_fraction out of range: {self.loss_fraction}")
        if self.receive_rate_kbps < 0:
            raise ValueError("receive_rate_kbps must be non-negative")


class RateController:
    """Loss- and delay-based target bitrate controller."""

    #: Loss fraction above which the sender backs off multiplicatively.
    HIGH_LOSS = 0.10
    #: Loss fraction below which the sender may probe upward.
    LOW_LOSS = 0.02
    #: Queueing delay (ms) treated as a congestion signal.
    OVERUSE_DELAY_MS = 60.0

    def __init__(self, profile: VCAProfile, rng: np.random.Generator | None = None) -> None:
        self.profile = profile
        self.rng = rng if rng is not None else np.random.default_rng()
        self.target_kbps = profile.start_bitrate_kbps
        self._since_decrease = 0

    def update(self, feedback: FeedbackReport) -> float:
        """Fold one feedback report in; returns the new target bitrate (kbps)."""
        target = self.target_kbps

        if feedback.loss_fraction > self.HIGH_LOSS:
            # Loss-based multiplicative decrease, as in GCC:
            # rate *= (1 - 0.5 * loss).
            target *= 1.0 - 0.5 * feedback.loss_fraction
            self._since_decrease = 0
        elif feedback.queue_delay_ms > self.OVERUSE_DELAY_MS:
            # Delay-based overuse: converge toward a fraction of the measured
            # receive rate so the bottleneck queue can drain.
            if feedback.receive_rate_kbps > 0:
                target = min(target, 0.85 * feedback.receive_rate_kbps)
            else:
                target *= 0.85
            self._since_decrease = 0
        elif feedback.loss_fraction >= self.LOW_LOSS:
            # Hold region.
            self._since_decrease += 1
        else:
            # Probe upward: multiplicative while far from the ceiling, gentler
            # (additive) right after a decrease.
            self._since_decrease += 1
            if self._since_decrease <= 2:
                target += 50.0
            else:
                target *= 1.08

        jitter = self.rng.normal(0.0, 10.0)
        self.target_kbps = float(
            np.clip(target + jitter, self.profile.min_bitrate_kbps, self.profile.max_bitrate_kbps)
        )
        return self.target_kbps

    def reset(self) -> None:
        self.target_kbps = self.profile.start_bitrate_kbps
        self._since_decrease = 0
