"""Trained-pipeline persistence: versioned JSON, bit-identical predictions.

The train-once / deploy-many contract: an estimator (or whole pipeline)
saved with ``save(path)`` and reconstructed with ``load(path)`` must produce
**bit-identical** predictions on a held-out trace -- not approximately equal,
identical -- so that lab-certified models behave exactly the same at every
deployment site.
"""

import json

import numpy as np
import pytest

from repro import CollectorSink, PcapSource, QoEMonitor, QoEPipeline
from repro.core.estimators import BaseMLEstimator, IPUDPMLEstimator
from repro.core.pipeline import PIPELINE_FORMAT_VERSION
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor


@pytest.fixture(scope="module")
def trained(teams_calls_small):
    return QoEPipeline.for_vca("teams").train(teams_calls_small)


class TestPipelineRoundTrip:
    def test_bit_identical_predictions_on_held_out_trace(self, trained, teams_call, tmp_path):
        """The held-out trace was never seen in training; predictions must match
        to the last bit after a save/load cycle."""
        path = trained.save(tmp_path / "teams.model.json")
        loaded = QoEPipeline.load(path)
        assert loaded.is_trained
        assert loaded.profile.name == "teams"
        assert loaded.config == trained.config
        original = trained.estimate(teams_call.trace)
        reloaded = loaded.estimate(teams_call.trace)
        assert original == reloaded  # dataclass equality: every float bit-identical

    def test_from_model_monitor_matches_saved_pipeline(self, trained, teams_call, tmp_path):
        model_path = trained.save(tmp_path / "teams.model.json")
        pcap_path = tmp_path / "heldout.pcap"
        teams_call.trace.to_pcap(pcap_path)
        collector = CollectorSink()
        monitor = QoEMonitor.from_model(
            model_path,
            PcapSource(pcap_path),
            sinks=collector,
            config=trained.config.replace(demux_flows=False),
            batch_grid=True,
        )
        monitor.run()
        assert collector.estimates == trained.estimate(pcap_path)

    def test_untrained_pipeline_round_trips(self, tmp_path):
        pipeline = QoEPipeline.for_vca("webex", window_s=2)
        path = pipeline.save(tmp_path / "webex.model.json")
        loaded = QoEPipeline.load(path)
        assert not loaded.is_trained
        assert loaded.window_s == 2.0
        assert loaded.profile.name == "webex"

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ValueError, match="not a saved QoE pipeline"):
            QoEPipeline.load(path)

    def test_future_version_rejected(self, trained, tmp_path):
        path = trained.save(tmp_path / "model.json")
        data = json.loads(path.read_text())
        data["version"] = PIPELINE_FORMAT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="version"):
            QoEPipeline.load(path)


class TestEstimatorRoundTrip:
    def test_estimator_save_load_bit_identical(self, trained, teams_call, tmp_path):
        estimator = trained.ml
        path = estimator.save(tmp_path / "estimator.json")
        loaded = IPUDPMLEstimator.load(path)

        from repro.core.windows import window_trace

        windows = window_trace(teams_call.trace, window_s=1)
        X = estimator.feature_matrix(windows)
        for metric in ("frame_rate", "bitrate", "frame_jitter", "resolution"):
            assert np.array_equal(
                estimator.predict_metric(X, metric), loaded.predict_metric(X, metric)
            ), metric
        assert estimator.feature_importances("frame_rate") == loaded.feature_importances("frame_rate")

    def test_base_class_dispatches_on_estimator_name(self, trained, tmp_path):
        path = trained.ml.save(tmp_path / "estimator.json")
        loaded = BaseMLEstimator.load(path)
        assert isinstance(loaded, IPUDPMLEstimator)
        assert loaded.media_classifier.video_size_threshold == trained.ml.media_classifier.video_size_threshold

    def test_wrong_subclass_rejected(self, trained, tmp_path):
        from repro.core.estimators import RTPMLEstimator

        path = trained.ml.save(tmp_path / "estimator.json")
        with pytest.raises(ValueError, match="expected RTPMLEstimator"):
            RTPMLEstimator.load(path)

    def test_resolution_binner_survives(self, trained, tmp_path):
        loaded = IPUDPMLEstimator.load(trained.ml.save(tmp_path / "e.json"))
        assert loaded.resolution_binner.class_names == trained.ml.resolution_binner.class_names
        assert loaded.resolution_binner.label(1000.0) == "high"


class TestForestRoundTrip:
    def test_regressor_round_trip(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=8, max_depth=6, random_state=3).fit(X, y)
        restored = RandomForestRegressor.from_dict(
            json.loads(json.dumps(forest.to_dict()))
        )
        assert np.array_equal(forest.predict(X), restored.predict(X))
        assert np.array_equal(forest.feature_importances_, restored.feature_importances_)
        assert restored.estimators_[0].get_depth() == forest.estimators_[0].get_depth()
        assert restored.estimators_[0].get_n_nodes() == forest.estimators_[0].get_n_nodes()

    def test_classifier_round_trip(self, classification_data):
        X, y = classification_data
        forest = RandomForestClassifier(n_estimators=8, max_depth=6, random_state=3).fit(X, y)
        restored = RandomForestClassifier.from_dict(
            json.loads(json.dumps(forest.to_dict()))
        )
        assert np.array_equal(forest.predict(X), restored.predict(X))
        assert np.array_equal(forest.predict_proba(X), restored.predict_proba(X))
        assert np.array_equal(forest.classes_, restored.classes_)

    def test_kind_mismatch_rejected(self, regression_data):
        X, y = regression_data
        forest = RandomForestRegressor(n_estimators=2, max_depth=3).fit(X, y)
        with pytest.raises(ValueError, match="classifier"):
            RandomForestClassifier.from_dict(forest.to_dict())

    def test_unfitted_forest_refuses_to_serialize(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomForestRegressor().to_dict()
