"""Unit tests for the ML estimators, evaluation protocol and error taxonomy."""

import numpy as np
import pytest

from repro.core.errors import analyze_heuristic_errors
from repro.core.estimators import IPUDPMLEstimator, RTPMLEstimator
from repro.core.evaluation import (
    EvaluationDataset,
    compare_methods,
    cross_validated_predictions,
    feature_importance_report,
    heuristic_predictions,
    resolution_report,
    transfer_mae,
)
from repro.core.heuristic import IPUDPHeuristic
from repro.core.windows import match_windows_to_ground_truth
from repro.webrtc.profiles import get_profile


@pytest.fixture(scope="module")
def teams_dataset(teams_calls_small):
    return EvaluationDataset.from_calls(teams_calls_small)


class TestMLEstimators:
    def test_fit_and_predict_all_metrics(self, teams_calls_small):
        call = teams_calls_small[0]
        matched = match_windows_to_ground_truth(call.trace, call.ground_truth)
        windows = [m.window for m in matched]
        estimator = IPUDPMLEstimator.for_profile(get_profile("teams"), n_estimators=5)
        targets = {
            "frame_rate": np.array([m.ground_truth.frames_received for m in matched]),
            "bitrate": np.array([m.ground_truth.bitrate_kbps for m in matched]),
            "frame_jitter": np.array([m.ground_truth.frame_jitter_ms for m in matched]),
            "resolution": np.array(["low"] * len(matched)),
        }
        estimator.fit_windows(windows, targets)
        rows = estimator.predict_windows(windows)
        assert len(rows) == len(windows)
        assert all(row.frame_rate >= 0 for row in rows)
        assert all(row.resolution == "low" for row in rows)

    def test_unfitted_metric_raises(self, teams_calls_small):
        estimator = IPUDPMLEstimator.for_profile(get_profile("teams"))
        with pytest.raises(RuntimeError):
            estimator.predict_metric(np.zeros((1, 14)), "frame_rate")

    def test_unknown_metric_rejected(self):
        estimator = IPUDPMLEstimator.for_profile(get_profile("teams"))
        with pytest.raises(ValueError):
            estimator.fit(np.zeros((10, 14)), {"mos": np.zeros(10)})

    def test_feature_importances_named_and_normalised(self, teams_dataset):
        estimator = teams_dataset.make_estimator("ipudp_ml", n_estimators=8)
        estimator.fit(teams_dataset.X_ipudp, {"frame_rate": teams_dataset.ground_truth["frame_rate"]})
        importances = estimator.feature_importances("frame_rate")
        assert set(importances) == set(estimator.feature_names)
        assert np.isclose(sum(importances.values()), 1.0)
        top = estimator.top_features("frame_rate", k=5)
        assert len(top) == 5
        assert top[0][1] >= top[-1][1]

    def test_rtp_estimator_uses_rtp_features(self, teams_dataset):
        estimator = teams_dataset.make_estimator("rtp_ml")
        assert isinstance(estimator, RTPMLEstimator)
        assert "# unique RTPvid TS" in estimator.feature_names


class TestEvaluationDataset:
    def test_shapes_consistent(self, teams_dataset):
        n = teams_dataset.n_windows
        assert teams_dataset.X_ipudp.shape == (n, 14)
        assert teams_dataset.X_rtp.shape[0] == n
        assert len(teams_dataset.resolution_labels) == n
        for metric in ("frame_rate", "bitrate", "frame_jitter"):
            assert len(teams_dataset.ground_truth[metric]) == n
            assert len(teams_dataset.heuristic_estimates["ipudp_heuristic"][metric]) == n

    def test_groups_are_call_ids(self, teams_dataset, teams_calls_small):
        assert set(teams_dataset.groups) == {c.config.call_id for c in teams_calls_small}

    def test_mixed_vcas_rejected(self, teams_calls_small, webex_call):
        with pytest.raises(ValueError):
            EvaluationDataset.from_calls(teams_calls_small + [webex_call])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EvaluationDataset.from_calls([])

    def test_features_for_unknown_method(self, teams_dataset):
        with pytest.raises(ValueError):
            teams_dataset.features_for("ipudp_heuristic")


class TestEvaluationProtocol:
    def test_cross_validated_predictions_cover_all_windows(self, teams_dataset):
        predictions = cross_validated_predictions(teams_dataset, "ipudp_ml", "frame_rate", n_estimators=8)
        assert predictions.shape == (teams_dataset.n_windows,)
        assert np.all(predictions >= 0)

    def test_resolution_cross_validation_returns_labels(self, teams_dataset):
        predictions = cross_validated_predictions(teams_dataset, "ipudp_ml", "resolution", n_estimators=8)
        assert set(predictions) <= set(teams_dataset.resolution_labels) | {"low", "medium", "high"}

    def test_heuristic_predictions_lookup(self, teams_dataset):
        values = heuristic_predictions(teams_dataset, "ipudp_heuristic", "frame_rate")
        assert len(values) == teams_dataset.n_windows
        with pytest.raises(ValueError):
            heuristic_predictions(teams_dataset, "ipudp_ml", "frame_rate")
        with pytest.raises(ValueError):
            heuristic_predictions(teams_dataset, "ipudp_heuristic", "resolution")

    def test_compare_methods_returns_all_four(self, teams_dataset):
        results = compare_methods(teams_dataset, "frame_rate", n_estimators=8)
        assert set(results) == {"rtp_ml", "ipudp_ml", "rtp_heuristic", "ipudp_heuristic"}
        for errors in results.values():
            assert errors.summary.n == teams_dataset.n_windows
            assert errors.summary.mae >= 0.0

    def test_compare_methods_rejects_resolution(self, teams_dataset):
        with pytest.raises(ValueError):
            compare_methods(teams_dataset, "resolution")

    def test_ml_beats_or_matches_ipudp_heuristic(self, teams_dataset):
        """The paper's core finding: ML methods are at least as accurate as the
        IP/UDP heuristic for frame rate."""
        results = compare_methods(teams_dataset, "frame_rate", n_estimators=12)
        assert results["ipudp_ml"].summary.mae <= results["ipudp_heuristic"].summary.mae

    def test_resolution_report(self, teams_dataset):
        report = resolution_report(teams_dataset, "ipudp_ml", n_estimators=8)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.confusion.shape == (len(report.labels), len(report.labels))
        assert report.counts.sum() == teams_dataset.n_windows
        with pytest.raises(ValueError):
            resolution_report(teams_dataset, "ipudp_heuristic")

    def test_transfer_mae(self, teams_dataset):
        mae = transfer_mae(teams_dataset, teams_dataset, "ipudp_ml", "frame_rate", n_estimators=8)
        assert mae >= 0.0
        error_rate = transfer_mae(teams_dataset, teams_dataset, "ipudp_ml", "resolution", n_estimators=8)
        assert 0.0 <= error_rate <= 1.0
        with pytest.raises(ValueError):
            transfer_mae(teams_dataset, teams_dataset, "ipudp_heuristic", "frame_rate")

    def test_feature_importance_report(self, teams_dataset):
        top = feature_importance_report(teams_dataset, "ipudp_ml", "bitrate", k=5, n_estimators=8)
        assert len(top) == 5
        names = [name for name, _ in top]
        # Bitrate should be dominated by volume features (# bytes / sizes / packets).
        assert any(name in ("# bytes", "# packets", "Size [mean]", "Size [median]", "Size [max]") for name in names[:3])


class TestErrorTaxonomy:
    def test_error_breakdown_fields(self, lossy_teams_call):
        heuristic = IPUDPHeuristic.for_profile(get_profile("teams"))
        breakdown = analyze_heuristic_errors(
            lossy_teams_call.trace, heuristic, duration_s=lossy_teams_call.duration_s
        )
        assert breakdown.n_windows > 0
        assert breakdown.avg_splits >= 0.0
        assert breakdown.avg_coalesces >= 0.0
        assert breakdown.avg_interleaves >= 0.0
        assert set(breakdown.as_dict()) == {"splits", "interleaves", "coalesces"}

    def test_meet_shows_more_splits_than_webex(self, meet_call, webex_call):
        """Meet's unequal fragmentation should produce more splits per window
        than Webex (Figure 4)."""
        meet_breakdown = analyze_heuristic_errors(
            meet_call.trace, IPUDPHeuristic.for_profile(get_profile("meet")), duration_s=meet_call.duration_s
        )
        webex_breakdown = analyze_heuristic_errors(
            webex_call.trace, IPUDPHeuristic.for_profile(get_profile("webex")), duration_s=webex_call.duration_s
        )
        assert meet_breakdown.avg_splits > webex_breakdown.avg_splits
