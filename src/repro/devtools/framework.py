"""The detlint engine: rule registry, single-pass AST walk, suppressions.

Design constraints, in order:

* **Single pass per file.**  The source is read once, parsed once, and the
  tree is walked once; every rule receives only the node types it declared
  interest in.  Linting the whole of ``src/repro`` has to stay cheap enough
  to run as a tier-1 test on every commit.
* **Rules are scoped by path.**  Most invariants are contracts of specific
  modules (the wire codecs, the forest aggregator, the hot-path packages);
  a rule declares the path fragments it polices and the engine never shows
  it anything else.  ``select=`` overrides scoping -- that is how the
  fixture-corpus tests drive a rule over a temp file, and how a developer
  asks "would OBS001 fire here?".
* **Suppressions are per-line and named.**  ``# detlint: disable=RULE`` on
  the finding's line silences exactly that rule there; naming a rule that
  does not exist is itself an error (:data:`UNKNOWN_SUPPRESSION`), because a
  typo'd suppression silently enforcing nothing is worse than no suppression.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule",
    "PARSE_ERROR",
    "UNKNOWN_SUPPRESSION",
]

#: Framework-level finding codes.  They are not :class:`Rule` instances --
#: they cannot be selected, scoped, or (deliberately) suppressed.
PARSE_ERROR = "LINT001"
UNKNOWN_SUPPRESSION = "LINT002"

_SUPPRESS_RE = re.compile(r"#\s*detlint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Rule:
    """Base class for one named invariant.

    Subclasses set the class attributes and implement :meth:`visit`, which
    the engine calls once for every node whose type appears in
    ``node_types``.  A rule reports through :meth:`LintContext.add`.
    """

    #: Stable identifier, e.g. ``"DET001"`` -- what suppressions name.
    id: str = ""
    #: One-line summary for ``--list-rules`` and the README table.
    summary: str = ""
    #: Why the invariant exists (usually: which PR's contract it guards).
    rationale: str = ""
    #: Path fragments this rule polices.  A fragment ending in ``/`` is a
    #: substring match against the POSIX path; otherwise a suffix match.
    #: Empty means every file.
    scope: tuple[str, ...] = ()
    #: Path fragments exempt from the rule (same matching semantics).
    exclude: tuple[str, ...] = ()
    #: AST node types the engine should dispatch to :meth:`visit`.
    node_types: tuple[type, ...] = ()

    def applies_to(self, path: str) -> bool:
        posix = "/" + Path(path).as_posix().lstrip("/")
        if any(_match(posix, pattern) for pattern in self.exclude):
            return False
        if not self.scope:
            return True
        return any(_match(posix, pattern) for pattern in self.scope)

    def visit(self, node: ast.AST, ctx: "LintContext") -> None:
        raise NotImplementedError

    def begin_module(self, ctx: "LintContext") -> None:
        """Per-file hook before any :meth:`visit` call (reset rule state)."""


def _match(posix: str, pattern: str) -> bool:
    if pattern.endswith("/"):
        return f"/{pattern}" in posix or posix.startswith(pattern)
    return posix.endswith(pattern)


_REGISTRY: dict[str, Rule] = {}


def rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in id order."""
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


class LintContext:
    """Everything a rule may ask about the file being linted.

    Built once per file by the engine; carries the parsed tree, parent
    links, the import-alias table, and the set of module-level names
    (what :mod:`pickle` could re-import on the far side of a spawn).
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []
        self._active_rule: Rule | None = None
        # Parent links: ast.walk order guarantees parents are annotated
        # before their children are visited.
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        # Import-alias table: local name -> fully dotted module/attribute.
        self.aliases: dict[str, str] = {}
        # Names bound at module level: defs, classes, imports, assignments.
        self.module_names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".")[0]
                    self.aliases[local] = name.name if name.asname else name.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c=a.b.
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: not resolvable without package context
                for name in node.names:
                    local = name.asname or name.name
                    self.aliases[local] = f"{node.module}.{name.name}"
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.module_names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for name in node.names:
                    self.module_names.add((name.asname or name.name).split(".")[0])
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.module_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                self.module_names.add(node.target.id)

    # -- reporting -------------------------------------------------------------

    def add(self, node: ast.AST, message: str, rule_id: str | None = None) -> None:
        """Report a finding anchored at ``node``."""
        if rule_id is None:
            assert self._active_rule is not None
            rule_id = self._active_rule.id
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=rule_id,
                message=message,
            )
        )

    # -- expression helpers ----------------------------------------------------

    def dotted(self, node: ast.AST) -> str | None:
        """``a.b.c`` for a Name/Attribute chain, else ``None`` (unresolved)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolve(self, node: ast.AST) -> str | None:
        """Like :meth:`dotted`, with the leading import alias expanded.

        ``np.random.normal`` resolves to ``numpy.random.normal`` under
        ``import numpy as np``; a name that is not an import stays as
        written (so shadowing a module name locally defeats resolution,
        which is the conservative direction for every rule here).
        """
        dotted = self.dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST):
        """Yield ``(parent, child)`` pairs walking from ``node`` to the root."""
        child = node
        parent = self.parents.get(child)
        while parent is not None:
            yield parent, child
            child = parent
            parent = self.parents.get(child)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for parent, _child in self.ancestors(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return parent
        return None


# -- suppressions --------------------------------------------------------------


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled on that line.

    Only real ``COMMENT`` tokens count (the same text inside a string or
    docstring suppresses nothing), and only the documented form is
    recognized: ``# detlint: disable=A`` or ``# detlint: disable=A,B``;
    anything after the rule list (for example a ``-- reason`` clause, which
    review convention requires) is ignored.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions  # the parse-error finding already covers this file
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match:
            lineno = token.start[0]
            names = {name.strip() for name in match.group(1).split(",")}
            suppressions.setdefault(lineno, set()).update(names)
    return suppressions


# -- engine --------------------------------------------------------------------


@dataclass
class LintResult:
    """Findings plus bookkeeping for one engine run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0


def _selected_rules(path: str, select: tuple[str, ...] | None) -> list[Rule]:
    if select is not None:
        return [get_rule(rule_id) for rule_id in select]
    return [rule for rule in all_rules() if rule.applies_to(path)]


def lint_source(
    source: str, path: str = "<string>", select: tuple[str, ...] | None = None
) -> LintResult:
    """Lint one source string; ``select`` forces those rules regardless of scope."""
    result = LintResult(files_checked=1)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule=PARSE_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        )
        return result

    suppressions = parse_suppressions(source)
    known = set(_REGISTRY)
    for lineno in sorted(suppressions):
        for rule_id in sorted(suppressions[lineno] - known):
            result.findings.append(
                Finding(
                    path=path,
                    line=lineno,
                    col=1,
                    rule=UNKNOWN_SUPPRESSION,
                    message=(
                        f"suppression names unknown rule {rule_id!r} "
                        "(a typo here silently enforces nothing)"
                    ),
                )
            )

    rules = _selected_rules(path, select)
    if rules:
        ctx = LintContext(path, source, tree)
        dispatch: dict[type, list[Rule]] = {}
        for rule in rules:
            rule.begin_module(ctx)
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                ctx._active_rule = rule
                rule.visit(node, ctx)
        for finding in ctx.findings:
            if finding.rule in suppressions.get(finding.line, ()):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    result.findings.sort()
    return result


def lint_file(path: str | Path, select: tuple[str, ...] | None = None) -> LintResult:
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, str(path), select=select)


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py") if "__pycache__" not in p.parts))
        else:
            files.append(path)
    return files


def lint_paths(paths, select: tuple[str, ...] | None = None) -> LintResult:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    total = LintResult()
    for path in iter_python_files(paths):
        result = lint_file(path, select=select)
        total.findings.extend(result.findings)
        total.files_checked += result.files_checked
        total.suppressed += result.suppressed
    total.findings.sort()
    return total
