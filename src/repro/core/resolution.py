"""Resolution targets and binning (Section 5.1.5).

Resolution is estimated as a classification problem over frame heights.  For
VCAs with few distinct heights (Meet, Webex) each height is its own class;
for Teams, whose ladder has 11 distinct heights, the paper bins heights into
``low`` (<= 240), ``medium`` ((240, 480]) and ``high`` (> 480).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ResolutionBin", "ResolutionBinner", "TEAMS_RESOLUTION_BINS", "binner_for_vca"]


@dataclass(frozen=True)
class ResolutionBin:
    """One resolution class: a label and its (lower, upper] height bounds."""

    label: str
    lower: float
    upper: float

    def contains(self, height: float) -> bool:
        return self.lower < height <= self.upper


#: The paper's Teams bins: low (<=240), medium ((240, 480]), high (>480).
#: The low bin's lower bound is -1 so that windows with an unknown height
#: (reported as 0 before the first frame decodes) fall into "low".
TEAMS_RESOLUTION_BINS: tuple[ResolutionBin, ...] = (
    ResolutionBin("low", -1.0, 240.0),
    ResolutionBin("medium", 240.0, 480.0),
    ResolutionBin("high", 480.0, float("inf")),
)


class ResolutionBinner:
    """Maps frame heights to classification targets.

    With ``bins=None`` every distinct height is its own class (per-value
    classification, as for Meet and Webex); otherwise heights are mapped to
    the bin labels.
    """

    def __init__(self, bins: tuple[ResolutionBin, ...] | None = None) -> None:
        self.bins = bins

    def label(self, height: float) -> str:
        """Class label for a single frame height."""
        if height < 0:
            raise ValueError("height must be non-negative")
        if self.bins is None:
            return str(int(height))
        for bin_ in self.bins:
            if bin_.contains(height):
                return bin_.label
        raise ValueError(f"height {height} does not fall in any resolution bin")

    def labels(self, heights) -> np.ndarray:
        """Vectorised :meth:`label`."""
        return np.array([self.label(h) for h in np.asarray(heights, dtype=float)])

    @property
    def class_names(self) -> list[str] | None:
        """Ordered class names when binning is active, else ``None``."""
        if self.bins is None:
            return None
        return [b.label for b in self.bins]


def binner_for_vca(vca: str) -> ResolutionBinner:
    """The binner used for each VCA in the paper's evaluation."""
    if vca.lower() == "teams":
        return ResolutionBinner(TEAMS_RESOLUTION_BINS)
    return ResolutionBinner(None)
