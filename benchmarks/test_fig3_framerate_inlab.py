"""Figure 3: frame-rate error distributions and MAE, four methods x three VCAs
(in-lab data).

Paper shape: ML methods (RTP ML, IP/UDP ML) have comparable MAE; heuristics
are worse, with the IP/UDP Heuristic worst overall; Meet's IP/UDP Heuristic
over-estimates (frame splits).
"""

from benchmarks.conftest import N_ESTIMATORS, save_artifact
from repro.analysis.reporting import format_method_comparison
from repro.core.evaluation import compare_methods


def test_fig3_frame_rate_errors_inlab(benchmark, lab_datasets):
    def run():
        return {
            vca: compare_methods(dataset, "frame_rate", n_estimators=N_ESTIMATORS)
            for vca, dataset in lab_datasets.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    sections = [
        format_method_comparison(per_vca, "frame_rate", title=f"Figure 3 - frame rate errors ({vca}, in-lab)")
        for vca, per_vca in results.items()
    ]
    save_artifact("fig3_framerate_inlab", "\n\n".join(sections))

    for vca, per_vca in results.items():
        ipudp_ml = per_vca["ipudp_ml"].summary
        rtp_ml = per_vca["rtp_ml"].summary
        ipudp_heuristic = per_vca["ipudp_heuristic"].summary
        # IP/UDP ML tracks RTP ML and beats the IP/UDP heuristic.
        assert ipudp_ml.mae <= ipudp_heuristic.mae, vca
        assert abs(ipudp_ml.mae - rtp_ml.mae) < 3.5, vca
    # Meet's IP/UDP heuristic over-estimates on average (splits), per the paper.
    assert results["meet"]["ipudp_heuristic"].summary.mean > 0.0
