"""Frozen pipeline configuration shared by every execution layer.

Before this module existed, the windowing/lookback/backfill/eviction/liveness
knobs were ~10 scattered constructor kwargs duplicated across
:class:`~repro.core.pipeline.QoEPipeline`,
:class:`~repro.core.streaming.StreamingQoEPipeline` and its per-flow streams,
with validation happening (or silently not happening) deep inside the
windowing arithmetic.  :class:`PipelineConfig` is the single, immutable,
validated description of how an estimation deployment behaves; both pipelines
and the :class:`~repro.monitor.QoEMonitor` facade are built on top of it, and
it round-trips through the saved-model format so a deployment can be
reconstructed exactly from disk.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, replace

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """Immutable configuration of a QoE estimation pipeline.

    Parameters
    ----------
    window_s:
        Length of the estimation window in seconds (must be positive;
        fractional windows are supported by the drift-free grid).
    start:
        Time origin of the windowing grid (seconds).
    delta_size:
        Frame-assembly size threshold in bytes (Algorithm 1).  ``None`` uses
        the VCA profile's paper-reported value.
    lookback:
        Frame-assembly lookback ``N_max`` (Algorithm 1).  ``None`` uses the
        VCA profile's paper-reported value.
    reorder_depth:
        Per-flow reorder buffer size in packets.  ``None`` defaults to the
        effective assembler lookback.
    max_frame_age_s:
        Liveness bound: open frames whose last packet lags the stream by more
        than this many seconds are force-finalized so windows keep closing
        during a total video stall.  ``None`` (default) preserves exact batch
        equivalence.
    backfill_limit:
        Maximum number of empty windows emitted before a flow's first packet.
        ``0`` (default) starts each flow at its first packet's window;
        ``None`` means unlimited (the batch contract: windows from
        ``start``).
    idle_timeout_s:
        Evict flows with no packets for this many seconds (stream time).
        Used by :class:`~repro.monitor.QoEMonitor` to bound state on
        perpetual monitors; ``None`` disables eviction.
    demux_flows:
        When true, packets are demultiplexed by unidirectional 5-tuple and
        each flow gets an independent estimation stream; when false, all
        packets are treated as one pre-isolated session.
    """

    window_s: float = 1.0
    start: float = 0.0
    delta_size: float | None = None
    lookback: int | None = None
    reorder_depth: int | None = None
    max_frame_age_s: float | None = None
    backfill_limit: int | None = 0
    idle_timeout_s: float | None = None
    demux_flows: bool = True

    def __post_init__(self) -> None:
        if not (self.window_s > 0) or not math.isfinite(self.window_s):
            raise ValueError(f"window_s must be a positive number, got {self.window_s!r}")
        if not math.isfinite(self.start):
            raise ValueError(f"start must be finite, got {self.start!r}")
        if self.delta_size is not None and self.delta_size < 0:
            raise ValueError(f"delta_size must be >= 0, got {self.delta_size!r}")
        if self.lookback is not None and self.lookback < 1:
            raise ValueError(
                f"lookback must be a positive packet count (>= 1), got {self.lookback!r}"
            )
        if self.reorder_depth is not None and self.reorder_depth < 0:
            raise ValueError(f"reorder_depth must be >= 0, got {self.reorder_depth!r}")
        if self.max_frame_age_s is not None and not (self.max_frame_age_s > 0):
            raise ValueError(f"max_frame_age_s must be positive, got {self.max_frame_age_s!r}")
        if self.backfill_limit is not None and self.backfill_limit < 0:
            raise ValueError(f"backfill_limit must be >= 0 (or None), got {self.backfill_limit!r}")
        if self.idle_timeout_s is not None and not (self.idle_timeout_s > 0):
            raise ValueError(f"idle_timeout_s must be positive, got {self.idle_timeout_s!r}")
        if self.idle_timeout_s is not None and self.idle_timeout_s < self.window_s:
            # Evicting faster than windows close could flush a flow mid-window
            # and re-admit it inside the same window, double-emitting it.
            raise ValueError(
                f"idle_timeout_s ({self.idle_timeout_s!r}) must be >= window_s "
                f"({self.window_s!r}): evicting mid-window would emit a window twice"
            )

    # -- derivation ------------------------------------------------------------

    def replace(self, **changes) -> "PipelineConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return replace(self, **changes)

    def resolve_assembly(self, profile) -> tuple[float, int]:
        """Effective ``(delta_size, lookback)``: explicit values, else the
        paper-reported parameters of ``profile``."""
        delta = self.delta_size if self.delta_size is not None else profile.heuristic_size_threshold
        lookback = self.lookback if self.lookback is not None else profile.heuristic_lookback
        return float(delta), int(lookback)

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the saved-model format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        """Inverse of :meth:`to_dict` (unknown keys rejected by construction)."""
        return cls(**data)
