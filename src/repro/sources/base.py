"""Packet sources: the pluggable input side of a monitor.

A *source* is anything that yields :class:`~repro.net.packet.Packet` objects
in (approximate) arrival order -- a materialized trace, a pcap file on disk,
an arbitrary generator wired to a capture interface, or a timestamp-merge of
several capture points (:class:`~repro.sources.merged.MergedSource`).  The
protocol is deliberately tiny (``__iter__``) so that anything iterable can be
a source; the concrete classes here add ergonomics (repeatable iteration,
lazy file reading, coercion) on top.

Sources never interpret packets: demultiplexing, reordering tolerance and
windowing all live in the engine
(:class:`~repro.core.streaming.StreamingQoEPipeline`), which means a source
only has to deliver packets roughly in order -- displacement within the
engine's ``reorder_depth`` is absorbed downstream.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.net.block import PacketBlock, blocks_from_packets
from repro.net.packet import Packet
from repro.net.trace import PacketTrace

__all__ = [
    "PacketSource",
    "IteratorSource",
    "TraceSource",
    "PcapSource",
    "as_source",
    "iter_blocks",
]

#: Default packets per block on the columnar path: large enough to amortize
#: per-block overhead, small enough to keep estimate latency and per-chunk
#: memory bounded.
DEFAULT_BLOCK_SIZE = 1024


@runtime_checkable
class PacketSource(Protocol):
    """Anything that can be iterated to produce packets in arrival order."""

    def __iter__(self) -> Iterator[Packet]: ...  # pragma: no cover - protocol


def iter_blocks(source: "PacketSource", chunk_size: int = DEFAULT_BLOCK_SIZE) -> Iterator[PacketBlock]:
    """Iterate ``source`` as columnar :class:`~repro.net.block.PacketBlock`\\ s.

    The generic adapter over the ``PacketSource`` protocol: sources that
    implement a native ``blocks(chunk_size)`` fast path (``TraceSource``
    slices its trace's cached columns, ``PcapSource`` decodes records
    straight into arrays) are used as such; anything else is batched
    packet-by-packet via :func:`~repro.net.block.blocks_from_packets`.
    """
    native = getattr(source, "blocks", None)
    if callable(native):
        yield from native(chunk_size)
    else:
        yield from blocks_from_packets(source, chunk_size)


class IteratorSource:
    """Wrap an arbitrary packet iterable (e.g. a live-capture generator).

    The wrapped iterable is consumed as-is; if it is a one-shot generator the
    source is one-shot too (exactly what a live capture is).
    """

    def __init__(self, packets: Iterable[Packet]) -> None:
        self._packets = packets

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def blocks(self, chunk_size: int = DEFAULT_BLOCK_SIZE) -> Iterator[PacketBlock]:
        """Batch the wrapped iterable into columnar blocks (generic adapter)."""
        return blocks_from_packets(self, chunk_size)


class TraceSource:
    """A materialized :class:`~repro.net.trace.PacketTrace` as a source.

    Repeatable (the trace is held in memory) and sized.
    """

    def __init__(self, trace: PacketTrace) -> None:
        self.trace = trace

    def __len__(self) -> int:
        return len(self.trace)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.trace)

    def blocks(self, chunk_size: int = DEFAULT_BLOCK_SIZE) -> Iterator[PacketBlock]:
        """Native fast path: O(1) array slices of the trace's cached columns."""
        block = self.trace.block
        for lo in range(0, len(block), chunk_size):
            yield block[lo : lo + chunk_size]


class PcapSource:
    """Stream packets lazily from an on-disk pcap capture.

    Unlike ``PacketTrace.from_pcap`` this never materializes the capture: the
    file is read record by record, so a multi-gigabyte operator capture can
    be monitored in O(window) memory end to end.  Repeatable (each iteration
    reopens the file).

    Parameters
    ----------
    path:
        The capture file (classic libpcap format, Ethernet/IPv4/UDP).
    parse_rtp:
        Parse RTP headers when the payload looks like RTP.  The IP/UDP
        estimators never read them; disable for a few percent less parsing
        work on captures known to be header-stripped.
    strict:
        True (the default, matching every other pcap entry point) raises on
        a capture whose final record is cut short.  Opt into ``strict=False``
        for captures that may legitimately end mid-record -- a monitor that
        crashed mid-write, a live file still being appended -- to yield the
        complete records and stop.  Never silently the default: a truncated
        input scored as a shorter healthy capture would under-report
        degradation with zero signal.
    """

    def __init__(self, path: str | Path, parse_rtp: bool = True, strict: bool = True) -> None:
        from repro.net.pcap import PcapReader

        self.path = Path(path)
        self._reader = PcapReader(self.path, parse_rtp=parse_rtp, strict=strict)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._reader)

    def blocks(self, chunk_size: int = DEFAULT_BLOCK_SIZE) -> Iterator[PacketBlock]:
        """Native fast path: records decode straight into block columns.

        No :class:`~repro.net.packet.Packet` objects are constructed; see
        :meth:`PcapReader.read_blocks <repro.net.pcap.PcapReader.read_blocks>`.
        """
        return self._reader.read_blocks(chunk_size)


def as_source(packets: "PacketSource | PacketTrace | str | Path | Iterable[Packet]") -> PacketSource:
    """Coerce traces, pcap paths and bare iterables into a source.

    Anything already satisfying the :class:`PacketSource` protocol --
    including :class:`~repro.sources.merged.MergedSource`, user-defined
    sources, and bare iterables/generators -- passes through unchanged, so
    facade APIs accept any packet-shaped input without the caller wrapping
    it by hand and without losing the original object's API.
    """
    if isinstance(packets, (str, Path)):
        return PcapSource(packets)
    if isinstance(packets, PacketTrace):
        return TraceSource(packets)
    if isinstance(packets, PacketSource):
        return packets
    raise TypeError(f"cannot interpret {type(packets).__name__} as a packet source")
