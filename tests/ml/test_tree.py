"""Unit tests for the CART decision trees."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeNode


class TestDecisionTreeRegressor:
    def test_fits_constant_target_with_single_leaf(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, 3.5)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.get_n_nodes() == 1
        assert np.allclose(tree.predict(X), 3.5)

    def test_learns_a_step_function_exactly(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = np.where(X[:, 0] < 0.5, 1.0, 5.0)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_predictions_within_target_range(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=8).fit(X, y)
        predictions = tree.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    def test_deeper_tree_fits_training_data_better(self, regression_data):
        X, y = regression_data
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=10).fit(X, y)
        err_shallow = np.mean((shallow.predict(X) - y) ** 2)
        err_deep = np.mean((deep.predict(X) - y) ** 2)
        assert err_deep < err_shallow

    def test_max_depth_is_respected(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.get_depth() <= 3

    def test_min_samples_leaf_is_respected(self):
        X = np.arange(50, dtype=float).reshape(-1, 1)
        y = X[:, 0] ** 2
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)

        def leaves(node):
            if node.is_leaf:
                return [node]
            return leaves(node.left) + leaves(node.right)

        assert all(leaf.n_samples >= 10 for leaf in leaves(tree.root_))

    def test_feature_importances_sum_to_one(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert tree.feature_importances_ is not None
        assert tree.feature_importances_.shape == (X.shape[1],)
        assert np.isclose(tree.feature_importances_.sum(), 1.0)

    def test_informative_feature_ranked_first(self):
        generator = np.random.default_rng(3)
        X = generator.normal(size=(300, 4))
        y = 10.0 * X[:, 2] + 0.01 * generator.normal(size=300)
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert int(np.argmax(tree.feature_importances_)) == 2

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 3)))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_one_dimensional_x_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))

    def test_single_row_prediction_shape(self, regression_data):
        X, y = regression_data
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        single = tree.predict(X[0])
        assert single.shape == (1,)


class TestDecisionTreeClassifier:
    def test_learns_separable_classes(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=8).fit(X, y)
        accuracy = np.mean(tree.predict(X) == y)
        assert accuracy > 0.95

    def test_predicted_labels_come_from_training_labels(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert set(tree.predict(X)) <= set(y)

    def test_probabilities_sum_to_one(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        proba = tree.predict_proba(X[:25])
        assert proba.shape == (25, len(np.unique(y)))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pure_node_stops_splitting(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array(["a"] * 10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.get_n_nodes() == 1

    def test_integer_labels_supported(self):
        X = np.linspace(0, 1, 60).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert np.array_equal(tree.predict(X), y)

    def test_feature_importances_nonnegative(self, classification_data):
        X, y = classification_data
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert np.all(tree.feature_importances_ >= 0)
        assert np.isclose(tree.feature_importances_.sum(), 1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))


class TestTreeNode:
    def test_leaf_properties(self):
        node = TreeNode(value=1.0, n_samples=5)
        assert node.is_leaf
        assert node.node_count() == 1
        assert node.max_depth() == 0

    def test_internal_node_counts(self):
        root = TreeNode(feature=0, threshold=0.5, left=TreeNode(value=1.0), right=TreeNode(value=2.0))
        assert not root.is_leaf
        assert root.node_count() == 3
        assert root.max_depth() == 1
