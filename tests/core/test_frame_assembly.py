"""Unit tests for Algorithm 1 (frame assembly) and the frame-size analyses."""

import random

import numpy as np
import pytest

from repro.core.frame_assembly import (
    FrameAssembler,
    assemble_frames,
    inter_frame_size_differences,
    intra_frame_size_differences,
)
from repro.net.packet import RTP_FIXED_HEADER_LEN, IPv4Header, MediaType, Packet, UDPHeader


def make_packet(timestamp, size, frame_id=None):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="1.1.1.1", dst="2.2.2.2"),
        udp=UDPHeader(src_port=1, dst_port=2),
        payload_size=size,
        media_type=MediaType.VIDEO,
        frame_id=frame_id,
    )


class TestFrameAssembler:
    def test_equal_sized_packets_form_one_frame(self):
        packets = [make_packet(0.001 * i, 1000) for i in range(5)]
        frames = assemble_frames(packets, delta_size=2, lookback=2)
        assert len(frames) == 1
        assert frames[0].n_packets == 5

    def test_size_change_starts_new_frame(self):
        packets = [make_packet(0.001, 1000), make_packet(0.002, 1000), make_packet(0.034, 950), make_packet(0.035, 950)]
        frames = assemble_frames(packets, delta_size=2, lookback=2)
        assert len(frames) == 2
        assert [f.n_packets for f in frames] == [2, 2]

    def test_every_packet_assigned_exactly_once(self):
        rng = np.random.default_rng(0)
        packets = [make_packet(0.001 * i, int(rng.integers(500, 1200))) for i in range(200)]
        frames = assemble_frames(packets, delta_size=2, lookback=3)
        assert sum(f.n_packets for f in frames) == 200

    def test_within_threshold_difference_groups_together(self):
        packets = [make_packet(0.001, 1000), make_packet(0.002, 1002), make_packet(0.003, 998)]
        # With lookback 2 the third packet (998) is 4 bytes away from the most
        # recent packet (1002) but matches the older 1000-byte packet, so all
        # three are grouped into a single frame.
        assert len(assemble_frames(packets, delta_size=2, lookback=2)) == 1
        # With lookback 1 it can only compare against 1002 and opens a new frame.
        assert len(assemble_frames(packets, delta_size=2, lookback=1)) == 2

    def test_lookback_recovers_reordered_packet(self):
        # Frame A: 1000,1000 ; frame B: 900 ; then a late packet of frame A (1000).
        packets = [
            make_packet(0.001, 1000),
            make_packet(0.002, 1000),
            make_packet(0.034, 900),
            make_packet(0.035, 1000),
        ]
        with_lookback = assemble_frames(packets, delta_size=2, lookback=2)
        without_lookback = assemble_frames(packets, delta_size=2, lookback=1)
        # With lookback 2 the late packet rejoins frame A (2 frames total);
        # with lookback 1 it opens a third frame.
        assert len(with_lookback) == 2
        assert len(without_lookback) == 3

    def test_frames_ordered_and_attributes(self):
        packets = [make_packet(0.01, 1000, frame_id=1), make_packet(0.05, 900, frame_id=2)]
        frames = assemble_frames(packets, delta_size=2, lookback=1)
        assert frames[0].start_time == 0.01
        assert frames[0].end_time == 0.01
        assert frames[0].raw_size_bytes == 1000
        assert frames[0].size_bytes == 1000 - 12
        assert frames[0].true_frame_ids == {1}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FrameAssembler(delta_size=-1.0)
        with pytest.raises(ValueError):
            FrameAssembler(lookback=0)

    def test_empty_input(self):
        assert assemble_frames([]) == []

    def test_assembly_on_simulated_call_is_close_to_true_frame_count(self, webex_call):
        """Under clean conditions the heuristic frame count should be within
        ~20% of the true number of frames (Webex fragments most cleanly)."""
        from repro.core.heuristic import IPUDPHeuristic
        from repro.webrtc.profiles import get_profile

        heuristic = IPUDPHeuristic.for_profile(get_profile("webex"))
        frames = heuristic.assemble(webex_call.trace)
        true_frames = {p.frame_id for p in webex_call.trace if p.frame_id is not None}
        assert abs(len(frames) - len(true_frames)) / len(true_frames) < 0.25


def _frame_key(frame):
    return (
        frame.frame_index,
        frame.n_packets,
        frame.size_bytes,
        frame.raw_size_bytes,
        frame.start_time,
        frame.end_time,
    )


def _state_key(assembler):
    return (
        [(ts, size, frame.frame_index) for ts, size, frame in assembler._recent],
        {index: _frame_key(frame) for index, frame in assembler._open.items()},
        dict(assembler._live),
        assembler._next_index,
    )


def _push_scalar(assembler, packets):
    finalized = []
    for packet in packets:
        finalized.extend(assembler.push(packet))
    return finalized


def _push_vectorized(assembler, packets):
    """Push one timestamp-sorted chunk through the array entry point."""
    count = len(packets)
    sizes = np.fromiter((p.payload_size for p in packets), np.int64, count)
    timestamps = np.fromiter((p.timestamp for p in packets), np.float64, count)
    media = np.maximum(sizes - RTP_FIXED_HEADER_LEN, 0)
    run = assembler.push_rows(sizes, media, timestamps)
    assert run is not None
    rows = [row for row, _ in run.finalized]
    assert rows == sorted(rows)  # finalization order == row order
    return [frame for _, frame in run.finalized]


def _random_trace(rng, n, tie_heavy):
    """Random sorted trace; ``tie_heavy`` draws from a small size alphabet so
    duplicate sizes inside the lookback and exact ``abs diff == delta_size``
    ties are common."""
    alphabet = (1000, 1002, 998, 950, 948, 700)
    packets = []
    ts = 0.0
    for _ in range(n):
        ts += rng.random() * 0.01
        if tie_heavy:
            size = rng.choice(alphabet)
        else:
            size = rng.randrange(100, 1300)
        packets.append(make_packet(ts, size))
    return packets


class TestPushRowsEquivalence:
    """Property fuzz: vectorized ``push_rows`` == scalar ``push``, frame for
    frame, finalization order and post-run state included, across arbitrary
    run splits."""

    @pytest.mark.parametrize("lookback", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces_random_splits(self, lookback, seed):
        rng = random.Random(seed * 31 + lookback)
        packets = _random_trace(rng, rng.randint(1, 120), tie_heavy=rng.random() < 0.5)
        cuts = sorted(rng.sample(range(len(packets) + 1), k=min(4, len(packets))))
        scalar = FrameAssembler(delta_size=2, lookback=lookback)
        vector = FrameAssembler(delta_size=2, lookback=lookback)
        expected = _push_scalar(scalar, packets)
        got = []
        for lo, hi in zip([0] + cuts, cuts + [len(packets)]):
            if hi > lo:
                got.extend(_push_vectorized(vector, packets[lo:hi]))
        assert [_frame_key(f) for f in got] == [_frame_key(f) for f in expected]
        assert _state_key(vector) == _state_key(scalar)
        assert [_frame_key(f) for f in vector.flush()] == [
            _frame_key(f) for f in scalar.flush()
        ]

    @pytest.mark.parametrize("lookback", [1, 2, 3])
    def test_every_cut_point(self, lookback):
        packets = _random_trace(random.Random(7), 14, tie_heavy=True)
        scalar = FrameAssembler(delta_size=2, lookback=lookback)
        expected = _push_scalar(scalar, packets)
        expected_state = _state_key(scalar)
        for cut in range(len(packets) + 1):
            vector = FrameAssembler(delta_size=2, lookback=lookback)
            got = []
            for chunk in (packets[:cut], packets[cut:]):
                if chunk:
                    got.extend(_push_vectorized(vector, chunk))
            assert [_frame_key(f) for f in got] == [_frame_key(f) for f in expected], cut
            assert _state_key(vector) == expected_state, cut

    def test_exact_delta_tie_joins_most_recent(self):
        # 1000 then 1002: abs diff == delta_size joins; the third packet
        # (1000) is within delta of *both* recent entries and must join via
        # the most recent (1002), not open a new frame or pick the older one.
        packets = [make_packet(0.001, 1000), make_packet(0.002, 1002), make_packet(0.003, 1000)]
        scalar = FrameAssembler(delta_size=2, lookback=2)
        vector = FrameAssembler(delta_size=2, lookback=2)
        _push_scalar(scalar, packets)
        _push_vectorized(vector, packets)
        assert _state_key(vector) == _state_key(scalar)
        assert len(vector._open) == 1

    def test_duplicate_sizes_most_recent_wins(self):
        # Two open frames both containing 1000-byte packets inside the
        # lookback: the newcomer joins the most recently touched frame.
        sizes = [1000, 500, 1000, 1000]
        packets = [make_packet(0.001 * (i + 1), s) for i, s in enumerate(sizes)]
        for lookback in (2, 3):
            scalar = FrameAssembler(delta_size=2, lookback=lookback)
            vector = FrameAssembler(delta_size=2, lookback=lookback)
            expected = _push_scalar(scalar, packets)
            got = _push_vectorized(vector, packets)
            assert [_frame_key(f) for f in got] == [_frame_key(f) for f in expected]
            assert _state_key(vector) == _state_key(scalar)

    def test_single_packet_frames(self):
        # Strictly spreading sizes: every packet opens (and soon finalizes)
        # its own frame.
        packets = [make_packet(0.001 * (i + 1), 100 + 10 * i) for i in range(20)]
        scalar = FrameAssembler(delta_size=2, lookback=3)
        vector = FrameAssembler(delta_size=2, lookback=3)
        expected = _push_scalar(scalar, packets)
        got = _push_vectorized(vector, packets)
        assert len(expected) == 17  # 20 frames, the last `lookback` still open
        assert [_frame_key(f) for f in got] == [_frame_key(f) for f in expected]
        assert _state_key(vector) == _state_key(scalar)

    @pytest.mark.parametrize("seed", range(4))
    def test_finalize_stale_between_runs(self, seed):
        """``finalize_stale`` sweeps interleave with vectorized runs exactly
        as they do with scalar pushes at the same trace positions."""
        rng = random.Random(100 + seed)
        packets = _random_trace(rng, 80, tie_heavy=True)
        # Inject stalls so the sweeps actually evict something.
        stall_at = sorted(rng.sample(range(1, 79), k=3))
        shift = 0.0
        shifted = []
        for i, packet in enumerate(packets):
            if i in stall_at:
                shift += 5.0
            shifted.append(make_packet(packet.timestamp + shift, packet.payload_size))
        cuts = sorted(rng.sample(range(1, 80), k=5))
        scalar = FrameAssembler(delta_size=2, lookback=2)
        vector = FrameAssembler(delta_size=2, lookback=2)
        expected, got = [], []
        for lo, hi in zip([0] + cuts, cuts + [80]):
            chunk = shifted[lo:hi]
            if not chunk:
                continue
            expected.extend(_push_scalar(scalar, chunk))
            got.extend(_push_vectorized(vector, chunk))
            older_than = chunk[-1].timestamp - 1.0
            expected.extend(scalar.finalize_stale(older_than))
            got.extend(vector.finalize_stale(older_than))
            assert _state_key(vector) == _state_key(scalar)
        assert [_frame_key(f) for f in got] == [_frame_key(f) for f in expected]

    def test_liveness_bailout_commits_nothing(self):
        """With ``max_gap_s`` set, a run a concurrent stale sweep could cut
        into returns ``None`` and leaves the assembler untouched."""
        assembler = FrameAssembler(delta_size=2, lookback=2)
        _push_scalar(assembler, [make_packet(0.001, 1000), make_packet(0.002, 1000)])
        before = _state_key(assembler)
        sizes = np.array([700, 700], dtype=np.int64)
        media = np.maximum(sizes - RTP_FIXED_HEADER_LEN, 0)
        # 9-second gap before the run: the carried 1000-byte frame would sit
        # unfinalized past the 2 s bound while these rows push.
        timestamps = np.array([9.0, 9.001], dtype=np.float64)
        assert assembler.push_rows(sizes, media, timestamps, max_gap_s=2.0) is None
        assert _state_key(assembler) == before
        # Without the bound the same run commits: the carried frame's entries
        # pop out of the lookback, finalizing it.
        run = assembler.push_rows(sizes, media, timestamps)
        assert run is not None
        assert [frame.frame_index for _, frame in run.finalized] == [0]
        assert len(assembler._open) == 1

    def test_empty_run_is_a_no_op(self):
        assembler = FrameAssembler(delta_size=2, lookback=2)
        _push_scalar(assembler, [make_packet(0.001, 1000)])
        before = _state_key(assembler)
        empty_i = np.empty(0, dtype=np.int64)
        run = assembler.push_rows(empty_i, empty_i, np.empty(0, dtype=np.float64))
        assert run is not None and run.finalized == [] and run.frames == []
        assert _state_key(assembler) == before

    def test_batch_assemble_output_order_pinned(self):
        """The batch adapter rides the vectorized path but keeps creation
        order and per-frame packet lists (lazy view)."""
        rng = random.Random(5)
        packets = _random_trace(rng, 60, tie_heavy=True)
        frames = FrameAssembler(delta_size=2, lookback=2).assemble(packets)
        assert [f.frame_index for f in frames] == sorted(f.frame_index for f in frames)
        assert sum(f.n_packets for f in frames) == 60
        for frame in frames:
            assert len(frame.packets) == frame.n_packets
            assert sum(p.payload_size for p in frame.packets) == frame.raw_size_bytes
            assert min(p.timestamp for p in frame.packets) == frame.start_time

    def test_aggregate_only_frames_refuse_packet_access(self):
        assembler = FrameAssembler(delta_size=2, lookback=1)
        packets = [make_packet(0.001, 1000), make_packet(0.002, 500), make_packet(0.003, 100)]
        finalized = _push_vectorized(assembler, packets)
        assert finalized
        with pytest.raises(ValueError, match="aggregate columns only"):
            finalized[0].packets


class TestFrameSizeDifferences:
    def test_intra_frame_differences_small_for_clean_call(self, teams_call):
        diffs = intra_frame_size_differences(teams_call.trace)
        assert len(diffs) > 100
        # The vast majority of frames fragment into near-equal packets (Fig. 2).
        assert np.mean(diffs <= 2.0) > 0.9

    def test_inter_frame_differences_usually_larger(self, teams_call):
        inter = inter_frame_size_differences(teams_call.trace)
        assert len(inter) > 100
        assert np.mean(inter >= 2.0) > 0.9

    def test_empty_trace(self):
        from repro.net.trace import PacketTrace

        assert len(intra_frame_size_differences(PacketTrace([]))) == 0
        assert len(inter_frame_size_differences(PacketTrace([]))) == 0
