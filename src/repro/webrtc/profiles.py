"""Per-VCA behaviour profiles.

The paper evaluates three WebRTC VCAs -- Google Meet, Microsoft Teams and
Cisco Webex -- and observes systematic differences between them: codecs (Meet
uses VP8/VP9, Teams and Webex use H.264), resolution ladders (3 heights for
Meet in the lab, 11 for Teams, 2 for Webex), typical bitrates (median 1700
kbps for Teams vs 500 kbps for Webex in the lab), payload-type numbering,
and -- crucially for the IP/UDP Heuristic -- how cleanly frames fragment into
equal-sized packets (Meet's VP8/VP9 produces a noticeable fraction of frames
with intra-frame packet-size differences above 2 bytes; Section 5.2.1).

A :class:`VCAProfile` gathers those knobs so the rest of the simulator is
VCA-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtp.payload_types import (
    LAB_PAYLOAD_TYPES,
    REAL_WORLD_PAYLOAD_TYPES,
    PayloadTypeMap,
)

__all__ = ["ResolutionRung", "VCAProfile", "VCA_PROFILES", "get_profile", "VCA_NAMES"]


@dataclass(frozen=True)
class ResolutionRung:
    """One rung of a VCA's resolution ladder.

    The encoder sends at ``height`` whenever the target bitrate is at least
    ``min_bitrate_kbps`` (and below the next rung's threshold).
    """

    height: int
    min_bitrate_kbps: float
    max_fps: float = 30.0


@dataclass(frozen=True)
class VCAProfile:
    """Static description of one VCA's media pipeline."""

    name: str
    codec: str
    payload_types: PayloadTypeMap
    payload_types_real_world: PayloadTypeMap
    ladder: tuple[ResolutionRung, ...]
    ladder_real_world: tuple[ResolutionRung, ...]
    max_bitrate_kbps: float
    min_bitrate_kbps: float
    start_bitrate_kbps: float
    max_fps: float = 30.0
    #: Maximum RTP payload bytes per video packet (media + RTP header).
    mtu_payload: int = 1130
    #: Probability that a frame fragments into unequal-sized packets
    #: (intra-frame size difference above the heuristic's 2-byte threshold).
    unequal_fragmentation_prob: float = 0.01
    #: Same probability in the real-world deployment (codec/config drift).
    unequal_fragmentation_prob_real_world: float = 0.01
    #: Whether the VCA runs a separate retransmission (RTX) stream.
    uses_rtx: bool = True
    #: Size of RTX keep-alive packets (bytes of UDP payload).
    keepalive_size: int = 304
    #: Audio packet size range in bytes (UDP payload), per Figure 1.
    audio_size_range: tuple[int, int] = (89, 385)
    #: Audio packets per second (OPUS at 20 ms framing).
    audio_packet_rate: float = 50.0
    #: Paper-reported optimal heuristic parameters (Section 4.3).
    heuristic_lookback: int = 2
    heuristic_size_threshold: float = 2.0
    #: Media classification threshold V_min in bytes (Section 3.1).
    video_size_threshold: int = 450
    #: Burstiness of the encoder output (lognormal sigma of frame sizes).
    frame_size_sigma: float = 0.22
    #: Keyframe interval in seconds and size multiplier.
    keyframe_interval_s: float = 10.0
    keyframe_multiplier: float = 3.0
    extra: dict = field(default_factory=dict, compare=False)

    def ladder_for(self, environment: str) -> tuple[ResolutionRung, ...]:
        """Resolution ladder for ``environment`` ("lab" or "real_world")."""
        if environment == "lab":
            return self.ladder
        if environment == "real_world":
            return self.ladder_real_world
        raise ValueError(f"unknown environment: {environment!r}")

    def payload_types_for(self, environment: str) -> PayloadTypeMap:
        """Payload-type map for ``environment`` ("lab" or "real_world")."""
        if environment == "lab":
            return self.payload_types
        if environment == "real_world":
            return self.payload_types_real_world
        raise ValueError(f"unknown environment: {environment!r}")

    def fragmentation_prob_for(self, environment: str) -> float:
        if environment == "lab":
            return self.unequal_fragmentation_prob
        if environment == "real_world":
            return self.unequal_fragmentation_prob_real_world
        raise ValueError(f"unknown environment: {environment!r}")

    def rung_for_bitrate(self, bitrate_kbps: float, environment: str = "lab") -> ResolutionRung:
        """The highest ladder rung whose threshold the bitrate clears."""
        ladder = sorted(self.ladder_for(environment), key=lambda r: r.min_bitrate_kbps)
        selected = ladder[0]
        for rung in ladder:
            if bitrate_kbps >= rung.min_bitrate_kbps:
                selected = rung
        return selected

    @property
    def heights(self) -> tuple[int, ...]:
        return tuple(sorted({rung.height for rung in self.ladder}))


def _meet_profile() -> VCAProfile:
    # Lab data shows only 180/270/360 for Meet; real-world adds 540 and 720
    # thanks to higher access speeds (Section 5.2.4).
    lab_ladder = (
        ResolutionRung(height=180, min_bitrate_kbps=0.0, max_fps=24.0),
        ResolutionRung(height=270, min_bitrate_kbps=350.0, max_fps=30.0),
        ResolutionRung(height=360, min_bitrate_kbps=700.0, max_fps=30.0),
    )
    real_ladder = lab_ladder + (
        ResolutionRung(height=540, min_bitrate_kbps=1400.0, max_fps=30.0),
        ResolutionRung(height=720, min_bitrate_kbps=2200.0, max_fps=30.0),
    )
    return VCAProfile(
        name="meet",
        codec="vp9",
        payload_types=LAB_PAYLOAD_TYPES["meet"],
        payload_types_real_world=REAL_WORLD_PAYLOAD_TYPES["meet"],
        ladder=lab_ladder,
        ladder_real_world=real_ladder,
        max_bitrate_kbps=2600.0,
        min_bitrate_kbps=120.0,
        start_bitrate_kbps=800.0,
        max_fps=30.0,
        # VP8/VP9 packetisation splits a noticeable fraction of frames into
        # unequal packets: 4.26% of frames in the lab, 14.48% in the wild
        # (Section 5.2.1).
        unequal_fragmentation_prob=0.0426,
        unequal_fragmentation_prob_real_world=0.1448,
        heuristic_lookback=3,
        frame_size_sigma=0.26,
    )


def _teams_profile() -> VCAProfile:
    heights = (90, 120, 180, 240, 270, 360, 404, 480, 540, 640, 720)
    thresholds = (0.0, 120.0, 240.0, 400.0, 550.0, 750.0, 1000.0, 1300.0, 1700.0, 2100.0, 2600.0)
    ladder = tuple(
        ResolutionRung(height=h, min_bitrate_kbps=t, max_fps=30.0)
        for h, t in zip(heights, thresholds)
    )
    return VCAProfile(
        name="teams",
        codec="h264",
        payload_types=LAB_PAYLOAD_TYPES["teams"],
        payload_types_real_world=REAL_WORLD_PAYLOAD_TYPES["teams"],
        ladder=ladder,
        ladder_real_world=ladder,
        max_bitrate_kbps=3200.0,
        min_bitrate_kbps=150.0,
        start_bitrate_kbps=1500.0,
        max_fps=30.0,
        # H.264 packetisation produces near-equal packets (98.56% of frames
        # within 2 bytes, Appendix D.5).
        unequal_fragmentation_prob=0.0144,
        unequal_fragmentation_prob_real_world=0.02,
        heuristic_lookback=2,
        frame_size_sigma=0.2,
    )


def _webex_profile() -> VCAProfile:
    ladder = (
        ResolutionRung(height=180, min_bitrate_kbps=0.0, max_fps=25.0),
        ResolutionRung(height=360, min_bitrate_kbps=450.0, max_fps=30.0),
    )
    return VCAProfile(
        name="webex",
        codec="h264",
        payload_types=LAB_PAYLOAD_TYPES["webex"],
        payload_types_real_world=REAL_WORLD_PAYLOAD_TYPES["webex"],
        ladder=ladder,
        ladder_real_world=ladder,
        max_bitrate_kbps=1300.0,
        min_bitrate_kbps=100.0,
        start_bitrate_kbps=500.0,
        max_fps=30.0,
        # 99.70% of Webex frames fragment into equal packets, and most frames
        # are at most 3 packets (Appendix D.5), so small frames dominate.
        unequal_fragmentation_prob=0.003,
        unequal_fragmentation_prob_real_world=0.005,
        heuristic_lookback=1,
        frame_size_sigma=0.18,
    )


#: The three evaluated VCAs.
VCA_PROFILES: dict[str, VCAProfile] = {
    "meet": _meet_profile(),
    "teams": _teams_profile(),
    "webex": _webex_profile(),
}

VCA_NAMES: tuple[str, ...] = tuple(VCA_PROFILES)


def get_profile(name: str) -> VCAProfile:
    """Look up a VCA profile by (case-insensitive) name."""
    key = name.lower()
    if key not in VCA_PROFILES:
        raise KeyError(f"unknown VCA {name!r}; known VCAs: {sorted(VCA_PROFILES)}")
    return VCA_PROFILES[key]
