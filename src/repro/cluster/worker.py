"""Shard worker processes: one streaming engine per shard.

A worker is deliberately *not* constructed from a live ``QoEPipeline``
object: it receives the JSON payload of :meth:`QoEPipeline.to_payload
<repro.core.pipeline.QoEPipeline.to_payload>` -- the exact bytes
``QoEPipeline.save`` writes to disk -- plus a
:class:`~repro.core.config.PipelineConfig` dict, and rebuilds the pipeline
on its side of the process boundary.  That keeps workers **spawn-safe**
(everything crossing the boundary is plain JSON-able data and packets, no
trees/forests/closures to pickle) and exercises the persistence format as
the cluster's wire format: a worker is indistinguishable from a deployment
site that loaded the model from disk, and reloaded forests predict
bit-identically by the PR 2 persistence contract.

Protocol (control messages are plain tuples over ``multiprocessing``
queues; with the shared-memory transport the block *payloads* ride a
:class:`~repro.cluster.shm.BlockRing` instead and the queue carries only
slot tokens)::

    parent -> worker:  ("block", PacketBlock)          one routed tick (columnar)
                       ("shm",)                        one routed tick (pop the ring)
                       ("chunk", [Packet, ...])        one routed tick (legacy)
                       ("stop",)                       end of source
    worker -> parent:  ("progress", shard_id, [StreamEstimate], low_watermark)
                       ("done", shard_id, [StreamEstimate], stats dict)
                       ("error", shard_id, traceback string)

The columnar ``("block", ...)`` transport is the default: a
:class:`~repro.net.block.PacketBlock` pickles as a handful of NumPy array
buffers plus small side tables, instead of one Python object graph per
packet, and the worker feeds it to :meth:`StreamingQoEPipeline.push_block
<repro.core.streaming.StreamingQoEPipeline.push_block>` without ever
materializing ``Packet`` objects in trained mode.  The ``("shm",)`` token
goes one further: the parent flat-encodes the block straight into a
shared-memory ring slot and the worker decodes zero-copy array views over
that slot, consumes them (``push_block`` copies what it keeps), and only
then releases the slot for reuse.  Every transport produces bit-identical
estimates in identical order (pinned by ``tests/cluster/``).

The worker's output protocol is linear by construction:
``progress* -> done | error``.  :class:`_WorkerChannel` enforces it --
a worker that tried to emit ``progress`` after ``done`` would pin the
fan-in's watermark assumptions (a finished shard's watermark is ``+inf``),
so the channel raises instead of letting the message out.

Inside the worker each chunk is one inference tick: windows that close in
it -- across all of the shard's flows -- are buffered and pushed through the
per-metric forests in a single vectorized call
(:meth:`StreamingQoEPipeline.push_chunk
<repro.core.streaming.StreamingQoEPipeline.push_chunk>`), which is where
cross-flow batched inference happens.  Idle eviction runs the same
amortized sweep as :class:`~repro.monitor.QoEMonitor`, driven by the
shard's stream time.
"""

from __future__ import annotations

import json
import traceback

from repro.core.config import PipelineConfig
from repro.core.pipeline import QoEPipeline
from repro.core.streaming import StreamingQoEPipeline
from repro.monitor import IdleEvictionSchedule

__all__ = ["ShardWorker", "shard_worker_main"]

#: Default bound on assumed cross-flow source disorder (seconds) used for the
#: fan-in watermarks; the cross-flow analogue of the engine's per-flow
#: ``reorder_depth``.  ``None`` in the worker means "derive from the config".
DEFAULT_NEW_FLOW_SLACK_WINDOWS = 2.0


class _WorkerChannel:
    """The worker's output queue with the linear protocol enforced.

    ``progress* -> done | error``: once :meth:`done` has been sent the shard
    is finished on the parent side (its fan-in watermark is pinned at
    ``+inf``), so a late ``progress`` would be a protocol bug that the
    fan-in could only mis-order -- raise here, at the source, instead.
    """

    def __init__(self, shard_id: int, out_queue) -> None:
        self.shard_id = shard_id
        self._out_queue = out_queue
        self.done_sent = False

    def progress(self, items, low_watermark) -> None:
        if self.done_sent:
            raise RuntimeError(
                f"shard {self.shard_id} attempted to emit progress after done"
            )
        self._out_queue.put(("progress", self.shard_id, items, low_watermark))

    def done(self, items, stats) -> None:
        if self.done_sent:
            raise RuntimeError(f"shard {self.shard_id} reported done twice")
        self.done_sent = True
        self._out_queue.put(("done", self.shard_id, items, stats))

    def error(self, trace: str) -> None:
        self._out_queue.put(("error", self.shard_id, trace))


def shard_worker_main(
    shard_id: int,
    pipeline_payload: str,
    config_dict: dict | None,
    new_flow_slack_s: float | None,
    in_queue,
    out_queue,
    ring_handle=None,
) -> None:
    """Worker process entry point (module-level, hence spawn-picklable)."""
    channel = _WorkerChannel(shard_id, out_queue)
    ring = None
    try:
        if ring_handle is not None:
            ring = ring_handle.attach()
        pipeline = QoEPipeline.from_payload(json.loads(pipeline_payload))
        config = (
            PipelineConfig.from_dict(config_dict) if config_dict is not None else pipeline.config
        )
        if new_flow_slack_s is None:
            new_flow_slack_s = DEFAULT_NEW_FLOW_SLACK_WINDOWS * config.window_s
        engine = StreamingQoEPipeline(pipeline, config=config)
        idle_timeout = config.idle_timeout_s
        eviction = IdleEvictionSchedule(idle_timeout)
        newest_ts: float | None = None
        n_packets = 0
        n_evicted = 0
        evicted_keys: set = set()
        while True:
            message = in_queue.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "shm":
                # The paired slot is guaranteed pending: the parent releases
                # the slot's ready semaphore before enqueueing the token, and
                # both sides walk ring slots in token order.
                chunk = ring.pop()
            else:
                chunk = message[1]
            n_packets += len(chunk)
            is_block = kind in ("block", "shm")
            if is_block:
                emitted = engine.push_block(chunk)
            else:
                emitted = engine.push_chunk(chunk)
            if idle_timeout is not None and len(chunk):
                if is_block:
                    chunk_newest = float(chunk.timestamps.max())
                else:
                    chunk_newest = max(packet.timestamp for packet in chunk)
                if newest_ts is None or chunk_newest > newest_ts:
                    newest_ts = chunk_newest
                if eviction.due(newest_ts):
                    evicted = engine.evict_idle(idle_timeout)
                    sweep_flows = {item.flow for item in evicted}
                    n_evicted += len(sweep_flows)
                    evicted_keys.update(sweep_flows)
                    emitted.extend(evicted)
            if kind == "shm":
                # Consumed: push_block copied everything it keeps, and the
                # eviction timestamp above is a scalar.  Drop the last view
                # of the slot, then recycle it for the parent.
                chunk = None
                ring.release()
            channel.progress(emitted, engine.low_watermark(new_flow_slack_s))
        tail = engine.flush()
        stats = {
            "n_packets": n_packets,
            "n_flows": len(evicted_keys | set(engine.flows)),
            "n_evicted_flows": n_evicted,
        }
        channel.done(tail, stats)
    except BaseException:
        channel.error(traceback.format_exc())
    finally:
        if ring is not None:
            ring.close()


class ShardWorker:
    """Parent-side handle of one shard worker process.

    Owns the shard's bounded input queue (back-pressure: a slow shard slows
    the router rather than ballooning memory) and the process object.  All
    construction arguments are the wire-format pieces
    ``shard_worker_main`` needs; nothing process-unsafe is retained.
    """

    def __init__(
        self,
        shard_id: int,
        pipeline_payload: str,
        config: PipelineConfig | None,
        ctx,
        out_queue,
        queue_depth: int = 8,
        new_flow_slack_s: float | None = None,
        ring=None,
    ) -> None:
        self.shard_id = shard_id
        self.in_queue = ctx.Queue(maxsize=queue_depth)
        #: The shard's shared-memory block ring (``None`` on the queue
        #: transports).  The parent is the producer; the worker attaches the
        #: consumer side from the handle passed in its arguments.
        self.ring = ring
        self.process = ctx.Process(
            target=shard_worker_main,
            args=(
                shard_id,
                pipeline_payload,
                config.to_dict() if config is not None else None,
                new_flow_slack_s,
                self.in_queue,
                out_queue,
                ring.handle() if ring is not None else None,
            ),
            daemon=True,
            name=f"qoe-shard-{shard_id}",
        )

        self._started = False

    def start(self) -> None:
        self.process.start()
        self._started = True

    @property
    def alive(self) -> bool:
        return self._started and self.process.is_alive()

    def join(self, timeout: float | None = None) -> None:
        # Guarded: cleanup after a failed start() (e.g. the spawn bootstrap
        # guard firing in a __main__-less script) must not cascade.
        if self._started:
            self.process.join(timeout)

    def terminate(self) -> None:
        if self._started and self.process.is_alive():
            self.process.terminate()

    def release_queues(self) -> None:
        """Detach from the input queue without waiting for its feeder thread.

        After an abort the worker may never drain its queue; letting the
        feeder thread flush to a full pipe with no reader would block the
        parent's interpreter exit.  Unsent chunks are irrelevant by then.
        """
        self.in_queue.cancel_join_thread()
        self.in_queue.close()
