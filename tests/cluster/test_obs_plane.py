"""The telemetry plane end-to-end: determinism, fleet merge, report surfaces.

PR 8 acceptance criteria pinned here:

* **observability is free of side effects**: with ``ObsConfig(enabled=True)``
  the sharded monitor emits estimates bit-identical to (and in the same
  fan-in order as) the obs-off run and the single-process monitor -- over
  both transports, N = 1, 2, 4 workers, heuristic and trained pipelines,
  and across forced live migrations;
* **fleet merge is exact**: the sum of every per-worker counter delta the
  parent received equals the parent registry's totals -- across migration
  chains and across a worker death mid-run;
* **transport counters mirror the report**: the registry's
  ``qoe_transport_*`` series match ``MonitorReport.transport`` exactly,
  including the queue-fallback paths (RTP blocks, tiny slots);
* the report's ``timing``/``metrics``/``shard_loads``/``migration``
  surfaces are populated and excluded from report equality.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro import (
    CollectorSink,
    IteratorSource,
    MetricsLogSink,
    ObsConfig,
    QoEMonitor,
    QoEPipeline,
    ShardedQoEMonitor,
    parse_prometheus,
    render_prometheus,
)
from repro.cluster import ScheduledRebalancer, shm_available
from repro.cluster.fanin import flow_sort_key
from repro.cluster.router import FlowShardRouter
from repro.net.flows import FlowKey
from repro.net.packet import IPv4Header, Packet, UDPHeader
from repro.obs.registry import render_key
from repro.rtp.header import RTPHeader

#: The flows of the conftest ``many_flow_packets`` fixture.
KEYS = [FlowKey("192.0.2.10", 3478, f"10.0.0.{i + 1}", 50000 + i) for i in range(4)]

OBS = ObsConfig(enabled=True)

TRANSPORTS = [
    "block",
    pytest.param(
        "shm",
        marks=pytest.mark.skipif(
            not shm_available(),
            reason="multiprocessing.shared_memory unavailable on this platform",
        ),
    ),
]

_spec = importlib.util.spec_from_file_location(
    "_cluster_conftest_obs", Path(__file__).resolve().parent / "conftest.py"
)
_cluster_conftest = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_cluster_conftest)


def fan_in_order(items):
    return sorted(items, key=lambda item: (item.estimate.window_start, flow_sort_key(item.flow)))


def as_rows(items):
    return [(item.flow, item.estimate) for item in items]


def forced_schedule(n_workers):
    """Two real cuts: KEYS[0] leaves home, then comes back."""
    router = FlowShardRouter(n_workers)
    home = router.shard_of_key(KEYS[0])
    away = (home + 1) % n_workers
    return [(1.5, KEYS[0], away), (5.0, KEYS[0], home)]


def run_sharded(pipeline, packets, n_workers, monitor_cls=ShardedQoEMonitor, **kwargs):
    sink = CollectorSink()
    monitor = monitor_cls(
        pipeline, IteratorSource(iter(packets)), sinks=sink, n_workers=n_workers, **kwargs
    )
    report = monitor.run()
    return sink, report, monitor


def counter(metrics: dict, series: str) -> float:
    """A counter from a snapshot, with absent series reading as 0.

    Zero-valued worker counters never ship (a delta carries increments
    only), so the parent's view may lack series the report carries as 0 --
    absence and 0 are the same reading.
    """
    return metrics.get("counters", {}).get(series, 0)


@pytest.fixture(scope="module")
def heuristic_pipeline():
    return QoEPipeline.for_vca("teams")


@pytest.fixture(scope="module")
def single_expected(many_flow_packets):
    """Single-process reference output per pipeline, in fan-in contract order."""
    cache: dict[int, list] = {}

    def reference(pipeline):
        key = id(pipeline)
        if key not in cache:
            sink = CollectorSink()
            QoEMonitor(pipeline, IteratorSource(iter(many_flow_packets)), sinks=sink).run()
            cache[key] = as_rows(fan_in_order(sink.items))
        return cache[key]

    return reference


class TestObsDeterminism:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_heuristic_bit_identical_to_obs_off_and_single(
        self, many_flow_packets, single_expected, heuristic_pipeline, n_workers, transport
    ):
        expected = single_expected(heuristic_pipeline)
        observed, report, monitor = run_sharded(
            heuristic_pipeline, many_flow_packets, n_workers, transport=transport, obs=OBS
        )
        assert as_rows(observed.items) == expected
        # The report's compare fields are unchanged by observability, so an
        # obs-on run equals the seed obs-off runs the other tests pin.
        plain, plain_report, _ = run_sharded(
            heuristic_pipeline, many_flow_packets, n_workers, transport=transport
        )
        assert as_rows(plain.items) == as_rows(observed.items)
        assert report == plain_report
        assert plain_report.metrics == {}
        assert report.metrics["counters"]
        assert monitor.registry.counter_value("qoe_router_packets_total") == report.n_packets

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_trained_bit_identical_to_single(
        self, many_flow_packets, single_expected, trained_pipeline, transport
    ):
        expected = single_expected(trained_pipeline)
        assert all(estimate.source == "ml" for _, estimate in expected)
        observed, report, _ = run_sharded(
            trained_pipeline, many_flow_packets, 2, transport=transport, obs=OBS
        )
        assert as_rows(observed.items) == expected
        # Trained mode exercises the inference span: every predicted window
        # went through one timed predict_many call.
        assert counter(report.metrics, "qoe_engine_predict_windows_total") == report.n_estimates
        assert report.metrics["histograms"]['qoe_stage_seconds{stage="predict"}']["count"] >= 1

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_forced_migration_bit_identical(
        self, many_flow_packets, single_expected, heuristic_pipeline, transport
    ):
        expected = single_expected(heuristic_pipeline)
        observed, report, monitor = run_sharded(
            heuristic_pipeline,
            many_flow_packets,
            2,
            transport=transport,
            rebalance=ScheduledRebalancer(forced_schedule(2)),
            obs=OBS,
        )
        assert as_rows(observed.items) == expected
        assert len(monitor.migrations) == 2
        assert counter(report.metrics, "qoe_migrations_total") == 2
        assert report.metrics["histograms"]['qoe_stage_seconds{stage="migration_cut"}']["count"] == 2
        # The satellite surface: the migration-cut latency summary.
        assert report.migration["count"] == 2
        assert report.migration["total_latency_s"] == pytest.approx(
            sum(m["latency_s"] for m in monitor.migrations)
        )
        assert report.migration["max_latency_s"] == max(m["latency_s"] for m in monitor.migrations)
        assert report.migration["mean_latency_s"] == pytest.approx(
            report.migration["total_latency_s"] / 2
        )


class _DeltaRecordingMonitor(ShardedQoEMonitor):
    """Records every worker metrics delta exactly as the parent receives it."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.shipped_deltas: list[dict] = []

    def _handle(self, message):
        kind = message[0]
        carrier = None
        if kind == "progress":
            carrier = message[4]
        elif kind == "est":
            carrier = message[2]
        elif kind == "done":
            carrier = message[3]
        if carrier and "metrics" in carrier:
            self.shipped_deltas.append(carrier["metrics"])
        super()._handle(message)


def summed_counters(deltas) -> dict:
    totals: dict = {}
    for delta in deltas:
        for key, value in delta.get("counters", {}).items():
            totals[key] = totals.get(key, 0) + value
    return totals


def summed_histogram_counts(deltas) -> dict:
    totals: dict = {}
    for delta in deltas:
        for key, (counts, _total) in delta.get("histograms", {}).items():
            totals[key] = totals.get(key, 0) + sum(counts)
    return totals


def assert_merge_exact(monitor) -> None:
    """Parent totals equal the sum of the shipped worker deltas, key by key.

    Worker-origin series never collide with parent-origin ones (engine
    counters and worker stage spans are recorded only in workers; the
    forward-direction transport counters only in the parent), so per-key
    equality is the exactness criterion.
    """
    assert monitor.shipped_deltas, "no deltas reached the parent"
    registry = monitor.registry
    for key, total in summed_counters(monitor.shipped_deltas).items():
        name, labels = key
        assert registry.counter_value(name, labels) == total, render_key(key)
    snapshot = registry.snapshot()
    for key, count in summed_histogram_counts(monitor.shipped_deltas).items():
        assert snapshot["histograms"][render_key(key)]["count"] == count, render_key(key)


class TestFleetMerge:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_counter_deltas_sum_exactly(self, many_flow_packets, transport):
        _, report, monitor = run_sharded(
            QoEPipeline.for_vca("teams"),
            many_flow_packets,
            2,
            monitor_cls=_DeltaRecordingMonitor,
            transport=transport,
            obs=OBS,
        )
        assert_merge_exact(monitor)
        # And the merged totals mean what they say: every routed packet was
        # consumed by exactly one engine, every estimate released once.
        registry = monitor.registry
        assert registry.counter_value("qoe_engine_packets_total") == report.n_packets
        assert registry.counter_value("qoe_engine_packets_total") == registry.counter_value(
            "qoe_router_packets_total"
        )
        assert registry.counter_value("qoe_engine_estimates_total") == report.n_estimates
        assert registry.counter_value("qoe_fanin_released_total") == report.n_estimates

    def test_merge_exact_across_migration_chains(self, many_flow_packets):
        """KEYS[0] re-homes three times; delta bookkeeping must not skew."""
        schedule = [(1.0, KEYS[0], 1), (2.5, KEYS[0], 0), (4.0, KEYS[0], 1)]
        _, report, monitor = run_sharded(
            QoEPipeline.for_vca("teams"),
            many_flow_packets,
            2,
            monitor_cls=_DeltaRecordingMonitor,
            rebalance=ScheduledRebalancer(schedule),
            obs=OBS,
        )
        assert len(monitor.migrations) == 3
        assert_merge_exact(monitor)
        assert monitor.registry.counter_value("qoe_engine_packets_total") == report.n_packets
        assert report.migration["count"] == 3

    def test_merge_exact_when_a_worker_dies_mid_run(self, many_flow_packets):
        """Deltas merged before a death stay exact; none are double-counted.

        Shard 1 is terminated the first time the parent hears from any
        worker (so the stream is still in flight); the run fails, but every
        delta the parent *did* receive must still sum to its registry.
        """

        class _KillingMonitor(_DeltaRecordingMonitor):
            killed = False

            def _handle(self, message):
                if not self.killed and message[0] in ("progress", "est"):
                    self.killed = True
                    self._workers[1].terminate()
                    self._workers[1].process.join(timeout=5.0)
                super()._handle(message)

        sink = CollectorSink()
        monitor = _KillingMonitor(
            QoEPipeline.for_vca("teams"),
            IteratorSource(iter(many_flow_packets)),
            sinks=sink,
            n_workers=2,
            transport="block",
            obs=OBS,
        )
        with pytest.raises(RuntimeError, match="shard worker 1"):
            monitor.run()
        assert monitor.killed
        assert_merge_exact(monitor)

    def test_obs_off_ships_no_deltas(self, many_flow_packets):
        _, report, monitor = run_sharded(
            QoEPipeline.for_vca("teams"),
            many_flow_packets,
            2,
            monitor_cls=_DeltaRecordingMonitor,
        )
        assert monitor.shipped_deltas == []
        assert monitor.registry is None
        assert monitor.metrics() == {}
        assert report.metrics == {}


@pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable on this platform"
)
class TestTransportCounters:
    COUNTS = ("slots_written", "slot_reuses", "segments_written", "queue_fallbacks")
    HWMS = ("max_segments_per_slot", "occupancy_hwm")

    def assert_mirrors_report(self, report, monitor) -> None:
        """Registry transport series == ``MonitorReport.transport``, exactly."""
        for direction, agg in report.transport.items():
            if direction == "rebalance":
                continue
            for key in self.COUNTS:
                series = f'qoe_transport_{key}_total{{direction="{direction}"}}'
                assert counter(report.metrics, series) == agg[key], series
            for key in self.HWMS:
                per_shard = [
                    report.metrics["gauges"].get(
                        f'qoe_transport_{key}{{direction="{direction}",shard="{shard}"}}'
                    )
                    for shard in range(monitor.n_workers)
                ]
                observed = [value for value in per_shard if value is not None]
                assert observed and max(observed) == agg[key], (direction, key)

    def test_ring_counters_match_report(self, many_flow_packets):
        _, report, monitor = run_sharded(
            QoEPipeline.for_vca("teams"),
            many_flow_packets,
            2,
            transport="shm",
            chunk_size=32,
            obs=OBS,
        )
        self.assert_mirrors_report(report, monitor)
        for direction in ("forward", "reverse"):
            assert report.transport[direction]["slots_written"] >= 1

    def test_split_slots_still_match_report(self, many_flow_packets):
        """1 KiB slots force block and batch splitting in both directions."""
        _, report, monitor = run_sharded(
            QoEPipeline.for_vca("teams"),
            many_flow_packets,
            2,
            transport="shm",
            shm_slot_bytes=1024,
            obs=OBS,
        )
        self.assert_mirrors_report(report, monitor)

    def test_queue_fallbacks_counted(self):
        """RTP object columns cannot flat-encode: every block falls back to
        the pickling queue, and the registry counts each fallback."""
        rtp_packets = [
            Packet(
                timestamp=0.01 * i,
                ip=IPv4Header(src="192.0.2.10", dst="10.0.0.1"),
                udp=UDPHeader(src_port=3478, dst_port=50000 + i % 3),
                payload_size=1000,
                rtp=RTPHeader(payload_type=96, sequence_number=i, timestamp=i * 90, ssrc=7),
            )
            for i in range(400)
        ]
        _, report, monitor = run_sharded(
            QoEPipeline.for_vca("teams"),
            rtp_packets,
            2,
            transport="shm",
            chunk_size=64,
            obs=OBS,
        )
        assert report.transport["forward"]["queue_fallbacks"] >= 1
        self.assert_mirrors_report(report, monitor)


class TestReportSurfaces:
    def test_timing_breakdown_sums_to_wall_time(self, many_flow_packets):
        # Timing is recorded unconditionally -- the dilution fix is not
        # gated on observability.
        _, report, _ = run_sharded(QoEPipeline.for_vca("teams"), many_flow_packets, 2)
        timing = report.timing
        assert set(timing) == {"wall_time_s", "setup_s", "stream_s", "drain_s"}
        assert timing["wall_time_s"] == report.wall_time_s
        assert timing["setup_s"] + timing["stream_s"] + timing["drain_s"] == pytest.approx(
            timing["wall_time_s"]
        )
        assert all(value >= 0.0 for value in timing.values())
        # The satellite fix: worker spawn (setup) dominates small sharded
        # runs, so the stream-phase reading must exceed the diluted one.
        assert report.stream_packets_per_s == report.n_packets / timing["stream_s"]
        assert report.stream_packets_per_s > report.packets_per_s

    def test_stream_packets_per_s_falls_back_without_timing(self):
        from repro.monitor import MonitorReport

        report = MonitorReport(
            n_packets=100, n_estimates=1, n_flows=1, n_evicted_flows=0, wall_time_s=2.0
        )
        assert report.stream_packets_per_s == report.packets_per_s == 50.0

    def test_shard_loads_in_report(self, many_flow_packets):
        _, report, _ = run_sharded(QoEPipeline.for_vca("teams"), many_flow_packets, 2)
        assert len(report.shard_loads) == 2
        for load in report.shard_loads:
            assert set(load) == {"live_flows", "buffered_packets", "open_windows"}
        assert sum(load["live_flows"] for load in report.shard_loads) == 4
        assert report.migration == {}  # no rebalancer, no summary

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_stage_spans_cover_the_hot_path(self, many_flow_packets, transport):
        _, report, _ = run_sharded(
            QoEPipeline.for_vca("teams"), many_flow_packets, 2, transport=transport, obs=OBS
        )
        stages = {
            series.split('stage="')[1].rstrip('"}')
            for series in report.metrics["histograms"]
            if series.startswith("qoe_stage_seconds")
        }
        expected = {"source_read", "router_partition", "forward_push", "push_block",
                    "frame_assembly", "fanin_release", "sink_emit"}
        if transport == "shm":
            expected.add("ring_return")
        assert expected <= stages

    def test_per_shard_gauges_and_scrape_parse(self, many_flow_packets):
        _, report, monitor = run_sharded(
            QoEPipeline.for_vca("teams"), many_flow_packets, 2, obs=OBS
        )
        gauges = report.metrics["gauges"]
        live = [gauges[f'qoe_shard_live_flows{{shard="{s}"}}'] for s in range(2)]
        assert sum(live) == 4
        # metrics() after the run reproduces the report snapshot, and the
        # whole fleet view renders as parseable Prometheus exposition text.
        assert monitor.metrics() == report.metrics
        series = parse_prometheus(render_prometheus(report.metrics))
        assert series["qoe_router_packets_total"] == report.n_packets
        assert series["qoe_fanin_released_total"] == report.n_estimates

    def test_metrics_log_sink_rides_a_sharded_run(self, many_flow_packets, tmp_path):
        path = tmp_path / "fleet_metrics.jsonl"
        sink = MetricsLogSink(path, interval_s=2.0)
        collector = CollectorSink()
        monitor = ShardedQoEMonitor(
            QoEPipeline.for_vca("teams"),
            IteratorSource(iter(many_flow_packets)),
            sinks=[collector, sink],
            n_workers=2,
            obs=OBS,
        )
        monitor.run()
        assert sink.registry is monitor.registry  # bound automatically at run()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == sink.lines_written >= 2  # interval lines + final
        final = lines[-1]["metrics"]
        assert final["counters"]["qoe_fanin_released_total"] == len(collector.items)
