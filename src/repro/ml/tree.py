"""CART decision trees for regression and classification.

The trees are grown greedily by recursive binary splitting.  Regression trees
minimise within-node variance (equivalently, squared error); classification
trees minimise Gini impurity.  Both expose impurity-decrease feature
importances, which is what the paper reports in its feature-importance plots
(Figures 5, 7, 9 and A.4-A.9).

The implementation favours clarity over raw speed but is vectorised enough
(numpy argsort + cumulative statistics per feature) to train on tens of
thousands of one-second windows in a few seconds, which is the scale of the
paper's datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "TreeNode",
]


@dataclass
class TreeNode:
    """A single node of a fitted CART tree.

    Leaf nodes have ``feature`` set to ``None`` and carry a prediction value
    (the mean target for regression, class-probability vector for
    classification).  Internal nodes route samples with
    ``x[feature] <= threshold`` to the left child.
    """

    feature: int | None = None
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    value: np.ndarray | float = 0.0
    n_samples: int = 0
    impurity: float = 0.0
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def node_count(self) -> int:
        """Number of nodes in the subtree rooted at this node."""
        if self.is_leaf:
            return 1
        assert self.left is not None and self.right is not None
        return 1 + self.left.node_count() + self.right.node_count()

    def max_depth(self) -> int:
        """Depth of the deepest leaf below (and including) this node."""
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.max_depth(), self.right.max_depth())


@dataclass
class _Split:
    """Best split found for one node."""

    feature: int
    threshold: float
    gain: float
    left_mask: np.ndarray = field(repr=False, default=None)


class _BaseDecisionTree:
    """Shared machinery for regression and classification trees."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: TreeNode | None = None
        self.n_features_: int = 0
        self.feature_importances_: np.ndarray | None = None

    # -- subclass hooks ----------------------------------------------------

    def _node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _leaf_value(self, y: np.ndarray):
        raise NotImplementedError

    def _best_split_for_feature(
        self, x: np.ndarray, y: np.ndarray, parent_impurity: float
    ) -> tuple[float, float] | None:
        raise NotImplementedError

    # -- public API --------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseDecisionTree":
        """Grow the tree on ``X`` (``n_samples x n_features``) and targets ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(
                f"X and y have inconsistent lengths: {len(X)} vs {len(y)}"
            )
        if len(X) == 0:
            raise ValueError("cannot fit a decision tree on an empty dataset")
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._prepare_targets(y)
        importances = np.zeros(self.n_features_)
        self.root_ = self._grow(X, y, depth=0, importances=importances)
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else np.zeros(self.n_features_)
        )
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the fitted tree.

        Nodes are flattened preorder into parallel columns (``-1`` marks "no
        child" / "leaf").  Floats survive the JSON round trip bit-identically
        (``repr`` shortest-round-trip), so a reloaded tree predicts exactly
        what the original did.
        """
        self._check_fitted()
        assert self.root_ is not None
        columns: dict[str, list] = {
            "feature": [], "threshold": [], "left": [], "right": [],
            "value": [], "n_samples": [], "impurity": [],
        }
        self._flatten(self.root_, columns)
        return {
            "params": {
                "max_depth": self.max_depth,
                "min_samples_split": self.min_samples_split,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "random_state": self.random_state,
            },
            "n_features": self.n_features_,
            "feature_importances": [float(v) for v in self.feature_importances_],
            "nodes": columns,
            **self._extra_to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_BaseDecisionTree":
        """Inverse of :meth:`to_dict`."""
        tree = cls(**data["params"])
        tree._extra_from_dict(data)
        tree.n_features_ = int(data["n_features"])
        tree.feature_importances_ = np.asarray(data["feature_importances"], dtype=float)
        tree.root_ = tree._unflatten(data["nodes"], 0, depth=0)
        return tree

    def _flatten(self, node: TreeNode, columns: dict[str, list]) -> int:
        index = len(columns["feature"])
        columns["feature"].append(-1 if node.feature is None else int(node.feature))
        columns["threshold"].append(float(node.threshold))
        columns["value"].append(self._encode_value(node.value))
        columns["n_samples"].append(int(node.n_samples))
        columns["impurity"].append(float(node.impurity))
        columns["left"].append(-1)
        columns["right"].append(-1)
        if node.feature is not None:
            assert node.left is not None and node.right is not None
            columns["left"][index] = self._flatten(node.left, columns)
            columns["right"][index] = self._flatten(node.right, columns)
        return index

    def _unflatten(self, columns: dict[str, list], index: int, depth: int) -> TreeNode:
        feature = columns["feature"][index]
        node = TreeNode(
            feature=None if feature < 0 else int(feature),
            threshold=float(columns["threshold"][index]),
            value=self._decode_value(columns["value"][index]),
            n_samples=int(columns["n_samples"][index]),
            impurity=float(columns["impurity"][index]),
            depth=depth,
        )
        if feature >= 0:
            node.left = self._unflatten(columns, columns["left"][index], depth + 1)
            node.right = self._unflatten(columns, columns["right"][index], depth + 1)
        return node

    def _encode_value(self, value):
        """JSON form of a node's prediction value (subclass hook)."""
        return float(value)

    def _decode_value(self, value):
        return float(value)

    def _extra_to_dict(self) -> dict:
        """Additional serialized state (subclass hook)."""
        return {}

    def _extra_from_dict(self, data: dict) -> None:
        pass

    def get_depth(self) -> int:
        self._check_fitted()
        assert self.root_ is not None
        return self.root_.max_depth()

    def get_n_nodes(self) -> int:
        self._check_fitted()
        assert self.root_ is not None
        return self.root_.node_count()

    # -- internals ---------------------------------------------------------

    def _prepare_targets(self, y: np.ndarray) -> None:
        """Hook for subclasses that need to inspect targets before fitting."""

    def _check_fitted(self) -> None:
        if self.root_ is None:
            raise RuntimeError(
                f"{type(self).__name__} instance is not fitted; call fit() first"
            )

    def _n_candidate_features(self) -> int:
        max_features = self.max_features
        if max_features is None:
            return self.n_features_
        if isinstance(max_features, str):
            if max_features == "sqrt":
                return max(1, int(np.sqrt(self.n_features_)))
            if max_features == "log2":
                return max(1, int(np.log2(self.n_features_)))
            raise ValueError(f"unknown max_features string: {max_features!r}")
        if isinstance(max_features, float):
            return max(1, int(round(max_features * self.n_features_)))
        return max(1, min(int(max_features), self.n_features_))

    def _candidate_features(self) -> np.ndarray:
        n_candidates = self._n_candidate_features()
        if n_candidates >= self.n_features_:
            return np.arange(self.n_features_)
        return self._rng.choice(self.n_features_, size=n_candidates, replace=False)

    def _grow(
        self, X: np.ndarray, y: np.ndarray, depth: int, importances: np.ndarray
    ) -> TreeNode:
        node = TreeNode(
            value=self._leaf_value(y),
            n_samples=len(y),
            impurity=self._node_impurity(y),
            depth=depth,
        )
        if self._should_stop(y, depth, node.impurity):
            return node

        split = self._find_best_split(X, y, node.impurity)
        if split is None:
            return node

        left_mask = X[:, split.feature] <= split.threshold
        right_mask = ~left_mask
        if left_mask.sum() < self.min_samples_leaf or right_mask.sum() < self.min_samples_leaf:
            return node

        importances[split.feature] += split.gain * len(y)
        node.feature = split.feature
        node.threshold = split.threshold
        node.left = self._grow(X[left_mask], y[left_mask], depth + 1, importances)
        node.right = self._grow(X[right_mask], y[right_mask], depth + 1, importances)
        return node

    def _should_stop(self, y: np.ndarray, depth: int, impurity: float) -> bool:
        if len(y) < self.min_samples_split:
            return True
        if self.max_depth is not None and depth >= self.max_depth:
            return True
        if impurity <= 1e-12:
            return True
        return False

    def _find_best_split(
        self, X: np.ndarray, y: np.ndarray, parent_impurity: float
    ) -> _Split | None:
        best: _Split | None = None
        for feature in self._candidate_features():
            result = self._best_split_for_feature(X[:, feature], y, parent_impurity)
            if result is None:
                continue
            threshold, gain = result
            if best is None or gain > best.gain:
                best = _Split(feature=int(feature), threshold=float(threshold), gain=gain)
        if best is None or best.gain <= 0:
            return None
        return best

    def _traverse(self, node: TreeNode, x: np.ndarray) -> TreeNode:
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    @staticmethod
    def _split_points(values: np.ndarray) -> np.ndarray:
        """Indices ``i`` such that splitting between ``values[i-1]`` and ``values[i]``
        is meaningful (the sorted feature value actually changes)."""
        return np.nonzero(np.diff(values) > 0)[0] + 1


class DecisionTreeRegressor(_BaseDecisionTree):
    """CART regression tree minimising within-node variance.

    Parameters mirror the scikit-learn estimator of the same name; only the
    subset needed by the reproduction is implemented.
    """

    def _node_impurity(self, y: np.ndarray) -> float:
        return float(np.var(y)) if len(y) else 0.0

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(np.mean(y))

    def _best_split_for_feature(
        self, x: np.ndarray, y: np.ndarray, parent_impurity: float
    ) -> tuple[float, float] | None:
        order = np.argsort(x, kind="mergesort")
        x_sorted = x[order]
        y_sorted = y[order].astype(float)
        n = len(y_sorted)
        split_idx = self._split_points(x_sorted)
        if len(split_idx) == 0:
            return None

        # Cumulative sums let us evaluate the variance reduction of every
        # split position in O(n) after sorting.
        csum = np.cumsum(y_sorted)
        csum_sq = np.cumsum(y_sorted**2)
        total_sum = csum[-1]
        total_sq = csum_sq[-1]

        n_left = split_idx.astype(float)
        n_right = n - n_left
        sum_left = csum[split_idx - 1]
        sq_left = csum_sq[split_idx - 1]
        sum_right = total_sum - sum_left
        sq_right = total_sq - sq_left

        var_left = sq_left / n_left - (sum_left / n_left) ** 2
        var_right = sq_right / n_right - (sum_right / n_right) ** 2
        weighted = (n_left * var_left + n_right * var_right) / n
        gains = parent_impurity - weighted

        valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
        if not valid.any():
            return None
        gains = np.where(valid, gains, -np.inf)
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]) or gains[best] <= 0:
            return None
        i = split_idx[best]
        threshold = 0.5 * (x_sorted[i - 1] + x_sorted[i])
        return float(threshold), float(gains[best])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict continuous targets for each row of ``X``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        assert self.root_ is not None
        return np.array([self._traverse(self.root_, row).value for row in X])


class DecisionTreeClassifier(_BaseDecisionTree):
    """CART classification tree minimising Gini impurity."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.classes_: np.ndarray | None = None

    def _prepare_targets(self, y: np.ndarray) -> None:
        self.classes_ = np.unique(y)
        self._class_index = {c: i for i, c in enumerate(self.classes_)}

    def _encode_value(self, value):
        return [float(v) for v in np.asarray(value, dtype=float)]

    def _decode_value(self, value):
        return np.asarray(value, dtype=float)

    def _extra_to_dict(self) -> dict:
        assert self.classes_ is not None
        return {"classes": [c.item() if hasattr(c, "item") else c for c in self.classes_]}

    def _extra_from_dict(self, data: dict) -> None:
        self.classes_ = np.array(data["classes"])
        self._class_index = {c: i for i, c in enumerate(self.classes_)}

    def _encode(self, y: np.ndarray) -> np.ndarray:
        return np.array([self._class_index[v] for v in y], dtype=int)

    def _node_impurity(self, y: np.ndarray) -> float:
        if len(y) == 0:
            return 0.0
        counts = np.bincount(self._encode(y), minlength=len(self.classes_))
        p = counts / counts.sum()
        return float(1.0 - np.sum(p**2))

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(self._encode(y), minlength=len(self.classes_))
        return counts / counts.sum()

    def _best_split_for_feature(
        self, x: np.ndarray, y: np.ndarray, parent_impurity: float
    ) -> tuple[float, float] | None:
        order = np.argsort(x, kind="mergesort")
        x_sorted = x[order]
        y_sorted = self._encode(y[order])
        n = len(y_sorted)
        n_classes = len(self.classes_)
        split_idx = self._split_points(x_sorted)
        if len(split_idx) == 0:
            return None

        # One-hot cumulative counts -> class histograms on each side of every
        # candidate split without an inner python loop.
        one_hot = np.zeros((n, n_classes))
        one_hot[np.arange(n), y_sorted] = 1.0
        ccounts = np.cumsum(one_hot, axis=0)
        total = ccounts[-1]

        left_counts = ccounts[split_idx - 1]
        right_counts = total - left_counts
        n_left = split_idx.astype(float)
        n_right = n - n_left

        gini_left = 1.0 - np.sum((left_counts / n_left[:, None]) ** 2, axis=1)
        gini_right = 1.0 - np.sum((right_counts / n_right[:, None]) ** 2, axis=1)
        weighted = (n_left * gini_left + n_right * gini_right) / n
        gains = parent_impurity - weighted

        valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
        if not valid.any():
            return None
        gains = np.where(valid, gains, -np.inf)
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]) or gains[best] <= 0:
            return None
        i = split_idx[best]
        threshold = 0.5 * (x_sorted[i - 1] + x_sorted[i])
        return float(threshold), float(gains[best])

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates, one row per sample."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        assert self.root_ is not None
        return np.vstack([self._traverse(self.root_, row).value for row in X])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict the most probable class label for each row of ``X``."""
        proba = self.predict_proba(X)
        assert self.classes_ is not None
        return self.classes_[np.argmax(proba, axis=1)]
