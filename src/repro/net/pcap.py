"""Reader and writer for the classic libpcap capture format.

The paper's pipeline stores every call as a ``.pcap`` file captured with
tcpdump.  This module lets the reproduction persist simulated calls in the
same format (microsecond-resolution classic pcap, Ethernet link type) and
read them back, so the estimation pipeline genuinely operates on on-disk
captures rather than in-memory shortcuts.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.net.headers import (
    decode_ethernet_ipv4_udp,
    decode_ethernet_ipv4_udp_fields,
    encode_ethernet_ipv4_udp,
)
from repro.net.packet import Packet
from repro.rtp.header import RTPHeader

__all__ = ["PcapReader", "PcapWriter", "read_pcap", "write_pcap", "PCAP_MAGIC"]

PCAP_MAGIC = 0xA1B2C3D4
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_LINKTYPE_ETHERNET = 1


class PcapWriter:
    """Write packets to a classic pcap file (Ethernet link layer).

    RTP headers, when present on a packet, are serialised into the UDP payload
    so that a reader parsing the file recovers them; the remaining payload is
    zero-filled to the packet's recorded payload size.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = None

    def __enter__(self) -> "PcapWriter":
        self._file = open(self.path, "wb")  # noqa: SIM115 -- owned until __exit__
        self._file.write(
            _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, 65535, _LINKTYPE_ETHERNET)
        )
        return self

    def __exit__(self, *exc_info) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def write(self, packet: Packet) -> None:
        """Append one packet record."""
        if self._file is None:
            raise RuntimeError("PcapWriter must be used as a context manager")
        payload = self._build_payload(packet)
        frame = encode_ethernet_ipv4_udp(packet.ip, packet.udp, payload)
        seconds = int(packet.timestamp)
        microseconds = int(round((packet.timestamp - seconds) * 1e6))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        self._file.write(_RECORD_HEADER.pack(seconds, microseconds, len(frame), len(frame)))
        self._file.write(frame)

    def write_all(self, packets) -> int:
        count = 0
        for packet in packets:
            self.write(packet)
            count += 1
        return count

    @staticmethod
    def _build_payload(packet: Packet) -> bytes:
        if packet.rtp is not None:
            header_bytes = packet.rtp.encode()
            padding = max(0, packet.payload_size - len(header_bytes))
            return header_bytes + bytes(padding)
        return bytes(packet.payload_size)


class PcapReader:
    """Iterate packets from a classic pcap file written by :class:`PcapWriter`
    (or any Ethernet/IPv4/UDP capture).

    Non-UDP records are skipped.  If ``parse_rtp`` is true, an RTP header is
    parsed from the first 12 payload bytes when it looks like RTP (version 2).

    With ``strict=False`` a capture whose *final* record is cut short -- a
    crashed tcpdump, a file still being written -- yields every complete
    record and then stops instead of raising; a corrupt global header is an
    error either way.
    """

    def __init__(self, path: str | Path, parse_rtp: bool = True, strict: bool = True) -> None:
        self.path = Path(path)
        self.parse_rtp = parse_rtp
        self.strict = strict

    def _iter_records(self):
        """Yield ``(timestamp, frame_bytes)`` raw records, honouring ``strict``."""
        with open(self.path, "rb") as handle:
            header = handle.read(_GLOBAL_HEADER.size)
            if len(header) < _GLOBAL_HEADER.size:
                raise ValueError(f"{self.path} is not a pcap file (truncated global header)")
            magic = struct.unpack("<I", header[:4])[0]
            if magic == PCAP_MAGIC:
                endian = "<"
            elif magic == 0xD4C3B2A1:
                endian = ">"
            else:
                raise ValueError(f"{self.path} is not a classic pcap file (magic 0x{magic:08x})")
            record_struct = struct.Struct(endian + "IIII")

            while True:
                record_header = handle.read(record_struct.size)
                if not record_header:
                    return
                if len(record_header) < record_struct.size:
                    if not self.strict:
                        return
                    raise ValueError(f"{self.path}: truncated record header")
                seconds, microseconds, captured_len, _original_len = record_struct.unpack(record_header)
                frame = handle.read(captured_len)
                if len(frame) < captured_len:
                    if not self.strict:
                        return
                    raise ValueError(f"{self.path}: truncated packet record")
                yield seconds + microseconds / 1e6, frame

    def __iter__(self):
        for timestamp, frame in self._iter_records():
            packet = self._parse_frame(timestamp, frame)
            if packet is not None:
                yield packet

    def read_blocks(self, chunk_size: int):
        """Yield :class:`~repro.net.block.PacketBlock` chunks of the capture.

        The columnar fast path: records are decoded field-by-field straight
        into arrays (:func:`~repro.net.headers.decode_ethernet_ipv4_udp_fields`),
        so no ``Packet`` / header dataclasses are ever constructed.  RTP
        headers, when ``parse_rtp`` and present, land in the block's optional
        object column.  Non-UDP records are skipped and truncation is handled
        exactly as in record-by-record iteration.
        """
        from repro.net.block import PacketBlock
        from repro.net.flows import FlowKey

        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        parse_rtp = self.parse_rtp

        columns: list[tuple] = []
        rtp_values: list = []
        has_rtp = False
        addr_codes: dict[str, int] = {}
        flow_table: dict[tuple, int] = {}
        flow_keys: list[FlowKey] = []

        def build() -> PacketBlock:
            nonlocal columns, rtp_values, has_rtp, addr_codes, flow_table, flow_keys
            n = len(columns)
            arrays = np.array(
                [row[:10] for row in columns], dtype=np.float64
            )  # ts + 9 int fields; ints are exact in float64 at these ranges
            rtp = None
            if has_rtp:
                rtp = np.empty(n, dtype=object)
                rtp[:] = rtp_values
            block = PacketBlock(
                timestamps=arrays[:, 0].copy(),
                sizes=arrays[:, 1].astype(np.int64),
                src_codes=arrays[:, 2].astype(np.int32),
                dst_codes=arrays[:, 3].astype(np.int32),
                src_ports=arrays[:, 4].astype(np.int32),
                dst_ports=arrays[:, 5].astype(np.int32),
                protocols=arrays[:, 6].astype(np.int16),
                ttls=arrays[:, 7].astype(np.int16),
                total_lengths=arrays[:, 8].astype(np.int32),
                udp_lengths=arrays[:, 9].astype(np.int32),
                flow_codes=np.array([row[10] for row in columns], dtype=np.int32),
                addresses=tuple(addr_codes),
                flows=tuple(flow_keys),
                rtp=rtp,
            )
            columns = []
            rtp_values = []
            has_rtp = False
            addr_codes = {}
            flow_table = {}
            flow_keys = []
            return block

        for timestamp, frame in self._iter_records():
            try:
                fields = decode_ethernet_ipv4_udp_fields(frame)
            except ValueError:
                continue
            src, dst, ttl, protocol, total_length, src_port, dst_port, udp_length, payload = fields
            rtp = None
            if parse_rtp and len(payload) >= 12 and (payload[0] >> 6) == 2:
                try:
                    rtp = RTPHeader.decode(payload)
                except ValueError:
                    rtp = None
            src_code = addr_codes.setdefault(src, len(addr_codes))
            dst_code = addr_codes.setdefault(dst, len(addr_codes))
            composite = (src_code, src_port, dst_code, dst_port, protocol)
            flow_code = flow_table.get(composite)
            if flow_code is None:
                flow_code = len(flow_table)
                flow_table[composite] = flow_code
                flow_keys.append(
                    FlowKey(src=src, src_port=src_port, dst=dst, dst_port=dst_port, protocol=protocol)
                )
            columns.append(
                (
                    timestamp,
                    len(payload),
                    src_code,
                    dst_code,
                    src_port,
                    dst_port,
                    protocol,
                    ttl,
                    total_length,
                    udp_length,
                    flow_code,
                )
            )
            rtp_values.append(rtp)
            has_rtp = has_rtp or rtp is not None
            if len(columns) >= chunk_size:
                yield build()
        if columns:
            yield build()

    def _parse_frame(self, timestamp: float, frame: bytes) -> Packet | None:
        try:
            ip, udp, payload = decode_ethernet_ipv4_udp(frame)
        except ValueError:
            return None
        rtp = None
        if self.parse_rtp and len(payload) >= 12 and (payload[0] >> 6) == 2:
            try:
                rtp = RTPHeader.decode(payload)
            except ValueError:
                rtp = None
        return Packet(
            timestamp=timestamp,
            ip=ip,
            udp=udp,
            payload_size=len(payload),
            rtp=rtp,
        )


def write_pcap(path: str | Path, packets) -> int:
    """Write ``packets`` to ``path``; returns the number of records written."""
    with PcapWriter(path) as writer:
        return writer.write_all(packets)


def read_pcap(path: str | Path, parse_rtp: bool = True) -> list[Packet]:
    """Read every UDP packet from ``path`` into a list."""
    return list(PcapReader(path, parse_rtp=parse_rtp))
