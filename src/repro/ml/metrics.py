"""Error and accuracy metrics used in the paper's evaluation.

* Mean absolute error (MAE) -- frame rate and frame jitter (Figures 3, 6b, 10).
* Mean relative absolute error (MRAE) -- bitrate (Figures 6a, 10b).
* Accuracy and confusion matrices -- resolution (Tables 2, 3, 4, A.1-A.3).
* Percentile summaries of signed errors -- box-plot whiskers (10th/90th).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "mean_absolute_error",
    "mean_relative_absolute_error",
    "root_mean_squared_error",
    "r2_score",
    "accuracy_score",
    "confusion_matrix",
    "normalized_confusion_matrix",
    "within_tolerance_fraction",
    "ErrorSummary",
    "summarize_errors",
]


def _as_arrays(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred have different shapes: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot compute a metric on empty arrays")
    return y_true, y_pred


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean of ``|y_pred - y_true|``."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.mean(np.abs(y_pred - y_true)))


def mean_relative_absolute_error(y_true, y_pred, eps: float = 1e-9) -> float:
    """Mean of ``|y_pred - y_true| / y_true`` (the paper's MRAE for bitrate).

    Windows with a zero ground-truth value are guarded with ``eps`` in the
    denominator rather than dropped, matching a ratio-of-errors definition
    that stays finite for silent windows.
    """
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.mean(np.abs(y_pred - y_true) / np.maximum(np.abs(y_true), eps)))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Square root of the mean squared error."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    return float(np.sqrt(np.mean((y_pred - y_true) ** 2)))


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination."""
    y_true, y_pred = _as_arrays(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - np.mean(y_true)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred have different shapes")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy on empty arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> tuple[np.ndarray, np.ndarray]:
    """Confusion matrix with rows = actual labels, columns = predicted labels.

    Returns ``(matrix, labels)`` where ``matrix[i, j]`` counts samples whose
    true label is ``labels[i]`` and predicted label is ``labels[j]``.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for actual, predicted in zip(y_true, y_pred):
        matrix[index[actual], index[predicted]] += 1
    return matrix, labels


def normalized_confusion_matrix(y_true, y_pred, labels=None) -> tuple[np.ndarray, np.ndarray]:
    """Row-normalised confusion matrix (percentages per actual class)."""
    matrix, labels = confusion_matrix(y_true, y_pred, labels)
    row_sums = matrix.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        normalized = np.where(row_sums > 0, matrix / row_sums, 0.0)
    return normalized, labels


def within_tolerance_fraction(y_true, y_pred, tolerance: float, relative: bool = False) -> float:
    """Fraction of predictions within ``tolerance`` of the ground truth.

    With ``relative=True`` the tolerance is interpreted as a fraction of the
    ground-truth value (used for "within 25% of the ground truth bitrate").
    """
    y_true, y_pred = _as_arrays(y_true, y_pred)
    errors = np.abs(y_pred - y_true)
    if relative:
        bound = tolerance * np.maximum(np.abs(y_true), 1e-9)
    else:
        bound = tolerance
    return float(np.mean(errors <= bound))


@dataclass(frozen=True)
class ErrorSummary:
    """Distribution summary matching the paper's box plots.

    The paper's boxes report the median and inter-quartile range with whiskers
    at the 10th and 90th percentiles, annotated with the MAE (or MRAE).
    """

    mae: float
    mrae: float
    median: float
    p10: float
    p25: float
    p75: float
    p90: float
    mean: float
    n: int

    def as_dict(self) -> dict[str, float]:
        return {
            "mae": self.mae,
            "mrae": self.mrae,
            "median": self.median,
            "p10": self.p10,
            "p25": self.p25,
            "p75": self.p75,
            "p90": self.p90,
            "mean": self.mean,
            "n": self.n,
        }


def summarize_errors(y_true, y_pred, relative: bool = False) -> ErrorSummary:
    """Summarise signed errors (``y_pred - y_true``) as the paper's box plots do.

    With ``relative=True`` the signed errors are divided by the ground truth
    (bitrate relative errors in Figures 6a and 10b).
    """
    y_true, y_pred = _as_arrays(y_true, y_pred)
    signed = y_pred - y_true
    if relative:
        signed = signed / np.maximum(np.abs(y_true), 1e-9)
    p10, p25, median, p75, p90 = np.percentile(signed, [10, 25, 50, 75, 90])
    return ErrorSummary(
        mae=mean_absolute_error(y_true, y_pred),
        mrae=mean_relative_absolute_error(y_true, y_pred),
        median=float(median),
        p10=float(p10),
        p25=float(p25),
        p75=float(p75),
        p90=float(p90),
        mean=float(np.mean(signed)),
        n=int(y_true.size),
    )
