"""Compatibility shim: all metadata lives in pyproject.toml.

Kept so `pip install -e .` also works on old pip/setuptools stacks that
lack the `wheel` package (their PEP 660 editable path needs bdist_wheel);
modern tooling ignores this file and reads pyproject.toml directly.
"""

from setuptools import setup

setup()
