"""Shard worker processes: one streaming engine per shard.

A worker is deliberately *not* constructed from a live ``QoEPipeline``
object: it receives the JSON payload of :meth:`QoEPipeline.to_payload
<repro.core.pipeline.QoEPipeline.to_payload>` -- the exact bytes
``QoEPipeline.save`` writes to disk -- plus a
:class:`~repro.core.config.PipelineConfig` dict, and rebuilds the pipeline
on its side of the process boundary.  That keeps workers **spawn-safe**
(everything crossing the boundary is plain JSON-able data and packets, no
trees/forests/closures to pickle) and exercises the persistence format as
the cluster's wire format: a worker is indistinguishable from a deployment
site that loaded the model from disk, and reloaded forests predict
bit-identically by the PR 2 persistence contract.

Protocol (control messages are plain tuples over ``multiprocessing``
queues; with the shared-memory transport the *payloads* in both directions
ride :class:`~repro.cluster.shm.BlockRing` segments and the queues carry
only slot tokens)::

    parent -> worker:  ("block", PacketBlock)          one routed tick (columnar)
                       ("shm",)                        one ring slot (>= 1 routed ticks)
                       ("chunk", [Packet, ...])        one routed tick (legacy)
                       ("migrate_out", key, epoch)     drain + snapshot one flow pair
                       ("migrate_in", key, epoch, parts, counted)   restore it
                       ("stop",)                       end of source
    worker -> parent:  ("progress", shard_id, [StreamEstimate], low_watermark, load)
                       ("est", shard_id, load)         one return-ring slot (>= 1 tick batches)
                       ("migrated", shard_id, epoch, parts, bound, counted)
                       ("migrate_ack", shard_id, epoch)
                       ("done", shard_id, [StreamEstimate], stats dict)
                       ("error", shard_id, traceback string)

``load`` is the shard's live telemetry (live flows, buffered packets, open
windows -- :meth:`StreamingQoEPipeline.load_stats`), attached to every
watermark-bearing message so the parent has a mid-run load signal (the
rebalancer's input; terminal ``done`` stats carry the final reading).  The
``migrate_*`` messages are the elastic-sharding cut (PR 7): the parent asks
the old home to drain a canonical flow pair, receives the encoded
:class:`~repro.net.flowwire.FlowSnapshot` payloads (``parts``) plus the
flows' release fence bound and flow-count ownership, re-sends them to the
new home, and the new home acknowledges once the flows are live again.
``counted`` keeps ``n_flows`` exact across re-homings: the first shard that
ever saw a flow keeps counting it, every later home lists it as foreign.

The columnar ``("block", ...)`` transport is the default: a
:class:`~repro.net.block.PacketBlock` pickles as a handful of NumPy array
buffers plus small side tables, instead of one Python object graph per
packet, and the worker feeds it to :meth:`StreamingQoEPipeline.push_block
<repro.core.streaming.StreamingQoEPipeline.push_block>` without ever
materializing ``Packet`` objects in trained mode.  The ``("shm",)`` token
goes one further: the parent flat-encodes routed blocks straight into a
shared-memory ring slot (several per slot behind length-prefixed segment
headers) and the worker decodes zero-copy array views over that slot,
consumes each segment as its own inference tick, and only then releases
the slot for reuse.  The return direction mirrors it: per-tick estimate
batches are flat-encoded (:class:`~repro.net.estwire.EstimateBatch`) into
a reverse ring and announced with ``("est", shard_id)`` tokens, so with
``transport="shm"`` no packet and no estimate payload is pickled in either
direction.  Every transport produces bit-identical estimates in identical
order (pinned by ``tests/cluster/``).

The worker's output protocol is linear by construction:
``(progress|est)* -> done | error``.  :class:`_WorkerChannel` enforces
it -- a worker that tried to emit ``progress`` after ``done`` would pin the
fan-in's watermark assumptions (a finished shard's watermark is ``+inf``),
so the channel raises instead of letting the message out.

Inside the worker each chunk is one inference tick: windows that close in
it -- across all of the shard's flows -- are buffered and pushed through the
per-metric forests in a single vectorized call
(:meth:`StreamingQoEPipeline.push_chunk
<repro.core.streaming.StreamingQoEPipeline.push_chunk>`), which is where
cross-flow batched inference happens.  Idle eviction runs the same
amortized sweep as :class:`~repro.monitor.QoEMonitor`, driven by the
shard's stream time.
"""

from __future__ import annotations

import json
import math
import traceback
from time import perf_counter

from repro.core.config import PipelineConfig
from repro.core.pipeline import QoEPipeline
from repro.core.streaming import StreamingQoEPipeline
from repro.monitor import IdleEvictionSchedule
from repro.net.block import PacketBlock
from repro.net.estwire import EstimateBatch
from repro.obs.config import ObsConfig
from repro.obs.registry import MetricsRegistry, ingest_transport_stats

__all__ = ["ShardWorker", "shard_worker_main"]

#: Default bound on assumed cross-flow source disorder (seconds) used for the
#: fan-in watermarks; the cross-flow analogue of the engine's per-flow
#: ``reorder_depth``.  ``None`` in the worker means "derive from the config".
DEFAULT_NEW_FLOW_SLACK_WINDOWS = 2.0


class _WorkerChannel:
    """The worker's output queue with the linear protocol enforced.

    ``(progress|est)* -> done | error``: once :meth:`done` has been sent the
    shard is finished on the parent side (its fan-in watermark is pinned at
    ``+inf``), so a late ``progress`` or ``est`` token would be a protocol
    bug that the fan-in could only mis-order -- raise here, at the source,
    instead.
    """

    def __init__(self, shard_id: int, out_queue) -> None:
        self.shard_id = shard_id
        self._out_queue = out_queue
        self.done_sent = False
        #: The worker's :class:`~repro.obs.registry.MetricsRegistry` (set by
        #: ``shard_worker_main`` when observability is on).  Deltas are taken
        #: *here*, at the single outbound choke point, so a delta is computed
        #: exactly when -- and only when -- a message actually ships.
        self.obs: MetricsRegistry | None = None

    def _with_delta(self, load: dict | None) -> dict | None:
        if self.obs is None:
            return load
        delta = self.obs.delta()
        if delta is None:
            return load
        load = dict(load) if load is not None else {}
        load["metrics"] = delta
        return load

    def progress(self, items, low_watermark, load: dict | None = None) -> None:
        if self.done_sent:
            raise RuntimeError(
                f"shard {self.shard_id} attempted to emit progress after done"
            )
        self._out_queue.put(
            ("progress", self.shard_id, items, low_watermark, self._with_delta(load))
        )

    def estimates_ready(self, load: dict | None = None) -> None:
        """Announce one filled return-ring slot (the reverse slot token)."""
        if self.done_sent:
            raise RuntimeError(
                f"shard {self.shard_id} attempted to emit progress after done"
            )
        self._out_queue.put(("est", self.shard_id, self._with_delta(load)))

    def migrated(self, epoch: int, parts, bound, counted) -> None:
        """Reply to ``migrate_out``: the drained flow pair, ready to re-home."""
        if self.done_sent:
            raise RuntimeError(
                f"shard {self.shard_id} attempted to emit a migration after done"
            )
        self._out_queue.put(("migrated", self.shard_id, epoch, parts, bound, counted))

    def migrate_ack(self, epoch: int) -> None:
        """Reply to ``migrate_in``: the flow pair is live on this shard."""
        if self.done_sent:
            raise RuntimeError(
                f"shard {self.shard_id} attempted to emit a migration after done"
            )
        self._out_queue.put(("migrate_ack", self.shard_id, epoch))

    def done(self, items, stats) -> None:
        if self.done_sent:
            raise RuntimeError(f"shard {self.shard_id} reported done twice")
        self.done_sent = True
        if self.obs is not None:
            delta = self.obs.delta()
            if delta is not None:
                stats = dict(stats)
                stats["metrics"] = delta
        self._out_queue.put(("done", self.shard_id, items, stats))

    def error(self, trace: str) -> None:
        self._out_queue.put(("error", self.shard_id, trace))


class _EstimateReturn:
    """The worker's estimate return path: ring batcher with queue fallback.

    In ring mode each tick's emissions are flat-encoded
    (:class:`~repro.net.estwire.EstimateBatch`) and buffered; the pending
    batches are then packed into **one** return-ring slot -- two semaphore
    ops total, announced by a single ``("est", shard_id)`` token -- when the
    tick's low watermark advances past everything already shipped, when the
    next batch would overflow the slot, or at end of stream.  The low
    watermark is window-grid quantized, so sub-window ticks (the common case
    for small chunk sizes) ride along in the same slot instead of paying
    per-tick semaphore ops, and the fan-in still sees every watermark
    advance the classic path would have reported.

    Batches the codec cannot encode (non-``FlowKey`` flows, exotic label
    types) fall back to the classic pickled ``progress`` message -- counted
    in :meth:`stats` -- so output never depends on the transport.
    """

    def __init__(
        self,
        channel: _WorkerChannel,
        ring,
        batch_slots: bool = True,
        obs: MetricsRegistry | None = None,
    ) -> None:
        self._channel = channel
        self._ring = ring
        self._batch_slots = batch_slots
        self._obs = obs
        self._pending: list[tuple[int, EstimateBatch]] = []
        self._pending_cost = 0
        self._pending_watermark = -math.inf
        self._shipped_watermark = -math.inf
        self._queue_fallbacks = 0
        self._last_load: dict | None = None

    @property
    def ring_mode(self) -> bool:
        return self._ring is not None

    def emit(self, items, low_watermark, load: dict | None = None) -> None:
        """One tick's output: buffer it, flush, or fall back as appropriate."""
        if load is not None:
            self._last_load = load
        if self._ring is None:
            self._channel.progress(items, low_watermark, load)
            return
        advanced = low_watermark is not None and low_watermark > max(
            self._shipped_watermark, self._pending_watermark
        )
        if not items and not advanced:
            # Nothing the fan-in could act on: no estimates, no watermark
            # progress.  The classic path sent these anyway; here they would
            # only burn slot segments.
            return
        try:
            batches = self._encoded(items, low_watermark)
        except ValueError:
            # Not flat-encodable (or a single estimate outsizing a slot):
            # flush first so the queue message cannot overtake ring slots
            # already filled, then let pickle carry it.
            self.flush()
            self._queue_fallbacks += 1
            self._channel.progress(items, low_watermark, load)
            return
        for size, batch in batches:
            cost = self._ring.segment_cost(size)
            if self._pending and self._pending_cost + cost > self._ring.slot_bytes:
                self.flush()
            self._pending.append((size, batch))
            self._pending_cost += cost
        if low_watermark is not None and low_watermark > self._pending_watermark:
            self._pending_watermark = low_watermark
        if advanced or not self._batch_slots:
            self.flush()

    def _encoded(self, items, low_watermark) -> list[tuple[int, EstimateBatch]]:
        """Flat-encode ``items`` into slot-sized batches.

        Pure (no batcher state is touched), so a :class:`ValueError` from an
        un-encodable item can never leave half a tick in the pending list --
        the caller falls back with the *whole* tick exactly once.
        """
        batch = EstimateBatch.from_estimates(items, low_watermark)
        size = batch.byte_size()
        if self._ring.segment_cost(size) <= self._ring.slot_bytes:
            return [(size, batch)]
        if len(items) <= 1:
            raise ValueError("a single estimate outsizes a return-ring slot")
        mid = len(items) // 2
        return self._encoded(items[:mid], low_watermark) + self._encoded(
            items[mid:], low_watermark
        )

    def flush(self) -> None:
        """Pack every pending batch into one return-ring slot and announce it."""
        if not self._pending:
            return
        payloads = [(size, batch.write_into) for size, batch in self._pending]
        started = perf_counter() if self._obs is not None else 0.0
        # Blocking push: the parent frees return slots whenever it pumps its
        # output queue, which it does inside every one of its own blocking
        # loops, and an aborting parent terminates the worker outright.
        self._ring.try_push_segments(payloads, timeout=None)
        if self._obs is not None:
            self._obs.time_stage("ring_return", started)
        self._channel.estimates_ready(self._last_load)
        if self._pending_watermark > self._shipped_watermark:
            self._shipped_watermark = self._pending_watermark
        self._pending = []
        self._pending_cost = 0

    def stats(self) -> dict:
        """Reverse-path transport counters for the shard's ``done`` stats."""
        stats = dict(self._ring.transport_stats()) if self._ring is not None else {}
        stats["queue_fallbacks"] = self._queue_fallbacks
        return stats


def shard_worker_main(
    shard_id: int,
    pipeline_payload: str,
    config_dict: dict | None,
    new_flow_slack_s: float | None,
    in_queue,
    out_queue,
    ring_handle=None,
    return_handle=None,
    batch_slots: bool = True,
    obs_dict: dict | None = None,
) -> None:
    """Worker process entry point (module-level, hence spawn-picklable)."""
    channel = _WorkerChannel(shard_id, out_queue)
    ring = None
    return_ring = None
    try:
        if ring_handle is not None:
            ring = ring_handle.attach()
        if return_handle is not None:
            return_ring = return_handle.attach()
        # The worker's own registry; crosses the spawn boundary as the
        # ObsConfig dict so buckets are fixed fleet-wide before any worker
        # records a sample.
        obs = MetricsRegistry(ObsConfig.from_dict(obs_dict)) if obs_dict is not None else None
        channel.obs = obs
        returns = _EstimateReturn(channel, return_ring, batch_slots=batch_slots, obs=obs)
        pipeline = QoEPipeline.from_payload(json.loads(pipeline_payload))
        config = (
            PipelineConfig.from_dict(config_dict) if config_dict is not None else pipeline.config
        )
        if new_flow_slack_s is None:
            new_flow_slack_s = DEFAULT_NEW_FLOW_SLACK_WINDOWS * config.window_s
        engine = StreamingQoEPipeline(pipeline, config=config, obs=obs)
        idle_timeout = config.idle_timeout_s
        eviction = IdleEvictionSchedule(idle_timeout)
        newest_ts: float | None = None
        n_packets = 0
        n_evicted = 0
        evicted_keys: set = set()
        # Flow-count ownership ledger (see the module docstring): flows that
        # left but are still counted here, and flows that live here but are
        # counted by an earlier home.
        migrated_out_keys: set = set()
        foreign_keys: set = set()

        def consume(chunk, is_block: bool) -> None:
            """One inference tick: push, sweep idle flows, emit the output."""
            nonlocal newest_ts, n_packets, n_evicted
            n_packets += len(chunk)
            if is_block:
                emitted = engine.push_block(chunk)
            else:
                emitted = engine.push_chunk(chunk)
            if idle_timeout is not None and len(chunk):
                if is_block:
                    chunk_newest = float(chunk.timestamps.max())
                else:
                    chunk_newest = max(packet.timestamp for packet in chunk)
                if newest_ts is None or chunk_newest > newest_ts:
                    newest_ts = chunk_newest
                if eviction.due(newest_ts):
                    evicted = engine.evict_idle(idle_timeout)
                    sweep_flows = {item.flow for item in evicted}
                    n_evicted += len(sweep_flows)
                    evicted_keys.update(sweep_flows)
                    emitted.extend(evicted)
            returns.emit(emitted, engine.low_watermark(new_flow_slack_s), engine.load_stats())

        def migrate_out(key, epoch: int) -> None:
            """Drain the canonical pair of ``key`` and ship it to the parent.

            Residual estimates flush first (under this shard's current
            watermark, which still covers the flow), then both unidirectional
            streams are snapshotted and removed.  ``counted`` lists every
            direction whose flow count stays owned elsewhere -- by this shard
            (it saw the flow first) or by an even earlier home.
            """
            returns.flush()
            parts: list[tuple] = []
            bounds: list[float] = []
            counted: list = []
            pair = (key,) if key.reversed() == key else (key, key.reversed())
            for ukey in pair:
                dumped = engine.dump_flow(ukey)
                if dumped is not None:
                    payload, bound = dumped
                    parts.append((ukey, payload))
                    bounds.append(bound)
                if ukey in foreign_keys:
                    counted.append(ukey)
                elif (
                    dumped is not None
                    or ukey in evicted_keys
                    or ukey in migrated_out_keys
                ):
                    migrated_out_keys.add(ukey)
                    counted.append(ukey)
            channel.migrated(epoch, parts, min(bounds) if bounds else None, counted)

        def migrate_in(epoch: int, parts, counted) -> None:
            """Restore a migrated pair and acknowledge once it is live."""
            # Ship pending pre-restore batches first: their watermarks are
            # stale the moment the pair is live, and the parent lifts the
            # migration's fan-in fence on the first watermark it sees after
            # this ack -- which must therefore be a post-restore one.
            returns.flush()
            for ukey, payload in parts:
                engine.load_flow(ukey, payload)
            foreign_keys.update(counted)
            channel.migrate_ack(epoch)

        while True:
            message = in_queue.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "shm":
                # The paired slot is guaranteed pending: the parent releases
                # the slot's ready semaphore before enqueueing the token, and
                # both sides walk ring slots in token order.  Each segment is
                # one routed tick, consumed exactly as if it had arrived in
                # its own message -- slot batching changes wire granularity,
                # never the tick sequence.
                segments = ring.pop_segments()
                try:
                    for segment in segments:
                        consume(PacketBlock.read_from(segment), True)
                finally:
                    # Consumed: push_block copied everything it keeps, the
                    # eviction timestamp is a scalar, and the decoded blocks
                    # died with consume's frame.  Drop the views, then
                    # recycle the slot for the parent.
                    segments = None
                    ring.release()
            elif kind == "migrate_out":
                migrate_out(message[1], message[2])
            elif kind == "migrate_in":
                migrate_in(message[2], message[3], message[4])
            else:
                consume(message[1], kind == "block")
        final_load = engine.load_stats()
        tail = engine.flush()
        if returns.ring_mode:
            returns.emit(tail, None)
            returns.flush()
            tail = []
        stats = {
            "n_packets": n_packets,
            "n_flows": len(
                migrated_out_keys | ((evicted_keys | set(engine.flows)) - foreign_keys)
            ),
            "n_evicted_flows": n_evicted,
            "load": final_load,
        }
        if returns.ring_mode:
            reverse = returns.stats()
            stats["transport"] = {"reverse": reverse}
            if obs is not None:
                # Mirror the reverse transport counters into the registry so
                # the fleet view matches MonitorReport.transport exactly; the
                # increments ride the done message's delta.
                ingest_transport_stats(obs, reverse, "reverse", shard_id)
        channel.done(tail, stats)
    except BaseException:
        channel.error(traceback.format_exc())
    finally:
        if ring is not None:
            ring.close()
        if return_ring is not None:
            return_ring.close()


class ShardWorker:
    """Parent-side handle of one shard worker process.

    Owns the shard's bounded input queue (back-pressure: a slow shard slows
    the router rather than ballooning memory) and the process object.  All
    construction arguments are the wire-format pieces
    ``shard_worker_main`` needs; nothing process-unsafe is retained.
    """

    def __init__(
        self,
        shard_id: int,
        pipeline_payload: str,
        config: PipelineConfig | None,
        ctx,
        out_queue,
        queue_depth: int = 8,
        new_flow_slack_s: float | None = None,
        ring=None,
        return_ring=None,
        batch_slots: bool = True,
        obs_dict: dict | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.in_queue = ctx.Queue(maxsize=queue_depth)
        #: The shard's shared-memory block rings (``None`` on the queue
        #: transports).  The parent produces into ``ring`` and consumes from
        #: ``return_ring``; the worker attaches the opposite sides from the
        #: handles passed in its arguments.
        self.ring = ring
        self.return_ring = return_ring
        self.process = ctx.Process(
            target=shard_worker_main,
            args=(
                shard_id,
                pipeline_payload,
                config.to_dict() if config is not None else None,
                new_flow_slack_s,
                self.in_queue,
                out_queue,
                ring.handle() if ring is not None else None,
                return_ring.handle() if return_ring is not None else None,
                batch_slots,
                obs_dict,
            ),
            daemon=True,
            name=f"qoe-shard-{shard_id}",
        )

        self._started = False

    def start(self) -> None:
        self.process.start()
        self._started = True

    @property
    def alive(self) -> bool:
        return self._started and self.process.is_alive()

    def join(self, timeout: float | None = None) -> None:
        # Guarded: cleanup after a failed start() (e.g. the spawn bootstrap
        # guard firing in a __main__-less script) must not cascade.
        if self._started:
            self.process.join(timeout)

    def terminate(self) -> None:
        if self._started and self.process.is_alive():
            self.process.terminate()

    def release_queues(self) -> None:
        """Detach from the input queue without waiting for its feeder thread.

        After an abort the worker may never drain its queue; letting the
        feeder thread flush to a full pipe with no reader would block the
        parent's interpreter exit.  Unsent chunks are irrelevant by then.
        """
        self.in_queue.cancel_join_thread()
        self.in_queue.close()
