"""Empirical CDF helpers for the paper's distribution figures (1, 2, A.1, A.2)."""

from __future__ import annotations

import numpy as np

__all__ = ["empirical_cdf", "cdf_table", "fraction_at_or_below"]


def empirical_cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_fractions)`` for plotting a CDF."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot compute a CDF of an empty sample")
    ordered = np.sort(values)
    fractions = np.arange(1, len(ordered) + 1) / len(ordered)
    return ordered, fractions


def fraction_at_or_below(values, threshold: float) -> float:
    """CDF evaluated at ``threshold``: P(X <= threshold)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot evaluate a CDF of an empty sample")
    return float(np.mean(values <= threshold))


def cdf_table(values, points: list[float] | None = None, n_points: int = 11) -> list[tuple[float, float]]:
    """A compact ``(value, cdf)`` table, either at given ``points`` or at
    evenly spaced quantiles (for text rendering of CDF figures)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot compute a CDF of an empty sample")
    if points is not None:
        return [(float(p), fraction_at_or_below(values, p)) for p in points]
    quantiles = np.linspace(0.0, 1.0, n_points)
    return [(float(np.quantile(values, q)), float(q)) for q in quantiles]
