"""Flat-buffer codec for per-flow streaming state: the migration wire format.

Elastic sharding (PR 7) moves a *live* flow between shard workers without
disturbing the determinism contract: the old shard drains the flow into a
snapshot, the new shard restores it, and pushes resume exactly where they
left off.  This module is that snapshot — one
:class:`~repro.core.streaming._FlowStream` (reorder buffer / delay line,
frame-assembler lookback state, open-window feature accumulators and frame
buckets, window cursor and watermark) encoded into one contiguous
little-endian buffer in the :mod:`~repro.net.estwire` style.

Layout (every section padded to an 8-byte boundary)::

    header | scalars | meta JSON | pending_ts | pending_seqs | pending_sizes |
    acc_sizes | acc_iats | acc_unique | frame_indices | frame_windows |
    frame_open | frame_n_packets | frame_size_bytes | frame_raw_bytes |
    frame_start_ts | frame_end_ts | recent_ts | recent_sizes | recent_frames

The header is ``_HEADER`` (magic, version, flags, reorder-buffer row count,
meta length).  Every float scalar and column is raw ``<f8`` — nothing is
formatted or re-parsed — so accumulator state round-trips
**bit-identically**, NaN and ±inf included.  The meta blob carries the flow
key, the engine-level :class:`~repro.net.flows.FlowStats` counters, and the
variable-section row counts.

Buffered packets degrade to ``(timestamp, payload_size)`` rows on restore —
exactly the :class:`~repro.net.block._BlockRow` degradation the columnar
transport already applies — which is value-equivalent for everything the
estimator computes (assembly compares ``payload_size``; features read
``media_payload_size`` / ``timestamp``).  Frames travel as one aggregate
row each (version 2: ``n_packets`` / ``size_bytes`` / ``raw_size_bytes`` /
``start_time`` / ``end_time``), matching the aggregate-only frames the
vectorized assembler produces — per-packet frame columns no longer exist.
Frame-assembler object identity (the lookback deque references the *same*
open-frame objects as the open table) is rebuilt structurally from the
``recent_frames`` column.

A snapshot only captures state that is stable between engine ticks;
:meth:`FlowSnapshot.from_stream` refuses mid-tick streams
(``trigger_pos is not None``), and :meth:`apply_to` refuses mode or
window-grid mismatches so a snapshot can never be replayed into an engine
that would interpret it differently.
"""

from __future__ import annotations

import json
import struct
from collections import deque

import numpy as np

from repro.core.features import IPUDPFeatureAccumulator
from repro.core.frame_assembly import AssembledFrame
from repro.net.block import _BlockRow
from repro.net.flows import FlowKey, FlowStats

__all__ = ["FlowSnapshot"]

_MAGIC = b"FLW1"
_VERSION = 2
#: magic, version, flags, n_pending (reorder-buffer rows), meta_len.
_HEADER = struct.Struct("<4sHHqq")

_FLAG_TRAINED = 1 << 0
_FLAG_WATERMARK = 1 << 1
_FLAG_LAST_SEEN = 1 << 2
_FLAG_ACC = 1 << 3
_FLAG_ACC_TS = 1 << 4

#: Fixed scalar section: window_s, start, watermark, last_seen,
#: acc_last_timestamp, acc_byte_sum, acc_size_min, acc_size_max (doubles);
#: seq, next_window, acc_index, acc_n, acc_microbursts, asm_next_index
#: (signed 64-bit).  112 bytes, 8-aligned.
_SCALARS = struct.Struct("<8d6q")

_F8 = np.dtype("<f8")
_I8 = np.dtype("<i8")
_I1 = np.dtype("<i1")


def _pad8(n: int) -> int:
    """Round ``n`` up to the next multiple of 8 (section alignment)."""
    return (n + 7) & ~7


def _flow_to_wire(flow: FlowKey | None) -> list | None:
    if flow is None:
        return None
    return [flow.src, flow.src_port, flow.dst, flow.dst_port, flow.protocol]


def _flow_from_wire(row: list | None) -> FlowKey | None:
    if row is None:
        return None
    return FlowKey(*row)


class FlowSnapshot:
    """A captured :class:`~repro.core.streaming._FlowStream`, codec included.

    Construct with :meth:`from_stream` (origin shard) or :meth:`read_from`
    (destination shard); ``__init__`` is the trusted field-level constructor
    shared by both and performs no validation or copying.  Apply to a
    freshly created stream of the *same* pipeline configuration with
    :meth:`apply_to`.
    """

    __slots__ = (
        "flow",
        "stats",
        "trained",
        "window_s",
        "start",
        "seq",
        "next_window",
        "watermark",
        "last_seen",
        "pending_ts",
        "pending_seqs",
        "pending_sizes",
        "acc_index",
        "acc_n",
        "acc_byte_sum",
        "acc_size_min",
        "acc_size_max",
        "acc_microbursts",
        "acc_last_timestamp",
        "acc_sizes",
        "acc_iats",
        "acc_unique",
        "asm_next_index",
        "frame_indices",
        "frame_windows",
        "frame_open",
        "frame_n_packets",
        "frame_size_bytes",
        "frame_raw_bytes",
        "frame_start_ts",
        "frame_end_ts",
        "recent_ts",
        "recent_sizes",
        "recent_frames",
        "_meta_cache",
    )

    def __init__(
        self,
        flow: FlowKey | None,
        stats: tuple | None,
        trained: bool,
        window_s: float,
        start: float,
        seq: int,
        next_window: int,
        watermark: float | None,
        last_seen: float | None,
        pending_ts: np.ndarray,
        pending_seqs: np.ndarray,
        pending_sizes: np.ndarray,
        acc_index: int,
        acc_n: int,
        acc_byte_sum: float,
        acc_size_min: float,
        acc_size_max: float,
        acc_microbursts: int,
        acc_last_timestamp: float | None,
        acc_sizes: np.ndarray,
        acc_iats: np.ndarray,
        acc_unique: np.ndarray,
        asm_next_index: int,
        frame_indices: np.ndarray,
        frame_windows: np.ndarray,
        frame_open: np.ndarray,
        frame_n_packets: np.ndarray,
        frame_size_bytes: np.ndarray,
        frame_raw_bytes: np.ndarray,
        frame_start_ts: np.ndarray,
        frame_end_ts: np.ndarray,
        recent_ts: np.ndarray,
        recent_sizes: np.ndarray,
        recent_frames: np.ndarray,
    ) -> None:
        self.flow = flow
        self.stats = stats
        self.trained = trained
        self.window_s = window_s
        self.start = start
        self.seq = seq
        self.next_window = next_window
        self.watermark = watermark
        self.last_seen = last_seen
        self.pending_ts = pending_ts
        self.pending_seqs = pending_seqs
        self.pending_sizes = pending_sizes
        self.acc_index = acc_index
        self.acc_n = acc_n
        self.acc_byte_sum = acc_byte_sum
        self.acc_size_min = acc_size_min
        self.acc_size_max = acc_size_max
        self.acc_microbursts = acc_microbursts
        self.acc_last_timestamp = acc_last_timestamp
        self.acc_sizes = acc_sizes
        self.acc_iats = acc_iats
        self.acc_unique = acc_unique
        self.asm_next_index = asm_next_index
        self.frame_indices = frame_indices
        self.frame_windows = frame_windows
        self.frame_open = frame_open
        self.frame_n_packets = frame_n_packets
        self.frame_size_bytes = frame_size_bytes
        self.frame_raw_bytes = frame_raw_bytes
        self.frame_start_ts = frame_start_ts
        self.frame_end_ts = frame_end_ts
        self.recent_ts = recent_ts
        self.recent_sizes = recent_sizes
        self.recent_frames = recent_frames
        self._meta_cache: bytes | None = None

    # -- capture ---------------------------------------------------------------

    @classmethod
    def from_stream(
        cls, flow: FlowKey | None, stream: _FlowStream, stats: FlowStats | None = None
    ) -> "FlowSnapshot":
        """Capture one live ``_FlowStream`` (does not mutate the stream).

        ``stats`` is the engine-level flow-table entry that travels with the
        flow so the destination keeps counting packets/bytes from the right
        baseline.
        """
        if stream.trigger_pos is not None:
            raise RuntimeError("cannot snapshot a flow mid-tick (trigger_pos set)")
        trained = stream.assembler is None

        pending = sorted(stream._pending)
        pending_ts = np.array([entry[0] for entry in pending], dtype=_F8)
        pending_seqs = np.array([entry[1] for entry in pending], dtype=_I8)
        pending_sizes = np.array([entry[2].payload_size for entry in pending], dtype=_I8)

        acc = stream._acc
        if acc is not None:
            acc_state = dict(
                acc_index=stream._acc_index,
                acc_n=acc.n,
                acc_byte_sum=acc.byte_sum,
                acc_size_min=acc.size_min,
                acc_size_max=acc.size_max,
                acc_microbursts=acc.microbursts,
                acc_last_timestamp=acc._last_timestamp,
                acc_sizes=np.array(acc._sizes, dtype=_F8),
                acc_iats=np.array(acc._iats, dtype=_F8),
                acc_unique=np.array(sorted(acc.unique_sizes), dtype=_I8),
            )
        else:
            acc_state = dict(
                acc_index=-1,
                acc_n=0,
                acc_byte_sum=0.0,
                acc_size_min=0.0,
                acc_size_max=0.0,
                acc_microbursts=0,
                acc_last_timestamp=None,
                acc_sizes=np.empty(0, dtype=_F8),
                acc_iats=np.empty(0, dtype=_F8),
                acc_unique=np.empty(0, dtype=_I8),
            )

        frame_indices: list[int] = []
        frame_windows: list[int] = []
        frame_open: list[int] = []
        frame_n_packets: list[int] = []
        frame_size_bytes: list[int] = []
        frame_raw_bytes: list[int] = []
        frame_start_ts: list[float] = []
        frame_end_ts: list[float] = []
        recent_ts: list[float] = []
        recent_sizes: list[int] = []
        recent_frames: list[int] = []
        asm_next_index = 0
        if not trained:
            def record(frame: AssembledFrame, window: int, is_open: bool) -> None:
                frame_indices.append(frame.frame_index)
                frame_windows.append(window)
                frame_open.append(1 if is_open else 0)
                frame_n_packets.append(frame.n_packets)
                frame_size_bytes.append(frame.size_bytes)
                frame_raw_bytes.append(frame.raw_size_bytes)
                frame_start_ts.append(frame.start_time)
                frame_end_ts.append(frame.end_time)

            for window, frames in stream._frame_buckets.items():
                for frame in frames:
                    record(frame, window, is_open=False)
            assembler = stream.assembler
            for frame in assembler._open.values():
                record(frame, -1, is_open=True)
            for ts, size, frame in assembler._recent:
                recent_ts.append(ts)
                recent_sizes.append(size)
                recent_frames.append(frame.frame_index)
            asm_next_index = assembler._next_index

        return cls(
            flow=flow,
            stats=None
            if stats is None
            else (stats.packets, stats.bytes, stats.first_seen, stats.last_seen),
            trained=trained,
            window_s=stream.window_s,
            start=stream.start,
            seq=stream._seq,
            next_window=stream._next_window,
            watermark=stream._watermark,
            last_seen=stream.last_seen,
            pending_ts=pending_ts,
            pending_seqs=pending_seqs,
            pending_sizes=pending_sizes,
            asm_next_index=asm_next_index,
            frame_indices=np.array(frame_indices, dtype=_I8),
            frame_windows=np.array(frame_windows, dtype=_I8),
            frame_open=np.array(frame_open, dtype=_I1),
            frame_n_packets=np.array(frame_n_packets, dtype=_I8),
            frame_size_bytes=np.array(frame_size_bytes, dtype=_I8),
            frame_raw_bytes=np.array(frame_raw_bytes, dtype=_I8),
            frame_start_ts=np.array(frame_start_ts, dtype=_F8),
            frame_end_ts=np.array(frame_end_ts, dtype=_F8),
            recent_ts=np.array(recent_ts, dtype=_F8),
            recent_sizes=np.array(recent_sizes, dtype=_I8),
            recent_frames=np.array(recent_frames, dtype=_I8),
            **acc_state,
        )

    # -- restore ---------------------------------------------------------------

    def apply_to(self, stream: _FlowStream) -> None:
        """Load this snapshot into a freshly created ``_FlowStream``.

        The stream must come from ``_make_stream`` on an engine with the same
        pipeline configuration (mode and window grid are checked; everything
        else is the restoring engine's responsibility).
        """
        if (self.window_s != stream.window_s) or (self.start != stream.start):
            raise ValueError(
                "flow snapshot window grid mismatch: "
                f"snapshot ({self.window_s}, {self.start}) vs "
                f"stream ({stream.window_s}, {stream.start})"
            )
        trained_target = stream.assembler is None
        if self.trained != trained_target:
            raise ValueError(
                f"flow snapshot mode mismatch: snapshot is "
                f"{'trained' if self.trained else 'heuristic'}, stream is "
                f"{'trained' if trained_target else 'heuristic'}"
            )

        stream._seq = self.seq
        stream._next_window = self.next_window
        stream._watermark = self.watermark
        stream.last_seen = self.last_seen
        # Stored sorted by (timestamp, seq) => a valid heap as-is, and pop
        # order matches the origin's (the (ts, seq) order is total).
        stream._pending = [
            (float(ts), int(seq), _BlockRow(float(ts), int(size)))
            for ts, seq, size in zip(self.pending_ts, self.pending_seqs, self.pending_sizes)
        ]

        if self.trained:
            if self.acc_index >= 0 or len(self.acc_sizes):
                acc = IPUDPFeatureAccumulator(stream.window_s, classifier=stream.classifier)
                acc.n = self.acc_n
                acc.byte_sum = self.acc_byte_sum
                acc.size_min = self.acc_size_min
                acc.size_max = self.acc_size_max
                acc.unique_sizes = set(int(s) for s in self.acc_unique)
                acc.microbursts = self.acc_microbursts
                acc._last_timestamp = self.acc_last_timestamp
                acc._sizes = self.acc_sizes.tolist()
                acc._iats = self.acc_iats.tolist()
                stream._acc = acc
                stream._acc_index = self.acc_index
            return

        assembler = stream.assembler
        open_frames: dict[int, AssembledFrame] = {}
        for i in range(len(self.frame_indices)):
            frame = AssembledFrame._from_aggregates(
                frame_index=int(self.frame_indices[i]),
                n_packets=int(self.frame_n_packets[i]),
                size_bytes=int(self.frame_size_bytes[i]),
                raw_size_bytes=int(self.frame_raw_bytes[i]),
                start_time=float(self.frame_start_ts[i]),
                end_time=float(self.frame_end_ts[i]),
            )
            if self.frame_open[i]:
                open_frames[frame.frame_index] = frame
                assembler._open[frame.frame_index] = frame
            else:
                stream._frame_buckets.setdefault(int(self.frame_windows[i]), []).append(frame)
        recent: deque = deque()
        live: dict[int, int] = {}
        for ts, size, frame_index in zip(self.recent_ts, self.recent_sizes, self.recent_frames):
            frame = open_frames.get(int(frame_index))
            if frame is None:
                raise ValueError("corrupt flow snapshot: lookback row references a non-open frame")
            recent.append((float(ts), int(size), frame))
            live[frame.frame_index] = live.get(frame.frame_index, 0) + 1
        if set(live) != set(open_frames):
            raise ValueError("corrupt flow snapshot: open frame without a lookback reference")
        assembler._recent = recent
        assembler._live = live
        assembler._next_index = self.asm_next_index

    # -- flat-buffer codec -----------------------------------------------------

    def _columns(self) -> tuple[tuple[np.ndarray, np.dtype], ...]:
        return (
            (self.pending_ts, _F8),
            (self.pending_seqs, _I8),
            (self.pending_sizes, _I8),
            (self.acc_sizes, _F8),
            (self.acc_iats, _F8),
            (self.acc_unique, _I8),
            (self.frame_indices, _I8),
            (self.frame_windows, _I8),
            (self.frame_open, _I1),
            (self.frame_n_packets, _I8),
            (self.frame_size_bytes, _I8),
            (self.frame_raw_bytes, _I8),
            (self.frame_start_ts, _F8),
            (self.frame_end_ts, _F8),
            (self.recent_ts, _F8),
            (self.recent_sizes, _I8),
            (self.recent_frames, _I8),
        )

    def _codec_meta(self) -> bytes:
        """Flow identity, flow-table stats, and section counts as JSON."""
        if self._meta_cache is None:
            self._meta_cache = json.dumps(
                {
                    "flow": _flow_to_wire(self.flow),
                    "stats": None if self.stats is None else list(self.stats),
                    "counts": [
                        len(self.acc_sizes),
                        len(self.acc_iats),
                        len(self.acc_unique),
                        len(self.frame_indices),
                        len(self.recent_ts),
                    ],
                },
                separators=(",", ":"),
            ).encode()
        return self._meta_cache

    def byte_size(self) -> int:
        """Encoded size of this snapshot in the flat-buffer layout, in bytes."""
        size = _HEADER.size + _SCALARS.size + _pad8(len(self._codec_meta()))
        for values, dtype in self._columns():
            size += _pad8(len(values) * dtype.itemsize)
        return size

    def write_into(self, buf: _Buffer) -> int:
        """Encode this snapshot into ``buf``; returns the bytes written."""
        meta = self._codec_meta()
        total = self.byte_size()
        mv = memoryview(buf)
        if len(mv) < total:
            raise ValueError(f"buffer too small: need {total} bytes, have {len(mv)}")
        flags = 0
        if self.trained:
            flags |= _FLAG_TRAINED
        if self.watermark is not None:
            flags |= _FLAG_WATERMARK
        if self.last_seen is not None:
            flags |= _FLAG_LAST_SEEN
        if self.acc_index >= 0 or len(self.acc_sizes):
            flags |= _FLAG_ACC
        if self.acc_last_timestamp is not None:
            flags |= _FLAG_ACC_TS
        _HEADER.pack_into(mv, 0, _MAGIC, _VERSION, flags, len(self.pending_ts), len(meta))
        offset = _HEADER.size
        _SCALARS.pack_into(
            mv,
            offset,
            self.window_s,
            self.start,
            0.0 if self.watermark is None else self.watermark,
            0.0 if self.last_seen is None else self.last_seen,
            0.0 if self.acc_last_timestamp is None else self.acc_last_timestamp,
            self.acc_byte_sum,
            self.acc_size_min,
            self.acc_size_max,
            self.seq,
            self.next_window,
            self.acc_index,
            self.acc_n,
            self.acc_microbursts,
            self.asm_next_index,
        )
        offset += _SCALARS.size
        mv[offset : offset + len(meta)] = meta
        offset += _pad8(len(meta))
        for values, dtype in self._columns():
            n = len(values)
            if n:
                dest = np.frombuffer(mv, dtype=dtype, count=n, offset=offset)
                dest[:] = values
            offset += _pad8(n * dtype.itemsize)
        return total

    def to_bytes(self) -> bytes:
        """Encode into a fresh buffer (convenience over :meth:`write_into`)."""
        buf = bytearray(self.byte_size())
        self.write_into(buf)
        return bytes(buf)

    @classmethod
    def read_from(cls, buf: _Buffer) -> "FlowSnapshot":
        """Decode a snapshot from ``buf``; validates structure, raises ValueError."""
        mv = memoryview(buf)
        if len(mv) < _HEADER.size + _SCALARS.size:
            raise ValueError("flow snapshot buffer shorter than its header")
        magic, version, flags, n_pending, meta_len = _HEADER.unpack_from(mv, 0)
        if magic != _MAGIC:
            raise ValueError(f"bad flow snapshot magic: {magic!r}")
        if version != _VERSION:
            raise ValueError(f"unsupported flow snapshot version: {version}")
        if n_pending < 0 or meta_len < 0:
            raise ValueError("corrupt flow snapshot header: negative count")
        offset = _HEADER.size
        scalars = _SCALARS.unpack_from(mv, offset)
        offset += _SCALARS.size
        (
            window_s,
            start,
            watermark,
            last_seen,
            acc_last_timestamp,
            acc_byte_sum,
            acc_size_min,
            acc_size_max,
            seq,
            next_window,
            acc_index,
            acc_n,
            acc_microbursts,
            asm_next_index,
        ) = scalars
        if len(mv) < offset + meta_len:
            raise ValueError("flow snapshot buffer truncated inside the meta blob")
        try:
            meta = json.loads(bytes(mv[offset : offset + meta_len]).decode())
            counts = meta["counts"]
            flow = _flow_from_wire(meta["flow"])
            stats = meta["stats"]
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(f"corrupt flow snapshot meta blob: {exc}") from exc
        if len(counts) != 5 or any((not isinstance(c, int)) or c < 0 for c in counts):
            raise ValueError(f"corrupt flow snapshot meta: bad section counts {counts!r}")
        n_acc_sizes, n_acc_iats, n_acc_unique, n_frames, n_recent = counts
        offset += _pad8(meta_len)

        lengths = (
            (n_pending, _F8),
            (n_pending, _I8),
            (n_pending, _I8),
            (n_acc_sizes, _F8),
            (n_acc_iats, _F8),
            (n_acc_unique, _I8),
            (n_frames, _I8),
            (n_frames, _I8),
            (n_frames, _I1),
            (n_frames, _I8),
            (n_frames, _I8),
            (n_frames, _I8),
            (n_frames, _F8),
            (n_frames, _F8),
            (n_recent, _F8),
            (n_recent, _I8),
            (n_recent, _I8),
        )
        total = offset + sum(_pad8(n * dtype.itemsize) for n, dtype in lengths)
        if len(mv) < total:
            raise ValueError(
                f"flow snapshot buffer truncated: need {total} bytes, have {len(mv)}"
            )

        columns = []
        for n, dtype in lengths:
            columns.append(np.frombuffer(mv, dtype=dtype, count=n, offset=offset))
            offset += _pad8(n * dtype.itemsize)
        (
            pending_ts,
            pending_seqs,
            pending_sizes,
            acc_sizes,
            acc_iats,
            acc_unique,
            frame_indices,
            frame_windows,
            frame_open,
            frame_n_packets,
            frame_size_bytes,
            frame_raw_bytes,
            frame_start_ts,
            frame_end_ts,
            recent_ts,
            recent_sizes,
            recent_frames,
        ) = columns
        if n_frames and int(frame_n_packets.min()) < 1:
            raise ValueError("corrupt flow snapshot: empty assembled frame")

        return cls(
            flow=flow,
            stats=None if stats is None else tuple(stats),
            trained=bool(flags & _FLAG_TRAINED),
            window_s=window_s,
            start=start,
            seq=seq,
            next_window=next_window,
            watermark=watermark if flags & _FLAG_WATERMARK else None,
            last_seen=last_seen if flags & _FLAG_LAST_SEEN else None,
            pending_ts=pending_ts,
            pending_seqs=pending_seqs,
            pending_sizes=pending_sizes,
            acc_index=acc_index if flags & _FLAG_ACC else -1,
            acc_n=acc_n,
            acc_byte_sum=acc_byte_sum,
            acc_size_min=acc_size_min,
            acc_size_max=acc_size_max,
            acc_microbursts=acc_microbursts,
            acc_last_timestamp=acc_last_timestamp if flags & _FLAG_ACC_TS else None,
            acc_sizes=acc_sizes,
            acc_iats=acc_iats,
            acc_unique=acc_unique,
            asm_next_index=asm_next_index,
            frame_indices=frame_indices,
            frame_windows=frame_windows,
            frame_open=frame_open,
            frame_n_packets=frame_n_packets,
            frame_size_bytes=frame_size_bytes,
            frame_raw_bytes=frame_raw_bytes,
            frame_start_ts=frame_start_ts,
            frame_end_ts=frame_end_ts,
            recent_ts=recent_ts,
            recent_sizes=recent_sizes,
            recent_frames=recent_frames,
        )
