"""repro -- reproduction of "Estimating WebRTC Video QoE Metrics Without Using
Application Headers" (IMC 2023).

The package estimates per-second video QoE metrics (frame rate, bitrate,
frame jitter, resolution) of WebRTC video-conferencing sessions from passive
network measurements using **only IP/UDP headers**, and compares against
RTP-header baselines.  Because the original measurement environment (real VCA
clients, browser automation, household deployments) is not available offline,
the package also contains a full WebRTC traffic simulator, network emulator
and dataset builders that reproduce the relevant transport-level behaviour;
see DESIGN.md for the substitution rationale.

Quickstart::

    from repro import QoEPipeline, build_lab_dataset, LabDatasetConfig

    lab = build_lab_dataset(LabDatasetConfig(calls_per_vca=4))
    pipeline = QoEPipeline.for_vca("teams").train(lab["teams"])
    estimates = pipeline.estimate(lab["teams"][0].trace)
"""

from repro.core.pipeline import PipelineEstimate, QoEPipeline
from repro.core.streaming import StreamEstimate, StreamingQoEPipeline
from repro.core.estimators import IPUDPMLEstimator, RTPMLEstimator
from repro.core.heuristic import IPUDPHeuristic
from repro.core.rtp_heuristic import RTPHeuristic
from repro.core.media import MediaClassifier
from repro.core.evaluation import EvaluationDataset, compare_methods
from repro.datasets.lab import LabDatasetConfig, build_lab_dataset
from repro.datasets.realworld import RealWorldConfig, build_real_world_dataset
from repro.datasets.synthetic import SweepConfig, build_impairment_sweep
from repro.net.trace import PacketTrace
from repro.netem.conditions import ConditionSchedule, NetworkCondition
from repro.webrtc.session import CallResult, SessionConfig, simulate_call

__version__ = "1.0.0"

__all__ = [
    "QoEPipeline",
    "PipelineEstimate",
    "StreamingQoEPipeline",
    "StreamEstimate",
    "IPUDPMLEstimator",
    "RTPMLEstimator",
    "IPUDPHeuristic",
    "RTPHeuristic",
    "MediaClassifier",
    "EvaluationDataset",
    "compare_methods",
    "LabDatasetConfig",
    "build_lab_dataset",
    "RealWorldConfig",
    "build_real_world_dataset",
    "SweepConfig",
    "build_impairment_sweep",
    "PacketTrace",
    "NetworkCondition",
    "ConditionSchedule",
    "SessionConfig",
    "CallResult",
    "simulate_call",
    "__version__",
]
