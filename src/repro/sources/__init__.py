"""Pluggable packet providers for the Source -> Engine -> Sink monitor API.

One protocol (:class:`~repro.sources.base.PacketSource`: iterate, get
packets in arrival order) and four implementations:

* :class:`~repro.sources.base.TraceSource` -- a materialized
  :class:`~repro.net.trace.PacketTrace`;
* :class:`~repro.sources.base.PcapSource` -- lazy record-by-record reading of
  an on-disk capture (O(window) end-to-end memory);
* :class:`~repro.sources.base.IteratorSource` -- any packet iterable, e.g. a
  live-capture generator;
* :class:`~repro.sources.merged.MergedSource` -- streaming k-way timestamp
  merge of several capture points.

:func:`~repro.sources.base.as_source` coerces traces / pcap paths / bare
iterables, so facade APIs accept any packet-shaped input.
"""

from repro.sources.base import (
    IteratorSource,
    PacketSource,
    PcapSource,
    TraceSource,
    as_source,
    iter_blocks,
)
from repro.sources.merged import MergedSource

__all__ = [
    "PacketSource",
    "IteratorSource",
    "TraceSource",
    "PcapSource",
    "MergedSource",
    "as_source",
    "iter_blocks",
]
