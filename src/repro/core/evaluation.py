"""Evaluation protocol: dataset assembly, cross validation, method comparison.

This module turns a list of simulated calls into the per-window samples the
paper evaluates on, and implements its protocol:

* ML methods are scored with 5-fold cross validation (out-of-fold
  predictions for every window);
* heuristics are scored directly on every window;
* frame rate and frame jitter use MAE, bitrate uses MRAE, resolution uses
  accuracy and confusion matrices;
* model transferability trains on one dataset (lab) and tests on another
  (real-world).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.estimators import (
    REGRESSION_METRICS,
    BaseMLEstimator,
    IPUDPMLEstimator,
    RTPMLEstimator,
)
from repro.core.heuristic import IPUDPHeuristic, estimates_from_frames
from repro.core.resolution import binner_for_vca
from repro.core.rtp_heuristic import RTPHeuristic
from repro.core.windows import match_windows_to_ground_truth
from repro.ml.metrics import (
    ErrorSummary,
    accuracy_score,
    mean_absolute_error,
    normalized_confusion_matrix,
    summarize_errors,
)
from repro.ml.model_selection import KFold
from repro.webrtc.profiles import get_profile
from repro.webrtc.session import CallResult

__all__ = [
    "METHOD_NAMES",
    "EvaluationDataset",
    "MethodErrors",
    "compare_methods",
    "cross_validated_predictions",
    "heuristic_predictions",
    "resolution_report",
    "transfer_mae",
    "feature_importance_report",
]

#: The four estimation methods compared throughout the evaluation.
METHOD_NAMES: tuple[str, ...] = ("rtp_ml", "ipudp_ml", "rtp_heuristic", "ipudp_heuristic")
#: Methods that can estimate resolution (the heuristics cannot).
RESOLUTION_METHODS: tuple[str, ...] = ("rtp_ml", "ipudp_ml")


@dataclass
class EvaluationDataset:
    """Per-window samples for one VCA and one environment."""

    vca: str
    environment: str
    window_s: int
    X_ipudp: np.ndarray
    X_rtp: np.ndarray
    ground_truth: dict[str, np.ndarray]
    heuristic_estimates: dict[str, dict[str, np.ndarray]]
    groups: np.ndarray
    resolution_labels: np.ndarray

    def __len__(self) -> int:
        return len(self.groups)

    @property
    def n_windows(self) -> int:
        return len(self.groups)

    @classmethod
    def from_calls(
        cls, calls: list[CallResult], window_s: int = 1, environment: str | None = None
    ) -> "EvaluationDataset":
        """Build the per-window dataset from simulated calls of a single VCA."""
        if not calls:
            raise ValueError("need at least one call")
        vcas = {call.vca for call in calls}
        if len(vcas) != 1:
            raise ValueError(f"all calls must belong to the same VCA, got {sorted(vcas)}")
        vca = calls[0].vca
        profile = get_profile(vca)
        if environment is None:
            environment = calls[0].config.environment

        ipudp_ml = IPUDPMLEstimator.for_profile(profile)
        rtp_ml = RTPMLEstimator.for_profile(profile, environment=environment)
        ipudp_heuristic = IPUDPHeuristic.for_profile(profile)
        rtp_heuristic = RTPHeuristic.for_profile(profile, environment=environment)
        binner = binner_for_vca(vca)

        X_ipudp_rows: list[np.ndarray] = []
        X_rtp_rows: list[np.ndarray] = []
        gt: dict[str, list[float]] = {metric: [] for metric in REGRESSION_METRICS}
        gt_heights: list[float] = []
        heuristics: dict[str, dict[str, list[float]]] = {
            "ipudp_heuristic": {metric: [] for metric in REGRESSION_METRICS},
            "rtp_heuristic": {metric: [] for metric in REGRESSION_METRICS},
        }
        groups: list[str] = []

        for call in calls:
            matched = match_windows_to_ground_truth(
                call.trace, call.ground_truth, window_s=window_s
            )
            if not matched:
                continue
            ipudp_frames = ipudp_heuristic.assemble(call.trace)
            rtp_frames = rtp_heuristic.assemble(call.trace)
            for sample in matched:
                window = sample.window
                X_ipudp_rows.append(ipudp_ml.features_for_window(window))
                X_rtp_rows.append(rtp_ml.features_for_window(window))
                gt["frame_rate"].append(sample.ground_truth.frames_received)
                gt["bitrate"].append(sample.ground_truth.bitrate_kbps)
                gt["frame_jitter"].append(sample.ground_truth.frame_jitter_ms)
                gt_heights.append(float(sample.ground_truth.frame_height))

                ip_est = estimates_from_frames(ipudp_frames, window.start, window.duration)
                rtp_est = estimates_from_frames(rtp_frames, window.start, window.duration)
                for metric in REGRESSION_METRICS:
                    heuristics["ipudp_heuristic"][metric].append(ip_est.metric(metric))
                    heuristics["rtp_heuristic"][metric].append(rtp_est.metric(metric))
                groups.append(call.config.call_id)

        if not groups:
            raise ValueError("no usable windows were produced from the provided calls")

        return cls(
            vca=vca,
            environment=environment,
            window_s=window_s,
            X_ipudp=np.vstack(X_ipudp_rows),
            X_rtp=np.vstack(X_rtp_rows),
            ground_truth={metric: np.array(values) for metric, values in gt.items()},
            heuristic_estimates={
                method: {metric: np.array(values) for metric, values in metrics.items()}
                for method, metrics in heuristics.items()
            },
            groups=np.array(groups),
            resolution_labels=binner.labels(gt_heights),
        )

    def features_for(self, method: str) -> np.ndarray:
        if method == "ipudp_ml":
            return self.X_ipudp
        if method == "rtp_ml":
            return self.X_rtp
        raise ValueError(f"{method!r} is not an ML method")

    def make_estimator(self, method: str, **kwargs) -> BaseMLEstimator:
        """A fresh, unfitted estimator of the requested ML method."""
        profile = get_profile(self.vca)
        if method == "ipudp_ml":
            return IPUDPMLEstimator.for_profile(profile, **kwargs)
        if method == "rtp_ml":
            return RTPMLEstimator.for_profile(profile, environment=self.environment, **kwargs)
        raise ValueError(f"{method!r} is not an ML method")


@dataclass(frozen=True)
class MethodErrors:
    """Error summary for one (method, metric) pair."""

    method: str
    metric: str
    summary: ErrorSummary
    predictions: np.ndarray = field(repr=False, default=None)
    ground_truth: np.ndarray = field(repr=False, default=None)


def cross_validated_predictions(
    dataset: EvaluationDataset,
    method: str,
    metric: str,
    n_splits: int = 5,
    random_state: int = 0,
    n_estimators: int = 30,
) -> np.ndarray:
    """Out-of-fold predictions for an ML method on one metric (5-fold CV)."""
    X = dataset.features_for(method)
    if metric == "resolution":
        y = dataset.resolution_labels
    else:
        y = dataset.ground_truth[metric]
    cv = KFold(n_splits=n_splits, shuffle=True, random_state=random_state)
    predictions = np.empty(len(y), dtype=object)
    for train_idx, test_idx in cv.split(X, y):
        estimator = dataset.make_estimator(method, n_estimators=n_estimators)
        estimator.fit(X[train_idx], {metric: y[train_idx]})
        fold_predictions = estimator.predict_metric(X[test_idx], metric)
        for i, value in zip(test_idx, fold_predictions):
            predictions[i] = value
    if metric == "resolution":
        return np.array([str(p) for p in predictions])
    return np.array([float(p) for p in predictions])


def heuristic_predictions(dataset: EvaluationDataset, method: str, metric: str) -> np.ndarray:
    """Per-window heuristic estimates (no training involved)."""
    if method not in dataset.heuristic_estimates:
        raise ValueError(f"{method!r} is not a heuristic method")
    if metric not in REGRESSION_METRICS:
        raise ValueError(f"heuristics do not estimate {metric!r}")
    return dataset.heuristic_estimates[method][metric]


def method_predictions(
    dataset: EvaluationDataset, method: str, metric: str, n_estimators: int = 30
) -> np.ndarray:
    """Predictions for any of the four methods on one metric."""
    if method in ("ipudp_ml", "rtp_ml"):
        return cross_validated_predictions(dataset, method, metric, n_estimators=n_estimators)
    return heuristic_predictions(dataset, method, metric)


def compare_methods(
    dataset: EvaluationDataset,
    metric: str,
    methods: tuple[str, ...] = METHOD_NAMES,
    n_estimators: int = 30,
) -> dict[str, MethodErrors]:
    """Error summaries for every method on one regression metric.

    This is the computation behind Figures 3, 6a, 6b and 10: signed error
    distributions (box plots) annotated with MAE (frame rate, frame jitter)
    or MRAE (bitrate).
    """
    if metric not in REGRESSION_METRICS:
        raise ValueError(f"compare_methods only handles regression metrics, got {metric!r}")
    y_true = dataset.ground_truth[metric]
    results: dict[str, MethodErrors] = {}
    for method in methods:
        if method in ("rtp_heuristic", "ipudp_heuristic"):
            y_pred = heuristic_predictions(dataset, method, metric)
        else:
            y_pred = cross_validated_predictions(dataset, method, metric, n_estimators=n_estimators)
        summary = summarize_errors(y_true, y_pred, relative=(metric == "bitrate"))
        results[method] = MethodErrors(
            method=method, metric=metric, summary=summary, predictions=y_pred, ground_truth=y_true
        )
    return results


@dataclass(frozen=True)
class ResolutionReport:
    """Accuracy and confusion matrix for resolution classification."""

    method: str
    accuracy: float
    labels: np.ndarray
    confusion: np.ndarray
    counts: np.ndarray


def resolution_report(
    dataset: EvaluationDataset, method: str = "ipudp_ml", n_estimators: int = 30
) -> ResolutionReport:
    """Resolution classification accuracy + confusion matrix (Tables 3, 4, A.3).

    Skips nothing: if the dataset only contains a single resolution class the
    accuracy is trivially 1.0, matching the paper's decision to skip accuracy
    computation for Webex real-world data.
    """
    if method not in RESOLUTION_METHODS:
        raise ValueError(f"resolution is only estimated by ML methods, got {method!r}")
    y_true = dataset.resolution_labels
    y_pred = cross_validated_predictions(dataset, method, "resolution", n_estimators=n_estimators)
    matrix, labels = normalized_confusion_matrix(y_true, y_pred)
    counts = np.array([int(np.sum(y_true == label)) for label in labels])
    return ResolutionReport(
        method=method,
        accuracy=accuracy_score(y_true, y_pred),
        labels=labels,
        confusion=matrix,
        counts=counts,
    )


def transfer_mae(
    train: EvaluationDataset,
    test: EvaluationDataset,
    method: str,
    metric: str,
    n_estimators: int = 30,
) -> float:
    """Train on one dataset, test on another (Tables 5, A.4, A.5).

    For resolution the returned value is ``1 - accuracy`` (an error rate) so
    that the "higher is worse" convention matches the MAE columns.
    """
    if method not in ("ipudp_ml", "rtp_ml"):
        raise ValueError("transferability is evaluated for ML methods only")
    X_train = train.features_for(method)
    X_test = test.features_for(method)
    if metric == "resolution":
        y_train = train.resolution_labels
        y_test = test.resolution_labels
    else:
        y_train = train.ground_truth[metric]
        y_test = test.ground_truth[metric]

    estimator = train.make_estimator(method, n_estimators=n_estimators)
    estimator.fit(X_train, {metric: y_train})
    predictions = estimator.predict_metric(X_test, metric)
    if metric == "resolution":
        # Unseen classes in the test set (e.g. Meet's 540p/720p in the wild)
        # count as errors, as they do in the paper's transfer analysis.
        return 1.0 - accuracy_score(y_test, predictions)
    return mean_absolute_error(y_test, predictions)


def feature_importance_report(
    dataset: EvaluationDataset,
    method: str,
    metric: str,
    k: int = 5,
    n_estimators: int = 30,
) -> list[tuple[str, float]]:
    """Top-k feature importances for one (method, metric) pair (Figures 5, 7, 9)."""
    estimator = dataset.make_estimator(method, n_estimators=n_estimators)
    X = dataset.features_for(method)
    if metric == "resolution":
        y = dataset.resolution_labels
    else:
        y = dataset.ground_truth[metric]
    estimator.fit(X, {metric: y})
    return estimator.top_features(metric, k=k)
