"""The paper's primary contribution: VCA QoE estimation from passive traffic.

Four estimation methods are implemented, matching Section 3:

* :class:`~repro.core.heuristic.IPUDPHeuristic` -- frame-boundary detection
  from packet sizes only (Algorithm 1), then frame rate / bitrate / frame
  jitter from the recovered frames.
* :class:`~repro.core.estimators.IPUDPMLEstimator` -- random forests over the
  14 IP/UDP features of Table 1.
* :class:`~repro.core.rtp_heuristic.RTPHeuristic` -- the RTP-timestamp +
  marker-bit baseline (Michel et al.-style).
* :class:`~repro.core.estimators.RTPMLEstimator` -- random forests over RTP
  header features plus flow statistics.

Supporting pieces: media classification (:mod:`repro.core.media`), windowing
(:mod:`repro.core.windows`), feature extraction (:mod:`repro.core.features`),
resolution binning (:mod:`repro.core.resolution`), the evaluation protocol
(:mod:`repro.core.evaluation`), the heuristic error taxonomy
(:mod:`repro.core.errors`), the end-to-end pipeline
(:mod:`repro.core.pipeline`) and its single-pass per-flow execution engine
(:mod:`repro.core.streaming`).
"""

from repro.core.config import PipelineConfig
from repro.core.estimators import IPUDPMLEstimator, RTPMLEstimator
from repro.core.features import (
    IPUDP_FEATURE_NAMES,
    RTP_FEATURE_NAMES,
    IPUDPFeatureAccumulator,
    extract_ipudp_features,
    extract_rtp_features,
)
from repro.core.frame_assembly import FrameAssembler, assemble_frames
from repro.core.heuristic import IPUDPHeuristic
from repro.core.media import (
    MediaClassificationAccumulator,
    MediaClassificationReport,
    MediaClassifier,
)
from repro.core.pipeline import QoEPipeline, PipelineEstimate
from repro.core.resolution import ResolutionBinner, TEAMS_RESOLUTION_BINS
from repro.core.rtp_heuristic import RTPHeuristic
from repro.core.streaming import StreamEstimate, StreamingQoEPipeline
from repro.core.windows import WindowedTrace, window_trace

__all__ = [
    "MediaClassifier",
    "MediaClassificationReport",
    "MediaClassificationAccumulator",
    "FrameAssembler",
    "assemble_frames",
    "IPUDPHeuristic",
    "RTPHeuristic",
    "IPUDPMLEstimator",
    "RTPMLEstimator",
    "extract_ipudp_features",
    "extract_rtp_features",
    "IPUDPFeatureAccumulator",
    "IPUDP_FEATURE_NAMES",
    "RTP_FEATURE_NAMES",
    "WindowedTrace",
    "window_trace",
    "ResolutionBinner",
    "TEAMS_RESOLUTION_BINS",
    "QoEPipeline",
    "PipelineEstimate",
    "PipelineConfig",
    "StreamingQoEPipeline",
    "StreamEstimate",
]
