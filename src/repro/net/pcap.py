"""Reader and writer for the classic libpcap capture format.

The paper's pipeline stores every call as a ``.pcap`` file captured with
tcpdump.  This module lets the reproduction persist simulated calls in the
same format (microsecond-resolution classic pcap, Ethernet link type) and
read them back, so the estimation pipeline genuinely operates on on-disk
captures rather than in-memory shortcuts.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.net.headers import decode_ethernet_ipv4_udp, encode_ethernet_ipv4_udp
from repro.net.packet import MediaType, Packet
from repro.rtp.header import RTPHeader

__all__ = ["PcapReader", "PcapWriter", "read_pcap", "write_pcap", "PCAP_MAGIC"]

PCAP_MAGIC = 0xA1B2C3D4
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_LINKTYPE_ETHERNET = 1


class PcapWriter:
    """Write packets to a classic pcap file (Ethernet link layer).

    RTP headers, when present on a packet, are serialised into the UDP payload
    so that a reader parsing the file recovers them; the remaining payload is
    zero-filled to the packet's recorded payload size.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = None

    def __enter__(self) -> "PcapWriter":
        self._file = open(self.path, "wb")
        self._file.write(
            _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, 65535, _LINKTYPE_ETHERNET)
        )
        return self

    def __exit__(self, *exc_info) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def write(self, packet: Packet) -> None:
        """Append one packet record."""
        if self._file is None:
            raise RuntimeError("PcapWriter must be used as a context manager")
        payload = self._build_payload(packet)
        frame = encode_ethernet_ipv4_udp(packet.ip, packet.udp, payload)
        seconds = int(packet.timestamp)
        microseconds = int(round((packet.timestamp - seconds) * 1e6))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        self._file.write(_RECORD_HEADER.pack(seconds, microseconds, len(frame), len(frame)))
        self._file.write(frame)

    def write_all(self, packets) -> int:
        count = 0
        for packet in packets:
            self.write(packet)
            count += 1
        return count

    @staticmethod
    def _build_payload(packet: Packet) -> bytes:
        if packet.rtp is not None:
            header_bytes = packet.rtp.encode()
            padding = max(0, packet.payload_size - len(header_bytes))
            return header_bytes + bytes(padding)
        return bytes(packet.payload_size)


class PcapReader:
    """Iterate packets from a classic pcap file written by :class:`PcapWriter`
    (or any Ethernet/IPv4/UDP capture).

    Non-UDP records are skipped.  If ``parse_rtp`` is true, an RTP header is
    parsed from the first 12 payload bytes when it looks like RTP (version 2).

    With ``strict=False`` a capture whose *final* record is cut short -- a
    crashed tcpdump, a file still being written -- yields every complete
    record and then stops instead of raising; a corrupt global header is an
    error either way.
    """

    def __init__(self, path: str | Path, parse_rtp: bool = True, strict: bool = True) -> None:
        self.path = Path(path)
        self.parse_rtp = parse_rtp
        self.strict = strict

    def __iter__(self):
        with open(self.path, "rb") as handle:
            header = handle.read(_GLOBAL_HEADER.size)
            if len(header) < _GLOBAL_HEADER.size:
                raise ValueError(f"{self.path} is not a pcap file (truncated global header)")
            magic = struct.unpack("<I", header[:4])[0]
            if magic == PCAP_MAGIC:
                endian = "<"
            elif magic == 0xD4C3B2A1:
                endian = ">"
            else:
                raise ValueError(f"{self.path} is not a classic pcap file (magic 0x{magic:08x})")
            record_struct = struct.Struct(endian + "IIII")

            while True:
                record_header = handle.read(record_struct.size)
                if not record_header:
                    return
                if len(record_header) < record_struct.size:
                    if not self.strict:
                        return
                    raise ValueError(f"{self.path}: truncated record header")
                seconds, microseconds, captured_len, _original_len = record_struct.unpack(record_header)
                frame = handle.read(captured_len)
                if len(frame) < captured_len:
                    if not self.strict:
                        return
                    raise ValueError(f"{self.path}: truncated packet record")
                packet = self._parse_frame(seconds + microseconds / 1e6, frame)
                if packet is not None:
                    yield packet

    def _parse_frame(self, timestamp: float, frame: bytes) -> Packet | None:
        try:
            ip, udp, payload = decode_ethernet_ipv4_udp(frame)
        except ValueError:
            return None
        rtp = None
        if self.parse_rtp and len(payload) >= 12 and (payload[0] >> 6) == 2:
            try:
                rtp = RTPHeader.decode(payload)
            except ValueError:
                rtp = None
        return Packet(
            timestamp=timestamp,
            ip=ip,
            udp=udp,
            payload_size=len(payload),
            rtp=rtp,
        )


def write_pcap(path: str | Path, packets) -> int:
    """Write ``packets`` to ``path``; returns the number of records written."""
    with PcapWriter(path) as writer:
        return writer.write_all(packets)


def read_pcap(path: str | Path, parse_rtp: bool = True) -> list[Packet]:
    """Read every UDP packet from ``path`` into a list."""
    return list(PcapReader(path, parse_rtp=parse_rtp))
