"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints every reproduced table/figure as ASCII so that
``pytest benchmarks/ --benchmark-only`` output can be compared side by side
with the paper.  These helpers keep that formatting consistent.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "format_table",
    "format_series",
    "format_method_comparison",
    "format_confusion_matrix",
    "format_feature_importances",
]

#: Display names matching the paper's legend.
METHOD_DISPLAY_NAMES: dict[str, str] = {
    "rtp_ml": "RTP ML",
    "ipudp_ml": "IP/UDP ML",
    "rtp_heuristic": "RTP Heuristic",
    "ipudp_heuristic": "IP/UDP Heuristic",
}


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Fixed-width ASCII table."""
    columns = [headers] + [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(str(row[i])) for row in columns) for i in range(len(headers))]

    def render_row(row) -> str:
        return " | ".join(str(cell).ljust(width) for cell, width in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(render_row([_fmt(cell) for cell in row]))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_series(name: str, xs, ys, x_label: str = "x", y_label: str = "y") -> str:
    """A small two-column table for figure series (e.g. MAE vs loss)."""
    rows = [[x, y] for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=name)


def format_method_comparison(results: dict, metric: str, title: str | None = None) -> str:
    """Render a ``{method: MethodErrors}`` mapping like the Figure 3/6/10 annotations."""
    headers = ["Method", "MAE", "MRAE", "median err", "p10", "p90", "n"]
    rows = []
    for method, errors in results.items():
        summary = errors.summary
        rows.append(
            [
                METHOD_DISPLAY_NAMES.get(method, method),
                summary.mae,
                summary.mrae,
                summary.median,
                summary.p10,
                summary.p90,
                summary.n,
            ]
        )
    return format_table(headers, rows, title=title or f"Error comparison ({metric})")


def format_confusion_matrix(matrix: np.ndarray, labels, title: str | None = None) -> str:
    """Row-normalised confusion matrix as percentages (Tables 2, 4, A.1-A.3)."""
    matrix = np.asarray(matrix, dtype=float)
    headers = ["Actual \\ Predicted"] + [str(label) for label in labels]
    rows = []
    for i, label in enumerate(labels):
        rows.append([str(label)] + [f"{100.0 * value:.2f}%" for value in matrix[i]])
    return format_table(headers, rows, title=title)


def format_feature_importances(top_features: list[tuple[str, float]], title: str | None = None) -> str:
    """Top-k feature importance list (Figures 5, 7, 9, A.4-A.9)."""
    rows = [[name, f"{100.0 * importance:.1f}%"] for name, importance in top_features]
    return format_table(["Feature", "Importance"], rows, title=title)
