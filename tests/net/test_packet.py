"""Unit tests for the packet model."""

import pytest

from repro.net.packet import IPv4Header, MediaType, Packet, UDPHeader
from repro.rtp.header import RTPHeader


def make_packet(size=1000, timestamp=1.0, rtp=None, media_type=None, frame_id=None):
    return Packet(
        timestamp=timestamp,
        ip=IPv4Header(src="10.0.0.1", dst="10.0.0.2"),
        udp=UDPHeader(src_port=5000, dst_port=6000, length=size + 8),
        payload_size=size,
        rtp=rtp,
        media_type=media_type,
        frame_id=frame_id,
    )


class TestHeaders:
    def test_ipv4_header_validation(self):
        with pytest.raises(ValueError):
            IPv4Header(src="a", dst="b", ttl=300)
        with pytest.raises(ValueError):
            IPv4Header(src="a", dst="b", protocol=-1)

    def test_udp_header_port_validation(self):
        with pytest.raises(ValueError):
            UDPHeader(src_port=70000, dst_port=80)
        with pytest.raises(ValueError):
            UDPHeader(src_port=80, dst_port=-1)


class TestPacket:
    def test_size_alias(self):
        packet = make_packet(size=777)
        assert packet.size == 777
        assert packet.payload_size == 777

    def test_media_payload_subtracts_rtp_header(self):
        packet = make_packet(size=1000)
        assert packet.media_payload_size == 988

    def test_media_payload_never_negative(self):
        packet = make_packet(size=4)
        assert packet.media_payload_size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_packet(size=-1)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            make_packet(timestamp=-0.5)

    def test_without_rtp_strips_header_only(self):
        rtp = RTPHeader(payload_type=102, sequence_number=1, timestamp=100, ssrc=7)
        packet = make_packet(rtp=rtp, media_type=MediaType.VIDEO, frame_id=3)
        stripped = packet.without_rtp()
        assert stripped.rtp is None
        assert stripped.media_type is MediaType.VIDEO
        assert stripped.frame_id == 3
        assert stripped.payload_size == packet.payload_size

    def test_without_ground_truth_strips_annotations(self):
        rtp = RTPHeader(payload_type=102, sequence_number=1, timestamp=100, ssrc=7)
        packet = make_packet(rtp=rtp, media_type=MediaType.VIDEO, frame_id=3)
        blind = packet.without_ground_truth()
        assert blind.media_type is None
        assert blind.frame_id is None
        assert blind.rtp is not None  # RTP visibility is a separate dimension

    def test_anonymized_hashes_addresses_consistently(self):
        a = make_packet()
        b = make_packet()
        assert a.anonymized().ip.src == b.anonymized().ip.src
        assert a.anonymized().ip.src != a.ip.src

    def test_media_type_is_video_property(self):
        assert MediaType.VIDEO.is_video
        assert MediaType.VIDEO_RTX.is_video
        assert not MediaType.AUDIO.is_video
        assert not MediaType.CONTROL.is_video
