"""Network emulation substrate.

Reproduces the role of the paper's ``tc netem``-style in-lab emulation: a
bottleneck link with a token-bucket rate limit and drop-tail queue, constant
propagation delay plus random jitter, Bernoulli loss, and the resulting packet
reordering.  Conditions can vary second-by-second, driven either by synthetic
NDT speed-test traces (:mod:`repro.netem.ndt`, standing in for the M-Lab
``tcp-info`` dataset) or by the fixed impairment profiles of Table A.6
(:mod:`repro.netem.impairments`).
"""

from repro.netem.conditions import ConditionSchedule, NetworkCondition
from repro.netem.impairments import IMPAIRMENT_PROFILES, ImpairmentProfile, impairment_schedules
from repro.netem.link import EmulatedLink, LinkReport
from repro.netem.ndt import NDTSample, NDTTrace, generate_ndt_trace, schedule_from_ndt

__all__ = [
    "NetworkCondition",
    "ConditionSchedule",
    "EmulatedLink",
    "LinkReport",
    "NDTSample",
    "NDTTrace",
    "generate_ndt_trace",
    "schedule_from_ndt",
    "ImpairmentProfile",
    "IMPAIRMENT_PROFILES",
    "impairment_schedules",
]
