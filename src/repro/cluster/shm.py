"""Shared-memory block rings: the zero-copy transport of the data plane.

The queue transports move a :class:`~repro.net.block.PacketBlock` by
pickling its arrays into a pipe and unpickling them on the other side --
two copies plus per-message interpreter work, which is exactly what
dominates the sharded monitor's 1-worker overhead (``BENCH_columnar``:
~64k pps over the queue vs ~287k pps for the same blocks pushed
in-process).  Blocks are already contiguous struct-of-arrays batches, so
the fix is the standard one: put the bytes in a
:class:`multiprocessing.shared_memory.SharedMemory` segment both sides map,
and move only *slot tokens* through the queue.

:class:`BlockRing` is a fixed-slot single-producer/single-consumer ring of
**segmented slots**:

* one forward ring per shard (parent -> worker, flat-encoded
  ``PacketBlock`` payloads) and -- on the PR 6 return path -- one reverse
  ring per shard (worker -> parent,
  :class:`~repro.net.estwire.EstimateBatch` payloads).  Both directions are
  created by the parent (the segment owner) and attached by the worker;
* ``slot_count`` slots of ``slot_bytes`` each.  A slot holds one or more
  **segments** behind a length-prefixed header -- the producer packs a
  whole batch of flat-encoded payloads into a single slot
  (:meth:`try_push_segments`), so small payloads stop paying two semaphore
  operations each.  Sections stay 8-aligned for zero-copy
  ``np.frombuffer`` decoding on the consumer side;
* per-slot **ready/free semaphores** provide back-pressure: the producer
  blocks (with a timeout, so it can keep draining its peer) when the ring
  is full, the consumer when it is empty.  Both sides walk the slots in
  order, so FIFO needs no shared indices;
* the consumer must finish with a popped slot's segments **before**
  calling :meth:`release` -- the slot is recycled immediately after.  The
  engine's ``push_block`` (and the parent's estimate materialization) copy
  everything they keep, so "consume then release" is safe without an extra
  memcpy;
* a 16-byte counter header (produced/consumed, each side the sole writer
  of its own u64) makes slot occupancy observable for the transport stats
  surfaced in per-shard stats -- reads may race, which is fine for
  telemetry;
* lifecycle is explicit: workers :meth:`close` their mapping, the owner
  :meth:`unlink`\\ s the segment.  The sharded monitor unlinks in a
  ``finally`` so normal exit, aborts, and worker death all reclaim the
  segment (asserted by ``tests/cluster/test_shm_transport.py``).

Workers attach **untracked**: Python's ``resource_tracker`` would otherwise
count the segment once per process and complain (or double-unlink) when the
parent reclaims it.  Python 3.13+ exposes ``track=False``; on older
versions the registration is reverted by hand.
"""

from __future__ import annotations

import numpy as np

from repro.net.block import PacketBlock

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["BlockRing", "RingHandle", "shm_available", "DEFAULT_SLOT_BYTES"]

#: Default slot payload capacity.  Sized for the monitor's default
#: ``chunk_size`` with generous headroom (a 1024-row block with every
#: optional column is ~58 KiB); the router splits anything larger.
DEFAULT_SLOT_BYTES = 1 << 20

#: Ring-level counter header: u64 slots produced, u64 slots consumed.
_RING_COUNTER_BYTES = 16

#: Per-slot segment-count prefix (written as a little-endian int64).
_SLOT_COUNT_BYTES = 8

#: Per-segment byte-length prefix (little-endian int64, keeps payloads
#: 8-aligned together with the per-segment padding).
_SEGMENT_HEADER_BYTES = 8


def _pad8(n: int) -> int:
    return (n + 7) & ~7


def shm_available() -> bool:
    """Whether :mod:`multiprocessing.shared_memory` works on this platform.

    Checks by actually creating (and immediately reclaiming) a minimal
    segment: some sandboxes ship the module but deny ``/dev/shm``.
    """
    if _shared_memory is None:
        return False
    try:
        segment = _shared_memory.SharedMemory(create=True, size=8)
    except (OSError, PermissionError):
        return False
    segment.close()
    segment.unlink()
    return True


def _attach_untracked(name: str):
    """Attach to an existing segment without resource-tracker registration."""
    try:
        return _shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:
        # Pre-3.13: attaching registers the segment with this process's
        # resource tracker, which would then fight the owner over cleanup.
        # Suppress the registration for the duration of the attach.
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(name_, rtype):  # pragma: no branch
            if rtype != "shared_memory":
                original(name_, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class RingHandle:
    """The worker-side descriptor of a ring: everything :meth:`attach` needs.

    Picklable only the way ``multiprocessing`` primitives are -- as part of
    the ``Process`` arguments during spawn -- which is exactly how it
    travels.
    """

    def __init__(self, name: str, slot_count: int, slot_bytes: int, ready, free) -> None:
        self.name = name
        self.slot_count = slot_count
        self.slot_bytes = slot_bytes
        self.ready = ready
        self.free = free

    def attach(self) -> "BlockRing":
        """Map the segment in this (worker) process."""
        segment = _attach_untracked(self.name)
        return BlockRing(segment, self.slot_count, self.slot_bytes, self.ready, self.free, owner=False)


class BlockRing:
    """A fixed-slot SPSC ring of segmented flat-buffer slots over shared memory.

    Construct with :meth:`create` (owner side) or :meth:`RingHandle.attach`
    (the worker side of either direction); the ``__init__`` signature is
    internal plumbing shared by both.
    """

    def __init__(self, segment, slot_count: int, slot_bytes: int, ready, free, owner: bool) -> None:
        self._segment = segment
        self.slot_count = slot_count
        self.slot_bytes = slot_bytes
        self._ready = ready
        self._free = free
        self._owner = owner
        self._stride = _SLOT_COUNT_BYTES + slot_bytes
        # Occupancy counters live at the head of the segment: the producer
        # owns [0] (slots produced), the consumer owns [1] (slots consumed).
        # Telemetry only -- a torn read costs nothing but a stats blip.
        # Not wire decoding: these two words never leave the host, so native
        # byte order is correct and no codec entry point applies.
        self._counters = np.frombuffer(segment.buf, dtype=np.uint64, count=2)  # detlint: disable=CODEC002 -- in-host occupancy counters, not wire payload
        # Producer and consumer each track their own cursor; SPSC in slot
        # order means they never need to share it.
        self._cursor = 0
        self._popped: list[memoryview] = []
        self._closed = False
        # Producer-side transport telemetry (see transport_stats()).
        self._slots_written = 0
        self._segments_written = 0
        self._max_segments_per_slot = 0
        self._occupancy_hwm = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(cls, ctx, slot_count: int, slot_bytes: int = DEFAULT_SLOT_BYTES) -> "BlockRing":
        """Allocate a ring: ``slot_count`` slots of ``slot_bytes`` payload.

        ``ctx`` is the multiprocessing context the worker will be spawned
        from (its semaphores must match the start method).  The creating
        process is the owner: it must eventually call :meth:`unlink`.
        """
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise RuntimeError("multiprocessing.shared_memory is unavailable on this platform")
        if slot_count < 1:
            raise ValueError(f"slot_count must be >= 1, got {slot_count!r}")
        if slot_bytes < 1024:
            raise ValueError(f"slot_bytes must be >= 1024, got {slot_bytes!r}")
        slot_bytes = (slot_bytes + 7) & ~7
        segment = _shared_memory.SharedMemory(
            create=True,
            size=_RING_COUNTER_BYTES + slot_count * (_SLOT_COUNT_BYTES + slot_bytes),
        )
        segment.buf[:_RING_COUNTER_BYTES] = bytes(_RING_COUNTER_BYTES)
        ready = tuple(ctx.Semaphore(0) for _ in range(slot_count))
        free = tuple(ctx.Semaphore(1) for _ in range(slot_count))
        return cls(segment, slot_count, slot_bytes, ready, free, owner=True)

    def handle(self) -> RingHandle:
        """The descriptor to pass into the worker process's arguments."""
        return RingHandle(self._segment.name, self.slot_count, self.slot_bytes, self._ready, self._free)

    @property
    def name(self) -> str:
        """The shared-memory segment name (for leak assertions in tests)."""
        return self._segment.name

    @property
    def max_segment_bytes(self) -> int:
        """Largest single payload a slot can carry (capacity minus prefix)."""
        return self.slot_bytes - _SEGMENT_HEADER_BYTES

    @staticmethod
    def segment_cost(size: int) -> int:
        """Slot capacity one ``size``-byte payload consumes (prefix + padding)."""
        return _SEGMENT_HEADER_BYTES + _pad8(size)

    # -- producer side ---------------------------------------------------------

    def try_push_segments(self, payloads, timeout: float | None = None) -> bool:
        """Pack ``payloads`` into the next slot; False if no slot freed in time.

        ``payloads`` is a non-empty sequence of ``(size, write_into)`` pairs
        -- the flat-buffer codec surface shared by ``PacketBlock`` and
        ``EstimateBatch``.  All of them land in **one** slot behind
        length-prefixed segment headers (two semaphore ops total), in order.
        Raises :class:`ValueError` -- without consuming a slot -- when the
        batch cannot fit (``sum(segment_cost(size)) > slot_bytes``; split or
        flush first).
        """
        if not payloads:
            raise ValueError("try_push_segments needs at least one payload")
        needed = sum(self.segment_cost(size) for size, _ in payloads)
        if needed > self.slot_bytes:
            raise ValueError(
                f"segment batch of {needed} bytes exceeds the ring's "
                f"{self.slot_bytes}-byte slots"
            )
        if not self._free[self._cursor].acquire(True, timeout):
            return False
        offset = _RING_COUNTER_BYTES + self._cursor * self._stride
        mv = memoryview(self._segment.buf)
        try:
            mv[offset : offset + _SLOT_COUNT_BYTES] = len(payloads).to_bytes(
                _SLOT_COUNT_BYTES, "little"
            )
            pos = offset + _SLOT_COUNT_BYTES
            for size, write_into in payloads:
                mv[pos : pos + _SEGMENT_HEADER_BYTES] = size.to_bytes(
                    _SEGMENT_HEADER_BYTES, "little"
                )
                segment = mv[pos + _SEGMENT_HEADER_BYTES : pos + _SEGMENT_HEADER_BYTES + size]
                try:
                    write_into(segment)
                finally:
                    segment.release()
                pos += self.segment_cost(size)
        finally:
            mv.release()
        self._ready[self._cursor].release()
        self._cursor = (self._cursor + 1) % self.slot_count
        self._slots_written += 1
        self._segments_written += len(payloads)
        if len(payloads) > self._max_segments_per_slot:
            self._max_segments_per_slot = len(payloads)
        counters = self._counters
        counters[0] += 1
        occupancy = int(counters[0]) - int(counters[1])
        if occupancy > self._occupancy_hwm:
            self._occupancy_hwm = occupancy
        return True

    def try_push(self, block: PacketBlock, timeout: float | None = None) -> bool:
        """Encode one ``block`` into its own slot; False if none freed in time.

        The single-segment convenience used by unbatched callers and tests.
        Raises :class:`ValueError` -- without consuming a slot -- when the
        block cannot fit (``byte_size() > max_segment_bytes``, split it
        first) or cannot be flat-encoded at all (RTP columns); callers fall
        back to the queue transport for those.
        """
        size = block.byte_size()
        if size > self.max_segment_bytes:
            raise ValueError(
                f"block of {size} bytes exceeds the ring's {self.slot_bytes}-byte slots"
            )
        return self.try_push_segments(((size, block.write_into),), timeout)

    def transport_stats(self) -> dict:
        """Producer-side telemetry of this ring (occupancy, batching, reuse)."""
        return {
            "slots_written": self._slots_written,
            "slot_reuses": max(0, self._slots_written - self.slot_count),
            "segments_written": self._segments_written,
            "max_segments_per_slot": self._max_segments_per_slot,
            "occupancy_hwm": self._occupancy_hwm,
        }

    # -- consumer side ---------------------------------------------------------

    def pop_segments(self, timeout: float | None = None) -> list[memoryview] | None:
        """Views of the oldest pending slot's segments; ``None`` on timeout.

        The returned memoryviews alias the slot: decode them (zero-copy),
        finish with everything derived from them, then call :meth:`release`.
        At most one slot may be outstanding at a time.
        """
        if self._popped:
            raise RuntimeError("previous slot not released; call release() first")
        if not self._ready[self._cursor].acquire(True, timeout):
            return None
        offset = _RING_COUNTER_BYTES + self._cursor * self._stride
        buf = self._segment.buf
        count = int.from_bytes(bytes(buf[offset : offset + _SLOT_COUNT_BYTES]), "little")
        pos = offset + _SLOT_COUNT_BYTES
        views: list[memoryview] = []
        for _ in range(count):
            size = int.from_bytes(bytes(buf[pos : pos + _SEGMENT_HEADER_BYTES]), "little")
            views.append(
                memoryview(buf)[pos + _SEGMENT_HEADER_BYTES : pos + _SEGMENT_HEADER_BYTES + size]
            )
            pos += self.segment_cost(size)
        self._popped = views
        return views

    def pop(self, timeout: float | None = None) -> PacketBlock | None:
        """Decode a single-block slot (the :meth:`try_push` counterpart).

        The returned block's columns are views into the slot: consume it
        fully (e.g. ``engine.push_block``) and then call :meth:`release`.
        """
        segments = self.pop_segments(timeout)
        if segments is None:
            return None
        if len(segments) != 1:  # pragma: no cover - caller protocol guard
            raise RuntimeError(
                f"slot holds {len(segments)} segments; use pop_segments() for batched slots"
            )
        return PacketBlock.read_from(segments[0])

    def release(self) -> None:
        """Recycle the slot of the last :meth:`pop_segments`/:meth:`pop`.

        Everything decoded from the slot (and anything still viewing its
        buffer) must be dropped before calling this; the producer will
        overwrite the slot immediately.
        """
        if not self._popped:
            raise RuntimeError("no popped block to release")
        for view in self._popped:
            view.release()
        self._popped = []
        self._counters[1] += 1
        self._free[self._cursor].release()
        self._cursor = (self._cursor + 1) % self.slot_count

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Unmap the segment in this process (both sides; idempotent)."""
        if self._closed:
            return
        self._closed = True
        for view in self._popped:
            try:
                view.release()
            except BufferError:
                # A decoded payload still views the slot (e.g. the worker's
                # error path closes with its last chunk in scope); the
                # mapping goes when the process does.
                pass
        self._popped = []
        # Drop the counter view before closing or it would pin the mapping.
        self._counters = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - a stray view outlived its block
            # The mapping stays until the process exits; the segment itself
            # is still reclaimed by the owner's unlink().
            pass

    def unlink(self) -> None:
        """Reclaim the OS segment (owner only; idempotent, tolerates races)."""
        if not self._owner:
            return
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
