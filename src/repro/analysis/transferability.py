"""Model transferability analysis (Section 5.3, Tables 5, A.4, A.5).

Trains ML models on the in-lab dataset and evaluates them on the real-world
dataset, per VCA and per metric, reproducing the tables' MAE matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.evaluation import EvaluationDataset, transfer_mae

__all__ = ["TransferabilityResult", "transferability_table"]


@dataclass(frozen=True)
class TransferabilityResult:
    """Lab-to-real-world MAE for one (method, metric, VCA) combination."""

    method: str
    metric: str
    vca: str
    mae: float


def transferability_table(
    lab_datasets: dict[str, EvaluationDataset],
    real_world_datasets: dict[str, EvaluationDataset],
    metric: str,
    methods: tuple[str, ...] = ("ipudp_ml", "rtp_ml"),
    n_estimators: int = 30,
) -> list[TransferabilityResult]:
    """Compute one of the paper's transferability tables.

    ``lab_datasets`` and ``real_world_datasets`` map VCA names to
    :class:`EvaluationDataset` objects built from the respective datasets;
    only VCAs present in both are evaluated.
    """
    results: list[TransferabilityResult] = []
    for vca in sorted(set(lab_datasets) & set(real_world_datasets)):
        for method in methods:
            mae = transfer_mae(
                lab_datasets[vca],
                real_world_datasets[vca],
                method=method,
                metric=metric,
                n_estimators=n_estimators,
            )
            results.append(TransferabilityResult(method=method, metric=metric, vca=vca, mae=mae))
    return results
