"""Tables 3 and 4: resolution estimation accuracy and the Teams confusion
matrix (in-lab data).

Paper shape: IP/UDP ML resolution accuracy is comparable to RTP ML for every
VCA; the Teams confusion matrix is strong for the low and high bins and weak
for the medium bin.
"""

from benchmarks.conftest import N_ESTIMATORS, save_artifact
from repro.analysis.reporting import format_confusion_matrix, format_table
from repro.core.evaluation import resolution_report


def test_tab3_tab4_resolution_inlab(benchmark, lab_datasets):
    def run():
        return {
            (vca, method): resolution_report(dataset, method, n_estimators=N_ESTIMATORS)
            for vca, dataset in lab_datasets.items()
            for method in ("ipudp_ml", "rtp_ml")
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    accuracy_rows = [
        [method, *(f"{reports[(vca, method)].accuracy * 100.0:.2f}%" for vca in lab_datasets)]
        for method in ("ipudp_ml", "rtp_ml")
    ]
    accuracy_table = format_table(
        ["Method", *lab_datasets.keys()],
        accuracy_rows,
        title="Table 3 - resolution estimation accuracy (in-lab)",
    )

    teams_report = reports[("teams", "ipudp_ml")]
    confusion_table = format_confusion_matrix(
        teams_report.confusion,
        teams_report.labels,
        title="Table 4 - Teams resolution confusion matrix (IP/UDP ML, in-lab)",
    )
    save_artifact("tab3_tab4_resolution_inlab", accuracy_table + "\n\n" + confusion_table)

    for vca in lab_datasets:
        ipudp = reports[(vca, "ipudp_ml")].accuracy
        rtp = reports[(vca, "rtp_ml")].accuracy
        # Comparable accuracy between the two ML methods.
        assert abs(ipudp - rtp) < 0.2, vca
        assert ipudp > 0.5, vca
