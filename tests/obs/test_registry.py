"""Registry unit tests: config validation, recording semantics, delta exactness.

The PR 8 acceptance criteria pinned here:

* :class:`~repro.obs.config.ObsConfig` is frozen, validated, and
  round-trips through ``to_dict``/``from_dict`` (the spawn wire format);
* counters/gauges/histograms record with Prometheus semantics (``le`` is
  inclusive, overflow lands in ``+Inf``) and ``snapshot()`` is
  deterministic -- equal state gives equal objects regardless of insertion
  order;
* ``delta()``/``merge()`` are exact: the sum of every shipped delta equals
  the source registry, no matter how recording and shipping interleave,
  and bucket-count mismatches raise instead of corrupting the fleet view.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.obs.config import DEFAULT_LATENCY_BUCKETS, ObsConfig
from repro.obs.registry import (
    STAGE_HISTOGRAM,
    MetricsRegistry,
    ingest_transport_stats,
    render_key,
)


class TestObsConfig:
    def test_defaults_are_disabled(self):
        config = ObsConfig()
        assert config.enabled is False
        assert config.stage_timing is True
        assert config.buckets == DEFAULT_LATENCY_BUCKETS

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ObsConfig().enabled = True

    def test_bucket_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ObsConfig(buckets=())
        with pytest.raises(ValueError, match="positive and finite"):
            ObsConfig(buckets=(0.0, 1.0))
        with pytest.raises(ValueError, match="positive and finite"):
            ObsConfig(buckets=(1.0, float("inf")))
        with pytest.raises(ValueError, match="strictly increasing"):
            ObsConfig(buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            ObsConfig(buckets=(2.0, 1.0))

    def test_buckets_coerced_to_float_tuple(self):
        config = ObsConfig(buckets=[1, 2, 5])
        assert config.buckets == (1.0, 2.0, 5.0)
        assert all(isinstance(b, float) for b in config.buckets)

    def test_replace_revalidates(self):
        config = ObsConfig().replace(enabled=True)
        assert config.enabled and config.buckets == DEFAULT_LATENCY_BUCKETS
        with pytest.raises(ValueError, match="strictly increasing"):
            config.replace(buckets=(2.0, 1.0))

    def test_dict_round_trip_is_json_safe(self):
        config = ObsConfig(enabled=True, stage_timing=False, buckets=(0.5, 1.0))
        data = json.loads(json.dumps(config.to_dict()))
        assert ObsConfig.from_dict(data) == config


class TestCountersAndGauges:
    def test_counter_defaults_and_increments(self):
        registry = MetricsRegistry()
        assert registry.counter_value("qoe_x_total") == 0
        registry.inc("qoe_x_total")
        registry.inc("qoe_x_total", 41)
        assert registry.counter_value("qoe_x_total") == 42

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.inc("qoe_x_total", 3, (("shard", "0"),))
        registry.inc("qoe_x_total", 4, (("shard", "1"),))
        assert registry.counter_value("qoe_x_total", (("shard", "0"),)) == 3
        assert registry.counter_value("qoe_x_total", (("shard", "1"),)) == 4
        assert registry.counter_value("qoe_x_total") == 0  # unlabeled is its own series

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        assert registry.gauge_value("qoe_depth") is None
        registry.set_gauge("qoe_depth", 7.0)
        registry.set_gauge("qoe_depth", 3.0)
        assert registry.gauge_value("qoe_depth") == 3.0


class TestHistograms:
    def test_le_bucket_boundaries_are_inclusive(self):
        registry = MetricsRegistry(ObsConfig(enabled=True, buckets=(1.0, 2.0)))
        registry.observe("lat", 1.0)  # exactly on a bound: le semantics, bucket 0
        registry.observe("lat", 1.5)
        registry.observe("lat", 2.5)  # beyond the last bound: +Inf bucket
        hist = registry.snapshot()["histograms"]["lat"]
        assert hist["counts"] == [1, 1, 1]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(5.0)

    def test_stage_spans_share_one_histogram(self):
        registry = MetricsRegistry()
        registry.observe_stage("push_block", 0.001)
        registry.observe_stage("push_block", 0.002)
        registry.observe_stage("predict", 0.5)
        assert registry.stage_count("push_block") == 2
        assert registry.stage_count("predict") == 1
        assert registry.stage_count("never_recorded") == 0
        series = set(registry.snapshot()["histograms"])
        assert series == {
            f'{STAGE_HISTOGRAM}{{stage="predict"}}',
            f'{STAGE_HISTOGRAM}{{stage="push_block"}}',
        }

    def test_stage_timing_off_skips_spans_but_not_counters(self):
        registry = MetricsRegistry(ObsConfig(enabled=True, stage_timing=False))
        registry.observe_stage("push_block", 0.001)
        registry.time_stage("push_block", 0.0)
        registry.inc("qoe_x_total")
        assert registry.stage_count("push_block") == 0
        assert registry.snapshot()["histograms"] == {}
        assert registry.counter_value("qoe_x_total") == 1

    def test_timed_iter_yields_everything_and_records_one_span_each(self):
        registry = MetricsRegistry()
        assert list(registry.timed_iter(iter([1, 2, 3]), "source_read")) == [1, 2, 3]
        assert registry.stage_count("source_read") == 3


class TestSnapshot:
    def test_equal_state_gives_equal_snapshots_regardless_of_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("qoe_a_total", 1)
        a.inc("qoe_b_total", 2, (("shard", "1"),))
        a.set_gauge("qoe_g", 5.0)
        a.observe_stage("predict", 0.01)
        b.observe_stage("predict", 0.01)
        b.set_gauge("qoe_g", 5.0)
        b.inc("qoe_b_total", 2, (("shard", "1"),))
        b.inc("qoe_a_total", 1)
        assert a.snapshot() == b.snapshot()
        # Deterministic key order, and JSON-able (the interchange contract).
        assert json.loads(json.dumps(a.snapshot())) == json.loads(json.dumps(b.snapshot()))

    def test_render_prometheus_round_trips_values(self):
        from repro.obs.render import parse_prometheus

        registry = MetricsRegistry(ObsConfig(enabled=True, buckets=(0.001, 1.0)))
        registry.inc("qoe_a_total", 3)
        registry.set_gauge("qoe_g", 2.5, (("shard", "0"),))
        registry.observe_stage("predict", 0.5)
        series = parse_prometheus(registry.render_prometheus())
        assert series["qoe_a_total"] == 3
        assert series['qoe_g{shard="0"}'] == 2.5
        assert series['qoe_stage_seconds_bucket{stage="predict",le="+Inf"}'] == 1
        assert series['qoe_stage_seconds_count{stage="predict"}'] == 1


class TestDeltaMerge:
    def test_empty_registry_ships_nothing(self):
        assert MetricsRegistry().delta() is None

    def test_delta_advances_the_shipped_baseline(self):
        registry = MetricsRegistry()
        registry.inc("qoe_x_total", 5)
        first = registry.delta()
        assert first["counters"] == {("qoe_x_total", ()): 5}
        assert registry.delta() is None  # nothing new, nothing to ship
        registry.inc("qoe_x_total", 2)
        assert registry.delta()["counters"] == {("qoe_x_total", ()): 2}

    def test_zero_valued_counters_never_ship(self):
        registry = MetricsRegistry()
        registry.inc("qoe_x_total", 0)
        assert registry.delta() is None

    def test_gauges_ship_by_value_on_every_delta(self):
        registry = MetricsRegistry()
        registry.set_gauge("qoe_g", 1.0)
        assert registry.delta()["gauges"] == {("qoe_g", ()): 1.0}
        # Unchanged gauges still ride the next delta: by-value, not by-diff.
        assert registry.delta()["gauges"] == {("qoe_g", ()): 1.0}

    def test_interleaved_deltas_sum_to_the_source_exactly(self):
        source = MetricsRegistry()
        fleet = MetricsRegistry()
        for round_no in range(1, 6):
            source.inc("qoe_packets_total", round_no * 10)
            source.inc("qoe_blocks_total", 1, (("shard", "0"),))
            source.observe_stage("push_block", 0.0001 * round_no)
            source.set_gauge("qoe_live", float(round_no))
            if round_no % 2:  # ship on odd rounds only: deltas accumulate
                fleet.merge(source.delta())
        final = source.delta()
        assert final is not None  # rounds 4 and 5 were still pending
        fleet.merge(final)
        assert fleet.snapshot() == source.snapshot()

    def test_histogram_deltas_carry_bucket_increments(self):
        source = MetricsRegistry(ObsConfig(enabled=True, buckets=(1.0, 2.0)))
        source.observe("lat", 0.5)
        first = source.delta()
        ((counts, total),) = first["histograms"].values()
        assert counts == [1, 0, 0] and total == pytest.approx(0.5)
        source.observe("lat", 5.0)
        ((counts, total),) = source.delta()["histograms"].values()
        assert counts == [0, 0, 1] and total == pytest.approx(5.0)

    def test_merge_rejects_bucket_count_mismatch(self):
        source = MetricsRegistry(ObsConfig(enabled=True, buckets=(1.0,)))
        source.observe("lat", 0.5)
        fleet = MetricsRegistry()  # default bucket vector
        with pytest.raises(ValueError, match="buckets"):
            fleet.merge(source.delta())


class TestTransportIngestion:
    def test_counts_become_counters_and_hwms_become_shard_gauges(self):
        registry = MetricsRegistry()
        stats = {
            "slots_written": 18,
            "slot_reuses": 2,
            "segments_written": 20,
            "queue_fallbacks": 0,
            "max_segments_per_slot": 4,
            "occupancy_hwm": 3,
        }
        ingest_transport_stats(registry, stats, "reverse", 1)
        direction = (("direction", "reverse"),)
        assert registry.counter_value("qoe_transport_slots_written_total", direction) == 18
        assert registry.counter_value("qoe_transport_slot_reuses_total", direction) == 2
        assert registry.counter_value("qoe_transport_segments_written_total", direction) == 20
        assert registry.counter_value("qoe_transport_queue_fallbacks_total", direction) == 0
        per_shard = (("direction", "reverse"), ("shard", "1"))
        assert registry.gauge_value("qoe_transport_max_segments_per_slot", per_shard) == 4
        assert registry.gauge_value("qoe_transport_occupancy_hwm", per_shard) == 3

    def test_counts_sum_across_shards_hwms_stay_per_shard(self):
        registry = MetricsRegistry()
        ingest_transport_stats(registry, {"slots_written": 3, "occupancy_hwm": 2}, "forward", 0)
        ingest_transport_stats(registry, {"slots_written": 4, "occupancy_hwm": 5}, "forward", 1)
        direction = (("direction", "forward"),)
        assert registry.counter_value("qoe_transport_slots_written_total", direction) == 7
        hwms = [
            registry.gauge_value("qoe_transport_occupancy_hwm", (("direction", "forward"), ("shard", str(s))))
            for s in (0, 1)
        ]
        assert hwms == [2, 5]


def test_render_key_formats():
    assert render_key(("qoe_x_total", ())) == "qoe_x_total"
    assert (
        render_key(("qoe_x_total", (("direction", "forward"), ("shard", "0"))))
        == 'qoe_x_total{direction="forward",shard="0"}'
    )
