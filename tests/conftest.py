"""Shared fixtures.

Heavy artefacts (simulated calls, small datasets) are session-scoped so the
whole suite pays the simulation cost once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netem.conditions import ConditionSchedule, NetworkCondition
from repro.webrtc.session import CallResult, SessionConfig, simulate_call


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def _make_call(vca: str, seed: int, duration_s: int = 20, loss: float = 0.0, jitter_ms: float = 3.0) -> CallResult:
    schedule = ConditionSchedule.constant(
        NetworkCondition(throughput_kbps=2500.0, delay_ms=40.0, jitter_ms=jitter_ms, loss_rate=loss),
        duration_s,
    )
    config = SessionConfig(vca=vca, duration_s=duration_s, seed=seed, call_id=f"{vca}-fixture-{seed}")
    return simulate_call(config, schedule)


@pytest.fixture(scope="session")
def teams_call() -> CallResult:
    """A clean 20-second Teams call under good network conditions."""
    return _make_call("teams", seed=1)


@pytest.fixture(scope="session")
def meet_call() -> CallResult:
    """A clean 20-second Meet call under good network conditions."""
    return _make_call("meet", seed=2)


@pytest.fixture(scope="session")
def webex_call() -> CallResult:
    """A clean 20-second Webex call under good network conditions."""
    return _make_call("webex", seed=3)


@pytest.fixture(scope="session")
def lossy_teams_call() -> CallResult:
    """A Teams call under 5% loss and jitter (stress conditions)."""
    return _make_call("teams", seed=4, loss=0.05, jitter_ms=15.0)


@pytest.fixture(scope="session")
def teams_calls_small() -> list[CallResult]:
    """Four short Teams calls under varied conditions (for ML training tests)."""
    calls = []
    for seed, (throughput, loss) in enumerate(
        [(3000.0, 0.0), (1200.0, 0.0), (600.0, 0.01), (2000.0, 0.02)]
    ):
        schedule = ConditionSchedule.constant(
            NetworkCondition(throughput_kbps=throughput, delay_ms=40.0, jitter_ms=4.0, loss_rate=loss),
            18,
        )
        config = SessionConfig(
            vca="teams", duration_s=18, seed=100 + seed, call_id=f"teams-small-{seed}"
        )
        calls.append(simulate_call(config, schedule))
    return calls


@pytest.fixture(scope="session")
def regression_data() -> tuple[np.ndarray, np.ndarray]:
    """A synthetic regression problem with known structure (y depends on x0, x1)."""
    generator = np.random.default_rng(7)
    X = generator.uniform(-1.0, 1.0, size=(400, 5))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 1] ** 2 + 0.1 * generator.normal(size=400)
    return X, y


@pytest.fixture(scope="session")
def classification_data() -> tuple[np.ndarray, np.ndarray]:
    """A synthetic 3-class problem separable on two features."""
    generator = np.random.default_rng(8)
    X = generator.uniform(0.0, 1.0, size=(450, 4))
    y = np.where(X[:, 0] + X[:, 1] < 0.7, "low", np.where(X[:, 0] + X[:, 1] < 1.3, "medium", "high"))
    return X, y
